//! Typed session records: the logical operations that mutate a tenant
//! session, encoded for the write-ahead log.
//!
//! Records are *replayable*: applying the same sequence of records to a
//! fresh platform session reproduces the same state, because every layer
//! under them (the simulated model, the SQL engine, knowledge
//! generation) is deterministic. The server logs the two operations its
//! API can perform — CSV registration and query execution — and the
//! remaining variants cover the knowledge-mutation surface used by
//! embedders and the crash harness.
//!
//! Encoding: `[version: u16][tag: u8]` followed by the variant's fields,
//! each string length-prefixed with a `u32` (all little-endian). The
//! encoding carries no framing of its own — the WAL wraps each record in
//! a CRC-checked, length-prefixed frame (see [`crate::wal`]).
//!
//! Decoding is borrow-based: [`decode_record`] returns a
//! [`SessionRecordRef`] whose strings point straight into the input
//! buffer, so replaying a WAL from an mmap-backed file never copies the
//! (potentially large) CSV payloads. [`SessionRecordRef::to_owned`]
//! materialises an owned [`SessionRecord`] when one is needed.

/// Version stamped into every encoded record. Decoders reject newer
/// versions instead of guessing at their layout.
pub const RECORD_VERSION: u16 = 1;

/// An owned session mutation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionRecord {
    /// `DataLab::register_csv(name, csv)`.
    RegisterCsv {
        /// Table name.
        name: String,
        /// Full CSV text, header row included.
        csv: String,
    },
    /// `DataLab::query_as(workload, question)` — replay re-executes the
    /// query through the deterministic pipeline.
    Query {
        /// Workload label (`nl2sql`, `adhoc`, …).
        workload: String,
        /// Natural-language question.
        question: String,
    },
    /// `DataLab::add_jargon(term, expansion)`.
    AddJargon {
        /// Glossary term.
        term: String,
        /// Its expansion.
        expansion: String,
    },
    /// `DataLab::add_value_alias(term, table, column, value)`.
    AddValueAlias {
        /// Alias term.
        term: String,
        /// Target table.
        table: String,
        /// Target column.
        column: String,
        /// Target value.
        value: String,
    },
    /// `DataLab::import_knowledge(json)` — a full knowledge-graph
    /// incorporation.
    ImportKnowledge {
        /// Exported knowledge-graph JSON.
        json: String,
    },
    /// `DataLab::import_notebook(json)` — a full notebook restore.
    ImportNotebook {
        /// Exported notebook JSON.
        json: String,
    },
    /// One transactional row batch against an existing table: the whole
    /// batch applies or none of it does, on first apply and on replay.
    IngestBatch {
        /// Target table name.
        table: String,
        /// Batch rows as CSV text, header row included.
        rows_csv: String,
        /// Upsert key column; `None` appends unconditionally.
        key_column: Option<String>,
        /// Client-supplied idempotency key: replaying (or retrying) a
        /// batch whose key was already applied is a no-op.
        idempotency_key: String,
    },
}

/// A decoded record whose strings borrow from the encoded buffer
/// (typically an mmap of the WAL file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionRecordRef<'a> {
    /// See [`SessionRecord::RegisterCsv`].
    RegisterCsv {
        /// Table name.
        name: &'a str,
        /// Full CSV text.
        csv: &'a str,
    },
    /// See [`SessionRecord::Query`].
    Query {
        /// Workload label.
        workload: &'a str,
        /// Natural-language question.
        question: &'a str,
    },
    /// See [`SessionRecord::AddJargon`].
    AddJargon {
        /// Glossary term.
        term: &'a str,
        /// Its expansion.
        expansion: &'a str,
    },
    /// See [`SessionRecord::AddValueAlias`].
    AddValueAlias {
        /// Alias term.
        term: &'a str,
        /// Target table.
        table: &'a str,
        /// Target column.
        column: &'a str,
        /// Target value.
        value: &'a str,
    },
    /// See [`SessionRecord::ImportKnowledge`].
    ImportKnowledge {
        /// Exported knowledge-graph JSON.
        json: &'a str,
    },
    /// See [`SessionRecord::ImportNotebook`].
    ImportNotebook {
        /// Exported notebook JSON.
        json: &'a str,
    },
    /// See [`SessionRecord::IngestBatch`].
    IngestBatch {
        /// Target table name.
        table: &'a str,
        /// Batch rows as CSV text, header row included.
        rows_csv: &'a str,
        /// Upsert key column; `None` appends unconditionally.
        key_column: Option<&'a str>,
        /// Client-supplied idempotency key.
        idempotency_key: &'a str,
    },
}

impl SessionRecordRef<'_> {
    /// Materialises an owned copy of the record.
    pub fn to_owned(&self) -> SessionRecord {
        match *self {
            SessionRecordRef::RegisterCsv { name, csv } => SessionRecord::RegisterCsv {
                name: name.to_string(),
                csv: csv.to_string(),
            },
            SessionRecordRef::Query { workload, question } => SessionRecord::Query {
                workload: workload.to_string(),
                question: question.to_string(),
            },
            SessionRecordRef::AddJargon { term, expansion } => SessionRecord::AddJargon {
                term: term.to_string(),
                expansion: expansion.to_string(),
            },
            SessionRecordRef::AddValueAlias {
                term,
                table,
                column,
                value,
            } => SessionRecord::AddValueAlias {
                term: term.to_string(),
                table: table.to_string(),
                column: column.to_string(),
                value: value.to_string(),
            },
            SessionRecordRef::ImportKnowledge { json } => SessionRecord::ImportKnowledge {
                json: json.to_string(),
            },
            SessionRecordRef::ImportNotebook { json } => SessionRecord::ImportNotebook {
                json: json.to_string(),
            },
            SessionRecordRef::IngestBatch {
                table,
                rows_csv,
                key_column,
                idempotency_key,
            } => SessionRecord::IngestBatch {
                table: table.to_string(),
                rows_csv: rows_csv.to_string(),
                key_column: key_column.map(str::to_string),
                idempotency_key: idempotency_key.to_string(),
            },
        }
    }
}

/// Why a record failed to decode. Any decode failure makes the enclosing
/// WAL frame count as corrupt — replay stops rather than mis-parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the layout said it should.
    Truncated,
    /// The record version is newer than this build understands.
    UnknownVersion(u16),
    /// The tag byte names no known record variant.
    UnknownTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Decoding finished with unread bytes left over.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::UnknownVersion(v) => write!(f, "unknown record version {v}"),
            DecodeError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            DecodeError::BadUtf8 => write!(f, "record field is not valid UTF-8"),
            DecodeError::TrailingBytes => write!(f, "record has trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_REGISTER_CSV: u8 = 1;
const TAG_QUERY: u8 = 2;
const TAG_ADD_JARGON: u8 = 3;
const TAG_ADD_VALUE_ALIAS: u8 = 4;
const TAG_IMPORT_KNOWLEDGE: u8 = 5;
const TAG_IMPORT_NOTEBOOK: u8 = 6;
const TAG_INGEST_BATCH: u8 = 7;

/// Appends a length-prefixed string.
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed string, advancing `*at`.
pub(crate) fn take_str<'a>(bytes: &'a [u8], at: &mut usize) -> Result<&'a str, DecodeError> {
    let len = take_u32(bytes, at)? as usize;
    let end = at.checked_add(len).ok_or(DecodeError::Truncated)?;
    if end > bytes.len() {
        return Err(DecodeError::Truncated);
    }
    let s = std::str::from_utf8(&bytes[*at..end]).map_err(|_| DecodeError::BadUtf8)?;
    *at = end;
    Ok(s)
}

/// Reads a little-endian `u32`, advancing `*at`.
pub(crate) fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, DecodeError> {
    let end = at.checked_add(4).ok_or(DecodeError::Truncated)?;
    if end > bytes.len() {
        return Err(DecodeError::Truncated);
    }
    let v = u32::from_le_bytes(bytes[*at..end].try_into().expect("4 bytes"));
    *at = end;
    Ok(v)
}

/// Reads a little-endian `u64`, advancing `*at`.
pub(crate) fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, DecodeError> {
    let end = at.checked_add(8).ok_or(DecodeError::Truncated)?;
    if end > bytes.len() {
        return Err(DecodeError::Truncated);
    }
    let v = u64::from_le_bytes(bytes[*at..end].try_into().expect("8 bytes"));
    *at = end;
    Ok(v)
}

/// Reads a little-endian `u16`, advancing `*at`.
pub(crate) fn take_u16(bytes: &[u8], at: &mut usize) -> Result<u16, DecodeError> {
    let end = at.checked_add(2).ok_or(DecodeError::Truncated)?;
    if end > bytes.len() {
        return Err(DecodeError::Truncated);
    }
    let v = u16::from_le_bytes(bytes[*at..end].try_into().expect("2 bytes"));
    *at = end;
    Ok(v)
}

/// Encodes a record as `[version][tag][fields…]`.
pub fn encode_record(record: &SessionRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&RECORD_VERSION.to_le_bytes());
    match record {
        SessionRecord::RegisterCsv { name, csv } => {
            buf.push(TAG_REGISTER_CSV);
            put_str(&mut buf, name);
            put_str(&mut buf, csv);
        }
        SessionRecord::Query { workload, question } => {
            buf.push(TAG_QUERY);
            put_str(&mut buf, workload);
            put_str(&mut buf, question);
        }
        SessionRecord::AddJargon { term, expansion } => {
            buf.push(TAG_ADD_JARGON);
            put_str(&mut buf, term);
            put_str(&mut buf, expansion);
        }
        SessionRecord::AddValueAlias {
            term,
            table,
            column,
            value,
        } => {
            buf.push(TAG_ADD_VALUE_ALIAS);
            put_str(&mut buf, term);
            put_str(&mut buf, table);
            put_str(&mut buf, column);
            put_str(&mut buf, value);
        }
        SessionRecord::ImportKnowledge { json } => {
            buf.push(TAG_IMPORT_KNOWLEDGE);
            put_str(&mut buf, json);
        }
        SessionRecord::ImportNotebook { json } => {
            buf.push(TAG_IMPORT_NOTEBOOK);
            put_str(&mut buf, json);
        }
        SessionRecord::IngestBatch {
            table,
            rows_csv,
            key_column,
            idempotency_key,
        } => {
            buf.push(TAG_INGEST_BATCH);
            put_str(&mut buf, table);
            put_str(&mut buf, rows_csv);
            // The optional key column is a presence byte (0/1) followed
            // by the string when present.
            match key_column {
                Some(column) => {
                    buf.push(1);
                    put_str(&mut buf, column);
                }
                None => buf.push(0),
            }
            put_str(&mut buf, idempotency_key);
        }
    }
    buf
}

/// Decodes one record, borrowing string fields from `bytes`. The whole
/// buffer must be consumed exactly — leftover bytes are an error, so a
/// frame can never smuggle a second half-parsed record.
pub fn decode_record(bytes: &[u8]) -> Result<SessionRecordRef<'_>, DecodeError> {
    let mut at = 0usize;
    let version = take_u16(bytes, &mut at)?;
    if version == 0 || version > RECORD_VERSION {
        return Err(DecodeError::UnknownVersion(version));
    }
    let tag = *bytes.get(at).ok_or(DecodeError::Truncated)?;
    at += 1;
    let record = match tag {
        TAG_REGISTER_CSV => SessionRecordRef::RegisterCsv {
            name: take_str(bytes, &mut at)?,
            csv: take_str(bytes, &mut at)?,
        },
        TAG_QUERY => SessionRecordRef::Query {
            workload: take_str(bytes, &mut at)?,
            question: take_str(bytes, &mut at)?,
        },
        TAG_ADD_JARGON => SessionRecordRef::AddJargon {
            term: take_str(bytes, &mut at)?,
            expansion: take_str(bytes, &mut at)?,
        },
        TAG_ADD_VALUE_ALIAS => SessionRecordRef::AddValueAlias {
            term: take_str(bytes, &mut at)?,
            table: take_str(bytes, &mut at)?,
            column: take_str(bytes, &mut at)?,
            value: take_str(bytes, &mut at)?,
        },
        TAG_IMPORT_KNOWLEDGE => SessionRecordRef::ImportKnowledge {
            json: take_str(bytes, &mut at)?,
        },
        TAG_IMPORT_NOTEBOOK => SessionRecordRef::ImportNotebook {
            json: take_str(bytes, &mut at)?,
        },
        TAG_INGEST_BATCH => {
            let table = take_str(bytes, &mut at)?;
            let rows_csv = take_str(bytes, &mut at)?;
            let flag = *bytes.get(at).ok_or(DecodeError::Truncated)?;
            at += 1;
            let key_column = match flag {
                0 => None,
                1 => Some(take_str(bytes, &mut at)?),
                // Any other presence byte is damage, not a layout we
                // ever wrote.
                other => return Err(DecodeError::UnknownTag(other)),
            };
            SessionRecordRef::IngestBatch {
                table,
                rows_csv,
                key_column,
                idempotency_key: take_str(bytes, &mut at)?,
            }
        }
        other => return Err(DecodeError::UnknownTag(other)),
    };
    if at != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<SessionRecord> {
        vec![
            SessionRecord::RegisterCsv {
                name: "sales".into(),
                csv: "region,amount\neast,10\n".into(),
            },
            SessionRecord::Query {
                workload: "nl2sql".into(),
                question: "total amount by region".into(),
            },
            SessionRecord::AddJargon {
                term: "gmv".into(),
                expansion: "total income".into(),
            },
            SessionRecord::AddValueAlias {
                term: "TencentBI".into(),
                table: "t".into(),
                column: "c".into(),
                value: "Tencent BI".into(),
            },
            SessionRecord::ImportKnowledge {
                json: "{\"nodes\":[]}".into(),
            },
            SessionRecord::ImportNotebook { json: "{}".into() },
            SessionRecord::IngestBatch {
                table: "sales".into(),
                rows_csv: "region,amount\nnorth,5\n".into(),
                key_column: Some("region".into()),
                idempotency_key: "batch-001".into(),
            },
            SessionRecord::IngestBatch {
                table: "sales".into(),
                rows_csv: "region,amount\nsouth,7\n".into(),
                key_column: None,
                idempotency_key: "batch-002".into(),
            },
        ]
    }

    #[test]
    fn round_trips_every_variant() {
        for record in samples() {
            let bytes = encode_record(&record);
            let decoded = decode_record(&bytes).expect("decodes").to_owned();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_rejected() {
        for record in samples() {
            let bytes = encode_record(&record);
            for cut in 0..bytes.len() {
                assert!(
                    decode_record(&bytes[..cut]).is_err(),
                    "cut at {cut}/{} decoded",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn unknown_tag_and_version_are_rejected() {
        let mut bytes = encode_record(&SessionRecord::ImportNotebook { json: "{}".into() });
        bytes[2] = 200; // tag byte
        assert_eq!(decode_record(&bytes), Err(DecodeError::UnknownTag(200)));
        let mut bytes = encode_record(&SessionRecord::ImportNotebook { json: "{}".into() });
        bytes[0] = 0xFF;
        bytes[1] = 0xFF;
        assert!(matches!(
            decode_record(&bytes),
            Err(DecodeError::UnknownVersion(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_record(&SessionRecord::Query {
            workload: "w".into(),
            question: "q".into(),
        });
        bytes.push(0);
        assert_eq!(decode_record(&bytes), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn ingest_batch_bad_presence_byte_is_rejected() {
        let bytes = encode_record(&SessionRecord::IngestBatch {
            table: "t".into(),
            rows_csv: "a\n1\n".into(),
            key_column: None,
            idempotency_key: "k".into(),
        });
        // Locate the presence byte: version(2) + tag(1) + "t"(4+1) +
        // csv(4+4).
        let flag_at = 2 + 1 + 5 + 8;
        assert_eq!(bytes[flag_at], 0);
        let mut bent = bytes.clone();
        bent[flag_at] = 7;
        assert_eq!(decode_record(&bent), Err(DecodeError::UnknownTag(7)));
    }

    #[test]
    fn non_utf8_fields_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&RECORD_VERSION.to_le_bytes());
        bytes.push(TAG_IMPORT_NOTEBOOK);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_record(&bytes), Err(DecodeError::BadUtf8));
    }
}
