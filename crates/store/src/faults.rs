//! Deterministic disk-fault injection beneath the durability layer.
//!
//! [`FaultDisk`] sits under every WAL append, fsync, truncation, and
//! snapshot rename the store performs, and decides — from a seed and a
//! monotonically increasing operation counter, nothing else — whether
//! that operation fails and how: `EIO`, `ENOSPC`, a short write that
//! leaves a genuinely torn frame on disk, a failed fsync, or added
//! write latency. The same seed and the same operation sequence always
//! produce the same fault schedule, so a chaos run that finds a bug is
//! replayable bit-for-bit; with every rate at zero the disk is a
//! bit-identical passthrough (the shape `ChaosLlm` established for the
//! model transport).
//!
//! Two scheduling modes compose:
//!
//! - **Rates**: each operation rolls one deterministic die; cumulative
//!   per-fault rates decide the outcome.
//! - **Explicit schedule**: `(op_index, fault)` pairs pin a fault to an
//!   exact operation, which is how the `write_chaos` harness attacks a
//!   chosen WAL offset.
//!
//! [`FaultDisk::clear`] drops all faults at runtime — the hook the
//! read-only degradation tests use to prove recovery is automatic once
//! the disk heals.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The store-side I/O operations that can be attacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// A WAL frame / header / snapshot-temp write.
    Write,
    /// `fdatasync` of a WAL or snapshot file.
    Fsync,
    /// `set_len` (WAL reset after a snapshot, or tail repair).
    Truncate,
    /// The snapshot's temp-file rename into place.
    Rename,
}

impl DiskOp {
    fn salt(self) -> u64 {
        match self {
            DiskOp::Write => 0x57,
            DiskOp::Fsync => 0x46,
            DiskOp::Truncate => 0x54,
            DiskOp::Rename => 0x52,
        }
    }
}

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Generic I/O error (`EIO`): nothing reaches the file.
    Eio,
    /// Disk full (`ENOSPC`): nothing reaches the file.
    Enospc,
    /// A prefix of the buffer reaches the file, then the write fails —
    /// the classic torn-frame shape.
    ShortWrite,
    /// The data was written but `fdatasync` fails: the page cache holds
    /// bytes that stable storage does not.
    FsyncFail,
    /// The operation succeeds after an injected stall.
    Latency,
}

impl DiskFault {
    /// Canonical lowercase name (`eio`, `enospc`, `short`, `fsync`,
    /// `latency`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DiskFault::Eio => "eio",
            DiskFault::Enospc => "enospc",
            DiskFault::ShortWrite => "short",
            DiskFault::FsyncFail => "fsync",
            DiskFault::Latency => "latency",
        }
    }

    /// Inverse of [`DiskFault::as_str`].
    pub fn parse(raw: &str) -> Option<DiskFault> {
        match raw {
            "eio" => Some(DiskFault::Eio),
            "enospc" => Some(DiskFault::Enospc),
            "short" => Some(DiskFault::ShortWrite),
            "fsync" => Some(DiskFault::FsyncFail),
            "latency" => Some(DiskFault::Latency),
            _ => None,
        }
    }
}

/// Seeded fault plan: per-kind rates plus an explicit op schedule.
#[derive(Debug, Clone)]
pub struct FaultDiskConfig {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability a write fails with `EIO`.
    pub eio_rate: f64,
    /// Probability a write fails with `ENOSPC`.
    pub enospc_rate: f64,
    /// Probability a write lands only a prefix, then fails.
    pub short_write_rate: f64,
    /// Probability an fsync fails.
    pub fsync_fail_rate: f64,
    /// Probability a write is delayed by [`FaultDiskConfig::latency`].
    pub latency_rate: f64,
    /// Injected stall for latency faults.
    pub latency: Duration,
    /// Exact `(op_index, fault)` pins, consulted before the rates.
    pub schedule: Vec<(u64, DiskFault)>,
}

impl FaultDiskConfig {
    /// All rates zero: a bit-identical passthrough disk.
    pub fn disabled(seed: u64) -> FaultDiskConfig {
        FaultDiskConfig {
            seed,
            eio_rate: 0.0,
            enospc_rate: 0.0,
            short_write_rate: 0.0,
            fsync_fail_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::from_millis(2),
            schedule: Vec::new(),
        }
    }

    /// Splits a total failure rate evenly across `EIO`, `ENOSPC`, short
    /// writes, and fsync failures (no latency).
    pub fn uniform(seed: u64, rate: f64) -> FaultDiskConfig {
        let each = (rate / 4.0).clamp(0.0, 1.0);
        FaultDiskConfig {
            eio_rate: each,
            enospc_rate: each,
            short_write_rate: each,
            fsync_fail_rate: each,
            ..FaultDiskConfig::disabled(seed)
        }
    }

    /// Pins one fault kind to exact operation indices, rates all zero.
    pub fn scheduled(seed: u64, fault: DiskFault, ops: &[u64]) -> FaultDiskConfig {
        FaultDiskConfig {
            schedule: ops.iter().map(|&op| (op, fault)).collect(),
            ..FaultDiskConfig::disabled(seed)
        }
    }

    fn is_quiet(&self) -> bool {
        self.eio_rate == 0.0
            && self.enospc_rate == 0.0
            && self.short_write_rate == 0.0
            && self.fsync_fail_rate == 0.0
            && self.latency_rate == 0.0
            && self.schedule.is_empty()
    }
}

/// What [`FaultDisk::on_write`] decided for one write.
#[derive(Debug)]
pub enum WriteDecision {
    /// Write the whole buffer normally.
    Proceed,
    /// Sleep, then write the whole buffer.
    ProceedSlow(Duration),
    /// Write only the first `len` bytes, then report `error`.
    Short {
        /// Bytes that genuinely reach the file.
        len: usize,
        /// The error the caller surfaces after the partial write.
        error: io::Error,
    },
    /// Write nothing; report `error`.
    Fail(io::Error),
}

/// The deterministic fault injector. One instance is shared by every
/// file the store touches; its operation counter orders all of them.
#[derive(Debug)]
pub struct FaultDisk {
    config: Mutex<FaultDiskConfig>,
    ops: AtomicU64,
    injected: AtomicU64,
}

const EIO: i32 = 5;
const ENOSPC: i32 = 28;

fn eio_error() -> io::Error {
    io::Error::from_raw_os_error(EIO)
}

fn enospc_error() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC)
}

/// FNV-1a over raw bytes — the same mixer the LLM chaos layer uses, so
/// fault schedules stay stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A uniform draw in `[0, 1)` from `(seed, op_index, salt)`.
fn hash01(seed: u64, op_index: u64, salt: u64) -> f64 {
    let mut bytes = [0u8; 24];
    bytes[0..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..16].copy_from_slice(&op_index.to_le_bytes());
    bytes[16..24].copy_from_slice(&salt.to_le_bytes());
    (fnv1a(&bytes) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultDisk {
    /// A disk driven by `config`.
    pub fn new(config: FaultDiskConfig) -> FaultDisk {
        FaultDisk {
            config: Mutex::new(config),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Replaces the fault plan (the op counter keeps running).
    pub fn set_config(&self, config: FaultDiskConfig) {
        *self.config.lock().unwrap_or_else(|p| p.into_inner()) = config;
    }

    /// Drops every fault: all subsequent operations pass through. Used
    /// to model the disk healing.
    pub fn clear(&self) {
        let mut config = self.config.lock().unwrap_or_else(|p| p.into_inner());
        let seed = config.seed;
        *config = FaultDiskConfig::disabled(seed);
    }

    /// Operations decided so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// One deterministic decision; consumes one op index.
    fn decide(&self, op: DiskOp) -> Option<DiskFault> {
        let op_index = self.ops.fetch_add(1, Ordering::Relaxed);
        let config = self.config.lock().unwrap_or_else(|p| p.into_inner());
        if config.is_quiet() {
            return None;
        }
        if let Some((_, fault)) = config.schedule.iter().find(|(at, _)| *at == op_index) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(*fault);
        }
        // One roll per op, walked against cumulative rates, so raising
        // one rate never reshuffles which ops the others hit.
        let roll = hash01(config.seed, op_index, op.salt());
        let menu: &[(DiskFault, f64)] = match op {
            DiskOp::Write => &[
                (DiskFault::Eio, config.eio_rate),
                (DiskFault::Enospc, config.enospc_rate),
                (DiskFault::ShortWrite, config.short_write_rate),
                (DiskFault::Latency, config.latency_rate),
            ],
            DiskOp::Fsync => &[(DiskFault::FsyncFail, config.fsync_fail_rate)],
            DiskOp::Truncate | DiskOp::Rename => &[(DiskFault::Eio, config.eio_rate)],
        };
        let mut upto = 0.0;
        for (fault, rate) in menu {
            upto += rate;
            if roll < upto {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(*fault);
            }
        }
        None
    }

    /// Decision for a write of `len` bytes.
    pub fn on_write(&self, len: usize) -> WriteDecision {
        match self.decide(DiskOp::Write) {
            None => WriteDecision::Proceed,
            Some(DiskFault::Eio) => WriteDecision::Fail(eio_error()),
            Some(DiskFault::Enospc) => WriteDecision::Fail(enospc_error()),
            Some(DiskFault::ShortWrite) => {
                // Deterministic strict-prefix length; the op index was
                // consumed by decide(), so draw from the one just used.
                let op_index = self.ops.load(Ordering::Relaxed).wrapping_sub(1);
                let seed = self.config.lock().unwrap_or_else(|p| p.into_inner()).seed;
                let frac = hash01(seed, op_index, 0x53);
                let cut = ((len as f64) * frac) as usize;
                WriteDecision::Short {
                    len: cut.min(len.saturating_sub(1)),
                    error: enospc_error(),
                }
            }
            Some(DiskFault::FsyncFail) => WriteDecision::Fail(eio_error()),
            Some(DiskFault::Latency) => {
                let latency = self
                    .config
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .latency;
                WriteDecision::ProceedSlow(latency)
            }
        }
    }

    /// Decision for an fsync: `Some(error)` means fail without syncing.
    pub fn on_fsync(&self) -> Option<io::Error> {
        match self.decide(DiskOp::Fsync) {
            Some(DiskFault::FsyncFail) | Some(DiskFault::Eio) | Some(DiskFault::Enospc) => {
                Some(eio_error())
            }
            _ => None,
        }
    }

    /// Decision for a truncation (`set_len`).
    pub fn on_truncate(&self) -> Option<io::Error> {
        match self.decide(DiskOp::Truncate) {
            Some(DiskFault::Eio) | Some(DiskFault::Enospc) | Some(DiskFault::FsyncFail) => {
                Some(eio_error())
            }
            _ => None,
        }
    }

    /// Decision for the snapshot rename.
    pub fn on_rename(&self) -> Option<io::Error> {
        match self.decide(DiskOp::Rename) {
            Some(DiskFault::Eio) | Some(DiskFault::Enospc) | Some(DiskFault::FsyncFail) => {
                Some(eio_error())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_disk_never_injects() {
        let disk = FaultDisk::new(FaultDiskConfig::disabled(7));
        for _ in 0..200 {
            assert!(matches!(disk.on_write(64), WriteDecision::Proceed));
            assert!(disk.on_fsync().is_none());
        }
        assert_eq!(disk.injected(), 0);
        assert_eq!(disk.ops(), 400);
    }

    #[test]
    fn same_seed_same_schedule() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let disk = FaultDisk::new(FaultDiskConfig::uniform(seed, 0.5));
            (0..100)
                .map(|_| matches!(disk.on_write(64), WriteDecision::Proceed))
                .collect()
        };
        assert_eq!(outcomes(11), outcomes(11));
        assert_ne!(outcomes(11), outcomes(12), "different seeds differ");
        let injected = outcomes(11).iter().filter(|ok| !**ok).count();
        assert!(injected > 10, "rate 0.5 injects often ({injected}/100)");
    }

    #[test]
    fn schedule_pins_exact_ops() {
        let disk = FaultDisk::new(FaultDiskConfig::scheduled(7, DiskFault::Eio, &[2, 5]));
        let hits: Vec<bool> = (0..8)
            .map(|_| !matches!(disk.on_write(64), WriteDecision::Proceed))
            .collect();
        assert_eq!(
            hits,
            vec![false, false, true, false, false, true, false, false]
        );
    }

    #[test]
    fn short_writes_are_strict_prefixes() {
        let disk = FaultDisk::new(FaultDiskConfig {
            short_write_rate: 1.0,
            ..FaultDiskConfig::disabled(3)
        });
        for _ in 0..50 {
            match disk.on_write(100) {
                WriteDecision::Short { len, .. } => assert!(len < 100),
                other => panic!("expected short write, got {other:?}"),
            }
        }
    }

    #[test]
    fn clear_heals_the_disk() {
        let disk = FaultDisk::new(FaultDiskConfig {
            fsync_fail_rate: 1.0,
            ..FaultDiskConfig::disabled(3)
        });
        assert!(disk.on_fsync().is_some());
        disk.clear();
        for _ in 0..50 {
            assert!(disk.on_fsync().is_none());
        }
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in [
            DiskFault::Eio,
            DiskFault::Enospc,
            DiskFault::ShortWrite,
            DiskFault::FsyncFail,
            DiskFault::Latency,
        ] {
            assert_eq!(DiskFault::parse(fault.as_str()), Some(fault));
        }
        assert_eq!(DiskFault::parse("nope"), None);
    }
}
