//! `datalab-store` — durable tenant state for the DataLab platform.
//!
//! Everything above this crate keeps tenant sessions in process memory;
//! this crate makes them survive the process. Three pieces, std-only:
//!
//! - **Write-ahead log** ([`wal`]): an append-only, CRC-framed log of
//!   typed [`SessionRecord`]s — CSV registrations, query executions,
//!   knowledge mutations. Torn tails (kill mid-append) and bit flips are
//!   detected and dropped, never mis-parsed.
//! - **Snapshots** ([`snapshot`]): a periodic, atomically-replaced
//!   capture of the session's durable state, stamped with the WAL
//!   sequence watermark it contains, after which the WAL is truncated.
//!   Recovery = restore snapshot + replay records above the watermark.
//! - **mmap-backed reads** ([`mmap`]): recovery scans snapshot and WAL
//!   bytes through a read-only memory map (thin `mmap(2)` shim with a
//!   read-the-file fallback), and replay borrows CSV/JSON payloads
//!   straight out of the map instead of deep-copying them.
//!
//! [`DurableStore`] ties the pieces together: one directory per tenant
//! under `<root>/tenants/`, an fsync policy (`always` / `interval` /
//! `never`), a bounded background flusher for interval mode, and
//! `store.*` telemetry (append/byte counters, fsync stalls, snapshot
//! and recovery accounting).

mod faults;
mod mmap;
mod record;
mod snapshot;
mod wal;

pub use faults::{DiskFault, DiskOp, FaultDisk, FaultDiskConfig, WriteDecision};
pub use mmap::MappedFile;
pub use record::{
    decode_record, encode_record, DecodeError, SessionRecord, SessionRecordRef, RECORD_VERSION,
};
pub use snapshot::{
    decode_snapshot, encode_snapshot, write_atomic, write_atomic_with, SessionState, SnapshotError,
    SnapshotRef, SNAP_MAGIC, SNAP_VERSION,
};
pub use wal::{
    crc32, encode_frame, scan_wal, wal_header, WalError, WalScan, WalTail, WalWriter,
    FRAME_HEADER_LEN, MAX_FRAME_LEN, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION,
};

use datalab_telemetry::Telemetry;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// When appended frames reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append, on the request path. Maximum
    /// durability; every mutation survives power loss once acknowledged.
    Always,
    /// A background flusher syncs dirty logs on a fixed cadence. A crash
    /// loses at most one interval of acknowledged writes (torn tails are
    /// still handled — frames are CRC-framed regardless of policy).
    Interval(Duration),
    /// Never fsync explicitly; the OS writes back when it pleases.
    /// Survives process kills (the page cache persists) but not power
    /// loss. For benchmarks and tests.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `interval`, or `interval:<ms>`.
    pub fn parse(raw: &str) -> Option<FsyncPolicy> {
        match raw {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(DEFAULT_FSYNC_INTERVAL)),
            other => {
                let ms: u64 = other.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms.max(1))))
            }
        }
    }

    /// Canonical rendering (inverse of [`FsyncPolicy::parse`]).
    pub fn render(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// Default flusher cadence for `interval` mode.
pub const DEFAULT_FSYNC_INTERVAL: Duration = Duration::from_millis(100);

/// Store-wide durability knobs.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// WAL records per tenant between automatic snapshots (`0` disables
    /// cadence-driven snapshots; callers can still snapshot explicitly).
    pub snapshot_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::Interval(DEFAULT_FSYNC_INTERVAL),
            snapshot_every: 32,
        }
    }
}

/// What one append accomplished.
#[derive(Debug, Clone, Copy)]
pub struct AppendReceipt {
    /// The record's WAL sequence number.
    pub seq: u64,
    /// Frame bytes written.
    pub wal_bytes: u64,
    /// Time spent in `fdatasync`, when the policy syncs on the request
    /// path (`always`); `None` otherwise. Callers surface this as a
    /// profiler span so fsync stalls are visible in flamegraphs.
    pub fsync_stall_us: Option<u64>,
    /// True when the tenant has reached its snapshot cadence — the
    /// caller should capture a [`SessionState`] and call
    /// [`DurableStore::snapshot`].
    pub snapshot_due: bool,
}

/// Everything recovery found for one tenant, borrowing from the mapped
/// snapshot and WAL files.
#[derive(Debug)]
pub struct RecoveryOutcome<'a> {
    /// The latest snapshot, if one was ever written.
    pub snapshot: Option<SnapshotRef<'a>>,
    /// WAL records above the snapshot watermark, in append order.
    pub records: Vec<(u64, SessionRecordRef<'a>)>,
    /// The WAL ended mid-frame (kill mid-append).
    pub torn_tail: bool,
    /// The WAL ended in a CRC- or decode-rejected frame.
    pub corrupt_tail: bool,
    /// Bytes the scan refused to trust.
    pub dropped_bytes: u64,
}

/// Owned recovery result: `(snapshot state, tail records, torn tail,
/// corrupt tail)` — what [`DurableStore::recover_owned`] hands back.
pub type OwnedRecovery = (Option<SessionState>, Vec<SessionRecord>, bool, bool);

struct TenantLog {
    writer: WalWriter,
    records_since_snapshot: u64,
}

/// Consecutive write failures before the store degrades to read-only.
pub const READ_ONLY_THRESHOLD: u64 = 3;
/// While read-only, one write attempt in this many is let through as a
/// probe; if the disk has healed the probe succeeds and the store exits
/// read-only mode on its own. Counter-based (not time-based) so chaos
/// runs are deterministic.
pub const READ_ONLY_PROBE_EVERY: u64 = 4;

/// Write-path health, aggregated across every tenant log.
struct WriteHealth {
    consecutive_failures: AtomicU64,
    read_only: AtomicBool,
    probe_attempts: AtomicU64,
    flush_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl WriteHealth {
    fn new() -> WriteHealth {
        WriteHealth {
            consecutive_failures: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
            probe_attempts: AtomicU64::new(0),
            flush_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
        }
    }
}

/// A point-in-time view of the write path for the health endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageHealth {
    /// Writes are being refused (503 at the API) pending a probe.
    pub read_only: bool,
    /// Write failures since the last success.
    pub consecutive_failures: u64,
    /// Background-flusher / eviction-path sync failures, total.
    pub flush_errors: u64,
    /// Bytes appended but not yet known durable, summed over tenants.
    pub fsync_backlog_bytes: u64,
    /// The most recent write error, verbatim.
    pub last_error: Option<String>,
}

/// The durable store: per-tenant WAL + snapshot under one root
/// directory, with shared fsync policy and telemetry.
pub struct DurableStore {
    root: PathBuf,
    config: DurabilityConfig,
    telemetry: Telemetry,
    tenants: Mutex<HashMap<String, Arc<Mutex<TenantLog>>>>,
    faults: Option<Arc<FaultDisk>>,
    health: WriteHealth,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("root", &self.root)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// Opens (creating if needed) a durable store rooted at `root`.
    /// `telemetry` receives the `store.*` metrics. Interval fsync mode
    /// spawns one background flusher thread, which exits on its own once
    /// the store is dropped.
    pub fn open(
        root: impl Into<PathBuf>,
        config: DurabilityConfig,
        telemetry: Telemetry,
    ) -> io::Result<Arc<DurableStore>> {
        DurableStore::open_with_faults(root, config, telemetry, None)
    }

    /// [`DurableStore::open`] with a deterministic disk-fault injector
    /// threaded beneath every WAL append, fsync, truncation, and
    /// snapshot write. `None` is a plain disk.
    pub fn open_with_faults(
        root: impl Into<PathBuf>,
        config: DurabilityConfig,
        telemetry: Telemetry,
        faults: Option<Arc<FaultDisk>>,
    ) -> io::Result<Arc<DurableStore>> {
        let root = root.into();
        std::fs::create_dir_all(root.join("tenants"))?;
        // Pre-register the taxonomy at zero so scrapes enumerate it
        // before the first mutation.
        for name in [
            "store.wal_appends",
            "store.wal_bytes",
            "store.fsyncs",
            "store.snapshots",
            "store.snapshot_bytes",
            "store.recoveries",
            "store.recovery_replayed",
            "store.recovery_torn_tails",
            "store.recovery_corrupt_frames",
            "store.write_errors",
            "store.flush_errors",
            "store.read_only_trips",
            "store.read_only_recoveries",
        ] {
            telemetry.metrics().incr(name, 0);
        }
        let store = Arc::new(DurableStore {
            root,
            config,
            telemetry,
            tenants: Mutex::new(HashMap::new()),
            faults,
            health: WriteHealth::new(),
        });
        if let FsyncPolicy::Interval(interval) = store.config.fsync {
            let weak: Weak<DurableStore> = Arc::downgrade(&store);
            let interval = interval.max(Duration::from_millis(1));
            std::thread::Builder::new()
                .name("datalab-wal-flusher".to_string())
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    match weak.upgrade() {
                        Some(store) => store.flush_all(),
                        None => break,
                    }
                })?;
        }
        Ok(store)
    }

    /// The configured durability knobs.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding one tenant's snapshot + WAL.
    pub fn tenant_dir(&self, tenant: &str) -> PathBuf {
        self.root.join("tenants").join(encode_tenant(tenant))
    }

    /// The tenant's WAL file path.
    pub fn wal_path(&self, tenant: &str) -> PathBuf {
        self.tenant_dir(tenant).join("wal.dlw")
    }

    /// The tenant's snapshot file path.
    pub fn snapshot_path(&self, tenant: &str) -> PathBuf {
        self.tenant_dir(tenant).join("snapshot.dls")
    }

    /// Whether any durable state exists for the tenant.
    pub fn has_tenant(&self, tenant: &str) -> bool {
        let wal = self.wal_path(tenant);
        let snap = self.snapshot_path(tenant);
        snap.exists()
            || std::fs::metadata(&wal)
                .map(|m| m.len() > 0)
                .unwrap_or(false)
    }

    /// Every tenant with a durable directory, sorted.
    pub fn list_tenants(&self) -> Vec<String> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(self.root.join("tenants")) else {
            return out;
        };
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if let Some(tenant) = decode_tenant(name) {
                    out.push(tenant);
                }
            }
        }
        out.sort();
        out
    }

    /// The tenant's open log handle, creating dir + WAL on first use.
    fn log(&self, tenant: &str) -> io::Result<Arc<Mutex<TenantLog>>> {
        if let Some(log) = self
            .tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(tenant)
        {
            return Ok(Arc::clone(log));
        }
        // Build outside the map lock: opening scans the WAL file.
        let dir = self.tenant_dir(tenant);
        std::fs::create_dir_all(&dir)?;
        let watermark = self.snapshot_watermark(tenant)?;
        let opened = WalWriter::open_with(&self.wal_path(tenant), watermark, self.faults.clone())?;
        let records_since_snapshot = opened
            .records
            .iter()
            .filter(|(seq, _)| *seq > watermark)
            .count() as u64;
        let log = Arc::new(Mutex::new(TenantLog {
            writer: opened.writer,
            records_since_snapshot,
        }));
        let mut tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        // Two threads may have built concurrently; first insert wins so
        // both callers share one file handle.
        let entry = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Arc::clone(&log));
        Ok(Arc::clone(entry))
    }

    /// The WAL watermark of the tenant's snapshot (0 when none).
    fn snapshot_watermark(&self, tenant: &str) -> io::Result<u64> {
        let path = self.snapshot_path(tenant);
        if !path.exists() {
            return Ok(0);
        }
        let map = MappedFile::open(&path)?;
        decode_snapshot(map.bytes())
            .map(|s| s.wal_seq)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Appends one record to the tenant's WAL, applying the fsync
    /// policy. Callers serialise appends per tenant (the serving layer
    /// holds the session lock), which fixes the record order to the
    /// execution order.
    pub fn append(&self, tenant: &str, record: &SessionRecord) -> io::Result<AppendReceipt> {
        let log = match self.log(tenant) {
            Ok(log) => log,
            Err(error) => {
                self.note_write_failure(&error);
                self.telemetry.metrics().incr("store.write_errors", 1);
                return Err(error);
            }
        };
        let mut log = log.lock().unwrap_or_else(|p| p.into_inner());
        let (seq, wal_bytes) = match log.writer.append(record) {
            Ok(receipt) => receipt,
            Err(error) => {
                self.note_write_failure(&error);
                self.telemetry.metrics().incr("store.write_errors", 1);
                return Err(error);
            }
        };
        log.records_since_snapshot += 1;
        let m = self.telemetry.metrics();
        m.incr("store.wal_appends", 1);
        m.incr("store.wal_bytes", wal_bytes);
        let fsync_stall_us = if self.config.fsync == FsyncPolicy::Always {
            let begun = Instant::now();
            if let Err(error) = log.writer.sync() {
                // The frame is in the page cache but not stable storage:
                // under `always` that breaks the acknowledgement
                // contract, so the caller must fail the request. The
                // frame stays in the WAL (replay-time idempotency covers
                // the retry) and in the backlog for the next sync.
                self.note_write_failure(&error);
                self.telemetry.metrics().incr("store.write_errors", 1);
                return Err(error);
            }
            let stall = begun.elapsed().as_micros() as u64;
            m.incr("store.fsyncs", 1);
            m.observe("store.fsync_stall_us", stall);
            Some(stall)
        } else {
            None
        };
        self.note_write_success();
        Ok(AppendReceipt {
            seq,
            wal_bytes,
            fsync_stall_us,
            snapshot_due: self.config.snapshot_every > 0
                && log.records_since_snapshot >= self.config.snapshot_every,
        })
    }

    /// Writes a snapshot of `state` for the tenant and truncates its
    /// WAL. The caller must guarantee `state` reflects every record
    /// appended so far (the serving layer extracts it under the same
    /// session lock its appends run under). Returns snapshot bytes.
    pub fn snapshot(&self, tenant: &str, state: &SessionState) -> io::Result<u64> {
        let log = self.log(tenant)?;
        let mut log = log.lock().unwrap_or_else(|p| p.into_inner());
        // Everything appended so far is folded into `state`.
        let watermark = log.writer.next_seq() - 1;
        let bytes = encode_snapshot(watermark, state);
        if let Err(error) =
            write_atomic_with(&self.snapshot_path(tenant), &bytes, self.faults.as_ref())
        {
            // Only the temp file is damaged; the old snapshot and the
            // untouched WAL still recover the session.
            self.note_write_failure(&error);
            return Err(error);
        }
        // A crash here is safe: the WAL still holds records at or below
        // the watermark, and recovery skips them.
        if let Err(error) = log.writer.reset() {
            self.note_write_failure(&error);
            return Err(error);
        }
        log.records_since_snapshot = 0;
        let m = self.telemetry.metrics();
        m.incr("store.snapshots", 1);
        m.incr("store.snapshot_bytes", bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Recovers a tenant's durable state, handing the borrowed outcome
    /// (snapshot + replayable records, straight out of the mapped files)
    /// to `apply`. Returns `None` without calling `apply` when the
    /// tenant has no durable state. A corrupt snapshot is an error — the
    /// WAL alone cannot reconstruct the session once truncated.
    pub fn recover_with<T>(
        &self,
        tenant: &str,
        apply: impl FnOnce(&RecoveryOutcome<'_>) -> T,
    ) -> io::Result<Option<T>> {
        if !self.has_tenant(tenant) {
            return Ok(None);
        }
        let snap_path = self.snapshot_path(tenant);
        let snap_map = if snap_path.exists() {
            Some(MappedFile::open(&snap_path)?)
        } else {
            None
        };
        let snapshot = match &snap_map {
            Some(map) => Some(
                decode_snapshot(map.bytes())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            ),
            None => None,
        };
        let watermark = snapshot.as_ref().map(|s| s.wal_seq).unwrap_or(0);

        let wal_path = self.wal_path(tenant);
        let wal_map = if wal_path.exists() {
            Some(MappedFile::open(&wal_path)?)
        } else {
            None
        };
        let empty: &[u8] = &[];
        let scan = scan_wal(wal_map.as_ref().map(|m| m.bytes()).unwrap_or(empty))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let records: Vec<(u64, SessionRecordRef<'_>)> = scan
            .records
            .into_iter()
            .filter(|(seq, _)| *seq > watermark)
            .collect();

        let outcome = RecoveryOutcome {
            snapshot,
            records,
            torn_tail: matches!(scan.tail, WalTail::Torn { .. }),
            corrupt_tail: matches!(scan.tail, WalTail::Corrupt { .. }),
            dropped_bytes: scan.tail.dropped_bytes() as u64,
        };
        let m = self.telemetry.metrics();
        m.incr("store.recoveries", 1);
        m.incr("store.recovery_replayed", outcome.records.len() as u64);
        if outcome.torn_tail {
            m.incr("store.recovery_torn_tails", 1);
        }
        if outcome.corrupt_tail {
            m.incr("store.recovery_corrupt_frames", 1);
        }
        Ok(Some(apply(&outcome)))
    }

    /// Recovers into owned values — the convenience form for tests and
    /// the crash harness.
    pub fn recover_owned(&self, tenant: &str) -> io::Result<Option<OwnedRecovery>> {
        self.recover_with(tenant, |outcome| {
            (
                outcome.snapshot.as_ref().map(|s| s.to_state()),
                outcome.records.iter().map(|(_, r)| r.to_owned()).collect(),
                outcome.torn_tail,
                outcome.corrupt_tail,
            )
        })
    }

    /// Syncs one tenant's WAL now (used on eviction so a session leaving
    /// memory is durable regardless of policy).
    pub fn flush_tenant(&self, tenant: &str) {
        let log = {
            let tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
            tenants.get(tenant).cloned()
        };
        if let Some(log) = log {
            let mut log = log.lock().unwrap_or_else(|p| p.into_inner());
            self.sync_log(&mut log);
        }
    }

    /// Syncs every dirty WAL (the interval flusher's tick; also called
    /// on drop so graceful shutdown loses nothing).
    pub fn flush_all(&self) {
        let logs: Vec<Arc<Mutex<TenantLog>>> = {
            let tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
            tenants.values().cloned().collect()
        };
        for log in logs {
            let mut log = log.lock().unwrap_or_else(|p| p.into_inner());
            self.sync_log(&mut log);
        }
    }

    fn sync_log(&self, log: &mut TenantLog) {
        if !log.writer.is_dirty() {
            return;
        }
        let begun = Instant::now();
        match log.writer.sync() {
            Ok(_) => {
                let m = self.telemetry.metrics();
                m.incr("store.fsyncs", 1);
                m.observe("store.fsync_stall_us", begun.elapsed().as_micros() as u64);
                self.note_write_success();
            }
            Err(error) => {
                // A dropped flush error used to vanish here entirely:
                // the backlog stayed pending with nothing counting it.
                self.health.flush_errors.fetch_add(1, Ordering::Relaxed);
                self.telemetry.metrics().incr("store.flush_errors", 1);
                self.note_write_failure(&error);
            }
        }
    }

    /// Records a write-path failure; enough in a row flips read-only.
    fn note_write_failure(&self, error: &io::Error) {
        let failures = self
            .health
            .consecutive_failures
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        *self
            .health
            .last_error
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(error.to_string());
        if failures >= READ_ONLY_THRESHOLD && !self.health.read_only.swap(true, Ordering::Relaxed) {
            self.telemetry.metrics().incr("store.read_only_trips", 1);
        }
    }

    /// Records a write-path success; exits read-only mode if active.
    fn note_write_success(&self) {
        self.health.consecutive_failures.store(0, Ordering::Relaxed);
        if self.health.read_only.swap(false, Ordering::Relaxed) {
            self.telemetry
                .metrics()
                .incr("store.read_only_recoveries", 1);
        }
    }

    /// Whether the store is refusing writes.
    pub fn read_only(&self) -> bool {
        self.health.read_only.load(Ordering::Relaxed)
    }

    /// Admission check for one write attempt. `true` when writes are
    /// healthy — and, in read-only mode, for every
    /// [`READ_ONLY_PROBE_EVERY`]th attempt, which goes through as a
    /// probe: if the disk has healed the probe append succeeds and
    /// clears read-only mode, making recovery automatic.
    pub fn write_allowed(&self) -> bool {
        if !self.read_only() {
            return true;
        }
        let attempt = self.health.probe_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        attempt.is_multiple_of(READ_ONLY_PROBE_EVERY)
    }

    /// The write path's current health, for `/v1/health`.
    pub fn storage_health(&self) -> StorageHealth {
        let logs: Vec<Arc<Mutex<TenantLog>>> = {
            let tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
            tenants.values().cloned().collect()
        };
        let fsync_backlog_bytes = logs
            .iter()
            .map(|log| {
                log.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .writer
                    .unsynced_bytes()
            })
            .sum();
        StorageHealth {
            read_only: self.read_only(),
            consecutive_failures: self.health.consecutive_failures.load(Ordering::Relaxed),
            flush_errors: self.health.flush_errors.load(Ordering::Relaxed),
            fsync_backlog_bytes,
            last_error: self
                .health
                .last_error
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
        }
    }

    /// The fault injector, when one was installed.
    pub fn faults(&self) -> Option<&Arc<FaultDisk>> {
        self.faults.as_ref()
    }
}

impl Drop for DurableStore {
    fn drop(&mut self) {
        self.flush_all();
    }
}

/// Filesystem-safe tenant directory name: bytes in `[A-Za-z0-9_-]` pass
/// through, everything else (including `.`, `/`, and `%`) becomes
/// `%XX`. Injective, so distinct tenants can never collide on disk, and
/// traversal-proof — an encoded name contains no separators or dots.
pub fn encode_tenant(tenant: &str) -> String {
    let mut out = String::with_capacity(tenant.len());
    for b in tenant.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Inverse of [`encode_tenant`]; `None` for names that are not valid
/// encodings (foreign files in the tenants directory).
pub fn decode_tenant(encoded: &str) -> Option<String> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                // Only uppercase hex is produced; reject other spellings
                // so encode/decode stays a bijection.
                if !hex
                    .iter()
                    .all(|c| c.is_ascii_digit() || (b'A'..=b'F').contains(c))
                {
                    return None;
                }
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "datalab-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(root: &Path, fsync: FsyncPolicy, snapshot_every: u64) -> Arc<DurableStore> {
        DurableStore::open(
            root,
            DurabilityConfig {
                fsync,
                snapshot_every,
            },
            Telemetry::new(),
        )
        .unwrap()
    }

    fn query(i: usize) -> SessionRecord {
        SessionRecord::Query {
            workload: "nl2sql".into(),
            question: format!("question {i}"),
        }
    }

    #[test]
    fn tenant_encoding_is_injective_and_traversal_proof() {
        for tenant in ["acme", "a/b", "../../etc/passwd", "ünïcode", "a%b", "a.b."] {
            let enc = encode_tenant(tenant);
            assert!(
                !enc.contains('/') && !enc.contains('.') && !enc.contains('\\'),
                "{enc}"
            );
            assert_eq!(decode_tenant(&enc).as_deref(), Some(tenant));
        }
        assert_ne!(encode_tenant("a/b"), encode_tenant("a%2Fb"));
        assert_eq!(decode_tenant("no%2"), None);
        assert_eq!(decode_tenant("bad%GG"), None);
        assert_eq!(decode_tenant("lower%2f"), None);
    }

    #[test]
    fn append_recover_round_trip_without_snapshot() {
        let root = temp_root("plain");
        let store = open(&root, FsyncPolicy::Always, 0);
        for i in 0..4 {
            let receipt = store.append("acme", &query(i)).unwrap();
            assert_eq!(receipt.seq, i as u64 + 1);
            assert!(receipt.fsync_stall_us.is_some());
            assert!(!receipt.snapshot_due, "cadence 0 never demands snapshots");
        }
        drop(store);

        let store = open(&root, FsyncPolicy::Always, 0);
        let (snap, records, torn, corrupt) =
            store.recover_owned("acme").unwrap().expect("has state");
        assert!(snap.is_none());
        assert!(!torn && !corrupt);
        assert_eq!(records.len(), 4);
        assert_eq!(records[2], query(2));
        assert!(store.recover_owned("ghost").unwrap().is_none());
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_replays_only_the_tail() {
        let root = temp_root("snap");
        let store = open(&root, FsyncPolicy::Never, 0);
        for i in 0..3 {
            store.append("acme", &query(i)).unwrap();
        }
        let state = SessionState {
            tables: vec![("sales".into(), "a,b\n1,2\n".into())],
            history: vec!["q0".into(), "q1".into(), "q2".into()],
            ..SessionState::default()
        };
        store.snapshot("acme", &state).unwrap();
        store.append("acme", &query(3)).unwrap();
        store.flush_all();
        drop(store);

        let store = open(&root, FsyncPolicy::Never, 0);
        let (snap, records, _, _) = store.recover_owned("acme").unwrap().expect("has state");
        assert_eq!(snap.expect("snapshot").history.len(), 3);
        assert_eq!(records, vec![query(3)]);
    }

    #[test]
    fn snapshot_due_fires_on_cadence() {
        let root = temp_root("cadence");
        let store = open(&root, FsyncPolicy::Never, 3);
        assert!(!store.append("t", &query(0)).unwrap().snapshot_due);
        assert!(!store.append("t", &query(1)).unwrap().snapshot_due);
        assert!(store.append("t", &query(2)).unwrap().snapshot_due);
        store.snapshot("t", &SessionState::default()).unwrap();
        assert!(!store.append("t", &query(3)).unwrap().snapshot_due);
    }

    #[test]
    fn crash_between_snapshot_and_truncate_does_not_double_replay() {
        let root = temp_root("double");
        let store = open(&root, FsyncPolicy::Never, 0);
        for i in 0..3 {
            store.append("acme", &query(i)).unwrap();
        }
        store.flush_all();
        // Simulate the torn window: snapshot written, WAL NOT truncated.
        let state = SessionState {
            history: vec!["q0".into(), "q1".into(), "q2".into()],
            ..SessionState::default()
        };
        write_atomic(&store.snapshot_path("acme"), &encode_snapshot(3, &state)).unwrap();
        drop(store);

        let store = open(&root, FsyncPolicy::Never, 0);
        let (snap, records, _, _) = store.recover_owned("acme").unwrap().expect("has state");
        assert_eq!(snap.expect("snapshot").history.len(), 3);
        assert!(records.is_empty(), "watermarked records must not replay");
        // Appends resume above the watermark.
        let receipt = store.append("acme", &query(3)).unwrap();
        assert_eq!(receipt.seq, 4);
    }

    #[test]
    fn interval_flusher_syncs_in_the_background() {
        let root = temp_root("flush");
        let store = open(&root, FsyncPolicy::Interval(Duration::from_millis(5)), 0);
        store.append("acme", &query(0)).unwrap();
        // The flusher thread owns a Weak ref; give it a few ticks.
        std::thread::sleep(Duration::from_millis(40));
        let bytes = std::fs::read(store.wal_path("acme")).unwrap();
        let scan = scan_wal(&bytes).unwrap();
        assert_eq!(scan.records.len(), 1);
        drop(store);
    }

    #[test]
    fn dropped_flush_errors_are_counted_and_surfaced() {
        // Regression: sync_log used to swallow fsync failures, so the
        // background flusher and the eviction path lost them silently.
        let root = temp_root("flusherr");
        let disk = Arc::new(FaultDisk::new(FaultDiskConfig {
            fsync_fail_rate: 1.0,
            ..FaultDiskConfig::disabled(7)
        }));
        let store = DurableStore::open_with_faults(
            &root,
            DurabilityConfig {
                fsync: FsyncPolicy::Never,
                snapshot_every: 0,
            },
            Telemetry::new(),
            Some(Arc::clone(&disk)),
        )
        .unwrap();
        store.append("acme", &query(0)).unwrap();
        store.flush_all();
        let health = store.storage_health();
        assert_eq!(health.flush_errors, 1, "the dropped error is counted");
        assert!(health.fsync_backlog_bytes > 0, "the backlog is visible");
        assert!(health.last_error.is_some());
        assert!(!health.read_only, "one failure does not trip read-only");
        // Enough failures in a row degrade to read-only…
        store.flush_all();
        store.flush_all();
        assert!(store.read_only());
        assert!(store.storage_health().read_only);
        // …and a successful flush after the disk heals recovers it.
        disk.clear();
        store.flush_all();
        assert!(!store.read_only());
        assert_eq!(store.storage_health().fsync_backlog_bytes, 0);
    }

    #[test]
    fn read_only_probe_recovers_after_faults_clear() {
        let root = temp_root("probe");
        let disk = Arc::new(FaultDisk::new(FaultDiskConfig {
            eio_rate: 1.0,
            ..FaultDiskConfig::disabled(7)
        }));
        let store = DurableStore::open_with_faults(
            &root,
            DurabilityConfig {
                fsync: FsyncPolicy::Never,
                snapshot_every: 0,
            },
            Telemetry::new(),
            Some(Arc::clone(&disk)),
        )
        .unwrap();
        // Every append fails; the threshold flips the store read-only.
        for _ in 0..READ_ONLY_THRESHOLD {
            assert!(store.append("acme", &query(0)).is_err());
        }
        assert!(store.read_only());
        // The gate denies most attempts but lets periodic probes by.
        let admitted: Vec<bool> = (0..READ_ONLY_PROBE_EVERY * 2)
            .map(|_| store.write_allowed())
            .collect();
        assert_eq!(admitted.iter().filter(|ok| **ok).count() as u64, 2);
        // A probe while the disk is still broken keeps it read-only.
        assert!(store.append("acme", &query(1)).is_err());
        assert!(store.read_only());
        // Once the faults clear, the next probe succeeds and recovers.
        disk.clear();
        store.append("acme", &query(2)).unwrap();
        assert!(!store.read_only());
        assert!(store.write_allowed());
        assert_eq!(store.storage_health().consecutive_failures, 0);
    }

    #[test]
    fn list_tenants_round_trips_names() {
        let root = temp_root("list");
        let store = open(&root, FsyncPolicy::Never, 0);
        for tenant in ["nl2sql-d0", "weird/tenant", "acme"] {
            store.append(tenant, &query(0)).unwrap();
        }
        assert_eq!(
            store.list_tenants(),
            vec![
                "acme".to_string(),
                "nl2sql-d0".to_string(),
                "weird/tenant".to_string()
            ]
        );
        assert!(store.has_tenant("weird/tenant"));
        assert!(!store.has_tenant("nobody"));
    }
}
