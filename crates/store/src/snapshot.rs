//! Per-tenant session snapshots: a single CRC-checked file capturing the
//! session's durable state, written atomically so a crash can never
//! leave a half-snapshot where a good one used to be.
//!
//! File layout:
//!
//! ```text
//! [magic: u32 "DLSN"][version: u16][reserved: u16]
//! [len: u32][crc32: u32][payload]
//! ```
//!
//! Payload (all little-endian, strings length-prefixed with `u32`):
//!
//! ```text
//! [wal_seq: u64]                 WAL watermark folded into the snapshot
//! [n_tables: u32] n × ([name][csv])
//! [knowledge_json]
//! [notebook_json]
//! [n_history: u32] n × [entry]
//! [n_ingest_keys: u32] n × [key]       (version ≥ 2)
//! ```
//!
//! `wal_seq` is the highest WAL sequence number whose effects the
//! snapshot contains. Recovery replays only records above it, which
//! makes the snapshot-then-truncate sequence crash-safe in every
//! interleaving (see [`crate::wal`]).
//!
//! The write protocol is write-to-temp → `fdatasync` → `rename` →
//! `fsync` the directory: readers only ever observe the old complete
//! snapshot or the new complete snapshot.

use crate::faults::FaultDisk;
use crate::record::{put_str, take_str, take_u32, take_u64, DecodeError};
use crate::wal::crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// First four bytes of every snapshot file (`DLSN`, little-endian).
pub const SNAP_MAGIC: u32 = 0x4E53_4C44;
/// Snapshot container version. Version 2 added the applied
/// ingest-idempotency-key set; version-1 files still decode (with an
/// empty key set).
pub const SNAP_VERSION: u16 = 2;

/// The durable state of one tenant session, as the server extracts it
/// from a live `DataLab` (owned form, used for writing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionState {
    /// Registered tables in registration order, as `(name, csv_text)` —
    /// restoring re-registers each CSV, which also regenerates the
    /// table profiles deterministically.
    pub tables: Vec<(String, String)>,
    /// Exported knowledge-graph JSON (empty = no knowledge).
    pub knowledge_json: String,
    /// Exported notebook JSON (empty = fresh notebook).
    pub notebook_json: String,
    /// Query history lines, oldest first.
    pub history: Vec<String>,
    /// Idempotency keys of ingest batches already applied, sorted —
    /// replaying an `IngestBatch` whose key is here is a no-op.
    pub ingest_keys: Vec<String>,
}

/// A decoded snapshot borrowing from the snapshot file's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRef<'a> {
    /// Highest WAL sequence number folded into this snapshot.
    pub wal_seq: u64,
    /// `(name, csv)` per table, registration order.
    pub tables: Vec<(&'a str, &'a str)>,
    /// Knowledge-graph JSON ("" = none).
    pub knowledge_json: &'a str,
    /// Notebook JSON ("" = none).
    pub notebook_json: &'a str,
    /// History lines, oldest first.
    pub history: Vec<&'a str>,
    /// Applied ingest idempotency keys (empty for version-1 files).
    pub ingest_keys: Vec<&'a str>,
}

impl SnapshotRef<'_> {
    /// Materialises an owned [`SessionState`] (drops the watermark).
    pub fn to_state(&self) -> SessionState {
        SessionState {
            tables: self
                .tables
                .iter()
                .map(|(n, c)| (n.to_string(), c.to_string()))
                .collect(),
            knowledge_json: self.knowledge_json.to_string(),
            notebook_json: self.notebook_json.to_string(),
            history: self.history.iter().map(|h| h.to_string()).collect(),
            ingest_keys: self.ingest_keys.iter().map(|k| k.to_string()).collect(),
        }
    }
}

/// Why a snapshot file failed to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Wrong magic: not a DataLab snapshot.
    BadMagic,
    /// Newer container version than this build.
    UnknownVersion(u16),
    /// The file is shorter than its own length prefix claims.
    Truncated,
    /// The payload failed its CRC.
    BadChecksum,
    /// The payload decoded wrong (field-level failure).
    BadPayload(DecodeError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a DataLab snapshot (bad magic)"),
            SnapshotError::UnknownVersion(v) => write!(f, "unknown snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadChecksum => write!(f, "snapshot failed its checksum"),
            SnapshotError::BadPayload(e) => write!(f, "snapshot payload: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encodes a snapshot file image for `state` at WAL watermark `wal_seq`.
pub fn encode_snapshot(wal_seq: u64, state: &SessionState) -> Vec<u8> {
    let mut payload = Vec::with_capacity(256);
    payload.extend_from_slice(&wal_seq.to_le_bytes());
    payload.extend_from_slice(&(state.tables.len() as u32).to_le_bytes());
    for (name, csv) in &state.tables {
        put_str(&mut payload, name);
        put_str(&mut payload, csv);
    }
    put_str(&mut payload, &state.knowledge_json);
    put_str(&mut payload, &state.notebook_json);
    payload.extend_from_slice(&(state.history.len() as u32).to_le_bytes());
    for h in &state.history {
        put_str(&mut payload, h);
    }
    payload.extend_from_slice(&(state.ingest_keys.len() as u32).to_le_bytes());
    for key in &state.ingest_keys {
        put_str(&mut payload, key);
    }

    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot file image, borrowing strings from `bytes`.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotRef<'_>, SnapshotError> {
    if bytes.len() < 16 {
        return Err(SnapshotError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != SNAP_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version == 0 || version > SNAP_VERSION {
        return Err(SnapshotError::UnknownVersion(version));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload = bytes.get(16..16 + len).ok_or(SnapshotError::Truncated)?;
    if crc32(payload) != crc {
        return Err(SnapshotError::BadChecksum);
    }

    parse_payload(payload, version).map_err(SnapshotError::BadPayload)
}

fn parse_payload(payload: &[u8], version: u16) -> Result<SnapshotRef<'_>, DecodeError> {
    let mut at = 0usize;
    let wal_seq = take_u64(payload, &mut at)?;
    let n_tables = take_u32(payload, &mut at)? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(1024));
    for _ in 0..n_tables {
        let name = take_str(payload, &mut at)?;
        let csv = take_str(payload, &mut at)?;
        tables.push((name, csv));
    }
    let knowledge_json = take_str(payload, &mut at)?;
    let notebook_json = take_str(payload, &mut at)?;
    let n_history = take_u32(payload, &mut at)? as usize;
    let mut history = Vec::with_capacity(n_history.min(4096));
    for _ in 0..n_history {
        history.push(take_str(payload, &mut at)?);
    }
    // Version 1 predates ingestion: its payload ends with history.
    let mut ingest_keys = Vec::new();
    if version >= 2 {
        let n_keys = take_u32(payload, &mut at)? as usize;
        ingest_keys.reserve(n_keys.min(4096));
        for _ in 0..n_keys {
            ingest_keys.push(take_str(payload, &mut at)?);
        }
    }
    if at != payload.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(SnapshotRef {
        wal_seq,
        tables,
        knowledge_json,
        notebook_json,
        history,
        ingest_keys,
    })
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fdatasync`, `rename` over the target, then directory `fsync` so the
/// rename itself is durable.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, bytes, None)
}

/// [`write_atomic`] with an optional fault injector over the temp-file
/// write, its fsync, and the rename. A fault at any step leaves the
/// previous snapshot untouched — only the temp file is ever damaged.
pub fn write_atomic_with(
    path: &Path,
    bytes: &[u8],
    faults: Option<&Arc<FaultDisk>>,
) -> io::Result<()> {
    let dir = path.parent().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "snapshot path has no parent")
    })?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        match faults.map(|disk| disk.on_write(bytes.len())) {
            None | Some(crate::faults::WriteDecision::Proceed) => file.write_all(bytes)?,
            Some(crate::faults::WriteDecision::ProceedSlow(stall)) => {
                std::thread::sleep(stall);
                file.write_all(bytes)?;
            }
            Some(crate::faults::WriteDecision::Short { len, error }) => {
                let _ = file.write_all(&bytes[..len]);
                return Err(error);
            }
            Some(crate::faults::WriteDecision::Fail(error)) => return Err(error),
        }
        if let Some(error) = faults.and_then(|disk| disk.on_fsync()) {
            return Err(error);
        }
        file.sync_data()?;
    }
    if let Some(error) = faults.and_then(|disk| disk.on_rename()) {
        return Err(error);
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename durable. Directory fsync is a unix-ism; on other
    // targets the rename alone is the best available ordering.
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SessionState {
        SessionState {
            tables: vec![
                ("sales".into(), "region,amount\neast,10\nwest,20\n".into()),
                ("дim".into(), "k,v\na,1\n".into()),
            ],
            knowledge_json: "{\"nodes\":[{\"kind\":\"jargon\"}]}".into(),
            notebook_json: "{\"cells\":[],\"next_id\":0}".into(),
            history: vec!["total amount by region".into(), "what about west".into()],
            ingest_keys: vec!["batch-001".into(), "batch-002".into()],
        }
    }

    /// A version-1 snapshot image (no ingest-key section), as PR 9
    /// builds wrote them.
    fn encode_snapshot_v1(wal_seq: u64, state: &SessionState) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&wal_seq.to_le_bytes());
        payload.extend_from_slice(&(state.tables.len() as u32).to_le_bytes());
        for (name, csv) in &state.tables {
            put_str(&mut payload, name);
            put_str(&mut payload, csv);
        }
        put_str(&mut payload, &state.knowledge_json);
        put_str(&mut payload, &state.notebook_json);
        payload.extend_from_slice(&(state.history.len() as u32).to_le_bytes());
        for h in &state.history {
            put_str(&mut payload, h);
        }
        let mut out = Vec::new();
        out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn version_1_snapshots_still_decode() {
        let mut old = state();
        old.ingest_keys.clear();
        let bytes = encode_snapshot_v1(9, &old);
        let decoded = decode_snapshot(&bytes).expect("v1 decodes");
        assert_eq!(decoded.wal_seq, 9);
        assert_eq!(decoded.to_state(), old);
        assert!(decoded.ingest_keys.is_empty());
    }

    #[test]
    fn round_trips() {
        let bytes = encode_snapshot(17, &state());
        let decoded = decode_snapshot(&bytes).expect("decodes");
        assert_eq!(decoded.wal_seq, 17);
        assert_eq!(decoded.to_state(), state());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_snapshot(3, &state());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "cut at {cut}/{} decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let clean = encode_snapshot(3, &state());
        for at in 16..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            assert!(
                matches!(
                    decode_snapshot(&bytes),
                    Err(SnapshotError::BadChecksum) | Err(SnapshotError::Truncated)
                ),
                "flip at {at} accepted"
            );
        }
    }

    #[test]
    fn atomic_write_replaces_previous_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "datalab-store-snap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.dls");
        write_atomic(&path, &encode_snapshot(1, &SessionState::default())).unwrap();
        write_atomic(&path, &encode_snapshot(2, &state())).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded.wal_seq, 2);
        assert!(!dir.join("snapshot.tmp").exists());
    }
}
