//! The append-only write-ahead log: CRC-framed, length-prefixed,
//! torn-tail tolerant.
//!
//! File layout:
//!
//! ```text
//! [magic: u32 "DLWA"][version: u16][reserved: u16]      file header
//! [len: u32][crc32: u32][payload: len bytes]            frame 0
//! [len: u32][crc32: u32][payload]                       frame 1
//! …
//! ```
//!
//! Each frame's payload is `[seq: u64][encoded record]` (see
//! [`crate::record`]); `crc32` covers the payload. `seq` increases
//! monotonically per tenant for the WAL's whole lifetime — it survives
//! snapshot truncation, which is what makes recovery idempotent when a
//! crash lands between "snapshot renamed into place" and "WAL
//! truncated": records already folded into the snapshot carry sequence
//! numbers at or below the snapshot's watermark and are skipped on
//! replay.
//!
//! A scan stops at the first frame that is incomplete (*torn tail*: the
//! process died mid-append) or fails its CRC / record decode
//! (*corrupt*). Every record before the bad frame replays; nothing at or
//! after it is trusted — a corrupted length prefix can make all
//! subsequent byte offsets meaningless, so resynchronising past a bad
//! frame would risk mis-parsing, which is worse than losing the tail.

use crate::faults::{FaultDisk, WriteDecision};
use crate::record::{decode_record, encode_record, take_u64, SessionRecord, SessionRecordRef};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// First four bytes of every WAL file (`DLWA`, little-endian).
pub const WAL_MAGIC: u32 = 0x4157_4C44;
/// WAL container version; bumped only if the framing itself changes.
pub const WAL_VERSION: u16 = 1;
/// Bytes of file header before the first frame.
pub const WAL_HEADER_LEN: usize = 8;
/// Bytes of frame header (`len` + `crc32`) before each payload.
pub const FRAME_HEADER_LEN: usize = 8;
/// Upper bound on one frame's payload; anything larger during a scan is
/// treated as corruption rather than attempted as an allocation.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected), the classic zlib polynomial.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// How a WAL scan's tail looked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte parsed as a complete, CRC-clean frame.
    Clean,
    /// The file ended mid-frame — the classic kill-mid-append shape.
    Torn {
        /// Bytes past the last complete frame.
        dropped_bytes: usize,
    },
    /// A complete frame failed its CRC or its record decode.
    Corrupt {
        /// Bytes from the bad frame to end of file.
        dropped_bytes: usize,
    },
}

impl WalTail {
    /// Bytes the scan refused to trust.
    pub fn dropped_bytes(&self) -> usize {
        match self {
            WalTail::Clean => 0,
            WalTail::Torn { dropped_bytes } | WalTail::Corrupt { dropped_bytes } => *dropped_bytes,
        }
    }
}

/// Result of scanning a WAL byte buffer (typically an mmap).
#[derive(Debug)]
pub struct WalScan<'a> {
    /// `(seq, record)` for every trusted frame, in file order.
    pub records: Vec<(u64, SessionRecordRef<'a>)>,
    /// Tail condition.
    pub tail: WalTail,
    /// Byte length of the trusted prefix (header + complete frames); the
    /// writer truncates to this before appending again.
    pub valid_len: usize,
    /// Highest sequence number among trusted frames (0 when none).
    pub last_seq: u64,
}

/// Why a WAL file is unusable as a whole (as opposed to merely having a
/// bad tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The file header's magic does not identify a DataLab WAL.
    BadMagic,
    /// The container version is newer than this build.
    UnknownVersion(u16),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::BadMagic => write!(f, "not a DataLab WAL (bad magic)"),
            WalError::UnknownVersion(v) => write!(f, "unknown WAL version {v}"),
        }
    }
}

impl std::error::Error for WalError {}

/// Encodes the 8-byte file header.
pub fn wal_header() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
    h[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Encodes one frame: `[len][crc][seq + record]`.
pub fn encode_frame(seq: u64, record: &SessionRecord) -> Vec<u8> {
    let body = encode_record(record);
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&body);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Scans a WAL buffer into its trusted records. An empty buffer is a
/// fresh (never-written) WAL; a buffer shorter than the header, or with
/// a damaged header, fails outright — there is nothing salvageable.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan<'_>, WalError> {
    if bytes.is_empty() {
        return Ok(WalScan {
            records: Vec::new(),
            tail: WalTail::Clean,
            valid_len: 0,
            last_seq: 0,
        });
    }
    if bytes.len() < WAL_HEADER_LEN {
        // Killed while writing the header itself: nothing was ever
        // logged, so an empty WAL is the correct recovery.
        return Ok(WalScan {
            records: Vec::new(),
            tail: WalTail::Torn {
                dropped_bytes: bytes.len(),
            },
            valid_len: 0,
            last_seq: 0,
        });
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version == 0 || version > WAL_VERSION {
        return Err(WalError::UnknownVersion(version));
    }

    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN;
    let mut last_seq = 0u64;
    loop {
        if at == bytes.len() {
            return Ok(WalScan {
                records,
                tail: WalTail::Clean,
                valid_len: at,
                last_seq,
            });
        }
        let remaining = bytes.len() - at;
        if remaining < FRAME_HEADER_LEN {
            return Ok(WalScan {
                records,
                tail: WalTail::Torn {
                    dropped_bytes: remaining,
                },
                valid_len: at,
                last_seq,
            });
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            // An absurd length is a corrupted prefix, not a real frame.
            return Ok(WalScan {
                records,
                tail: WalTail::Corrupt {
                    dropped_bytes: remaining,
                },
                valid_len: at,
                last_seq,
            });
        }
        let body_start = at + FRAME_HEADER_LEN;
        let body_end = match body_start.checked_add(len as usize) {
            Some(end) if end <= bytes.len() => end,
            _ => {
                return Ok(WalScan {
                    records,
                    tail: WalTail::Torn {
                        dropped_bytes: remaining,
                    },
                    valid_len: at,
                    last_seq,
                })
            }
        };
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            return Ok(WalScan {
                records,
                tail: WalTail::Corrupt {
                    dropped_bytes: remaining,
                },
                valid_len: at,
                last_seq,
            });
        }
        let mut cursor = 0usize;
        let parsed = take_u64(payload, &mut cursor)
            .and_then(|seq| decode_record(&payload[cursor..]).map(|record| (seq, record)));
        match parsed {
            Ok((seq, record)) => {
                last_seq = last_seq.max(seq);
                records.push((seq, record));
                at = body_end;
            }
            Err(_) => {
                // CRC-clean but undecodable (e.g. written by a newer
                // build): refuse it and everything after it.
                return Ok(WalScan {
                    records,
                    tail: WalTail::Corrupt {
                        dropped_bytes: remaining,
                    },
                    valid_len: at,
                    last_seq,
                });
            }
        }
    }
}

/// Append handle over one tenant's WAL file.
///
/// Opening scans the existing file, truncates any untrusted tail (those
/// bytes are unreadable forever — leaving them would orphan every frame
/// appended after them), and positions the cursor for appends. The
/// caller owns fsync policy via [`WalWriter::sync`].
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    next_seq: u64,
    /// Bytes written since the last successful [`WalWriter::sync`].
    unsynced_bytes: u64,
    /// Byte length of the trusted prefix (header + whole frames). A
    /// failed append can leave a partial frame past this point with the
    /// cursor advanced; before the next append the writer truncates back
    /// here, or every later frame would sit orphaned behind garbage.
    trusted_len: u64,
    /// Set when the file may hold untrusted bytes past `trusted_len`.
    needs_repair: bool,
    /// Optional deterministic fault injector (see [`crate::faults`]).
    faults: Option<Arc<FaultDisk>>,
}

/// What [`WalWriter::open`] found in the existing file.
#[derive(Debug)]
pub struct WalOpen {
    /// The append handle.
    pub writer: WalWriter,
    /// Records recovered from the trusted prefix (owned — the scan
    /// buffer dies with `open`).
    pub records: Vec<(u64, SessionRecord)>,
    /// Tail condition found on open.
    pub tail: WalTail,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path` for appending.
    /// `seq_floor` is the snapshot's sequence watermark: appends continue
    /// above `max(seq_floor, last logged seq)`.
    pub fn open(path: &Path, seq_floor: u64) -> io::Result<WalOpen> {
        WalWriter::open_with(path, seq_floor, None)
    }

    /// [`WalWriter::open`] with an optional fault injector threaded
    /// under every subsequent file operation (including this open's own
    /// truncation and header write).
    pub fn open_with(
        path: &Path,
        seq_floor: u64,
        faults: Option<Arc<FaultDisk>>,
    ) -> io::Result<WalOpen> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let bytes = crate::mmap::MappedFile::open_from(&file)?;
        let scan = scan_wal(bytes.bytes())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let records: Vec<(u64, SessionRecord)> = scan
            .records
            .iter()
            .map(|(seq, r)| (*seq, r.to_owned()))
            .collect();
        let tail = scan.tail;
        let valid_len = scan.valid_len;
        let last_seq = scan.last_seq;
        drop(bytes);

        let mut writer = WalWriter {
            file,
            next_seq: last_seq.max(seq_floor) + 1,
            unsynced_bytes: 0,
            trusted_len: valid_len as u64,
            needs_repair: true,
            faults,
        };
        if valid_len == 0 {
            // Fresh (or header-torn) file: start over with a header.
            writer.trusted_len = 0;
        } else if tail == WalTail::Clean {
            // Nothing untrusted on disk; skip the repair truncation.
            writer.needs_repair = false;
            writer.file.seek(SeekFrom::End(0))?;
        }
        writer.repair_if_needed()?;
        Ok(WalOpen {
            writer,
            records,
            tail,
        })
    }

    /// Writes through the fault injector. A short-write fault lands a
    /// strict prefix for real before reporting failure, so the on-disk
    /// damage is the genuine torn-frame shape.
    fn checked_write(&mut self, buf: &[u8]) -> io::Result<()> {
        let decision = match &self.faults {
            Some(disk) => disk.on_write(buf.len()),
            None => WriteDecision::Proceed,
        };
        match decision {
            WriteDecision::Proceed => self.file.write_all(buf),
            WriteDecision::ProceedSlow(stall) => {
                std::thread::sleep(stall);
                self.file.write_all(buf)
            }
            WriteDecision::Short { len, error } => {
                let _ = self.file.write_all(&buf[..len]);
                Err(error)
            }
            WriteDecision::Fail(error) => Err(error),
        }
    }

    fn checked_set_len(&mut self, len: u64) -> io::Result<()> {
        if let Some(disk) = &self.faults {
            if let Some(error) = disk.on_truncate() {
                return Err(error);
            }
        }
        self.file.set_len(len)
    }

    fn checked_sync_data(&mut self) -> io::Result<()> {
        if let Some(disk) = &self.faults {
            if let Some(error) = disk.on_fsync() {
                return Err(error);
            }
        }
        self.file.sync_data()
    }

    /// Truncates back to the trusted prefix after a failed append (and
    /// rewrites the header after a failed [`WalWriter::reset`]). Until
    /// this succeeds no append may land: it would sit behind untrusted
    /// bytes and be dropped by every future scan.
    fn repair_if_needed(&mut self) -> io::Result<()> {
        if !self.needs_repair {
            return Ok(());
        }
        self.checked_set_len(self.trusted_len)?;
        self.file.seek(SeekFrom::Start(self.trusted_len))?;
        if self.trusted_len < WAL_HEADER_LEN as u64 {
            // trusted_len is 0 here: header writes are all-or-nothing
            // from the trust perspective (a partial header was just
            // wiped by the truncation above).
            self.checked_write(&wal_header())?;
            self.trusted_len = WAL_HEADER_LEN as u64;
        }
        self.needs_repair = false;
        Ok(())
    }

    /// Appends one record, returning `(seq, frame_bytes)`. The bytes hit
    /// the OS; durability against power loss requires [`WalWriter::sync`].
    /// On failure nothing is logically appended: the sequence number is
    /// not consumed and any partial frame is truncated away before the
    /// next append.
    pub fn append(&mut self, record: &SessionRecord) -> io::Result<(u64, u64)> {
        self.repair_if_needed()?;
        let seq = self.next_seq;
        let frame = encode_frame(seq, record);
        if let Err(error) = self.checked_write(&frame) {
            self.needs_repair = true;
            return Err(error);
        }
        self.next_seq += 1;
        self.unsynced_bytes += frame.len() as u64;
        self.trusted_len += frame.len() as u64;
        Ok((seq, frame.len() as u64))
    }

    /// Flushes written frames to stable storage (`fdatasync`). Returns
    /// the number of bytes made durable (0 = nothing was pending). On
    /// failure the pending byte count is kept — it is the fsync backlog
    /// the health surface reports.
    pub fn sync(&mut self) -> io::Result<u64> {
        if self.unsynced_bytes == 0 {
            return Ok(0);
        }
        self.checked_sync_data()?;
        Ok(std::mem::take(&mut self.unsynced_bytes))
    }

    /// Whether appends since the last [`WalWriter::sync`] are pending.
    pub fn is_dirty(&self) -> bool {
        self.unsynced_bytes > 0
    }

    /// Bytes appended but not yet known durable.
    pub fn unsynced_bytes(&self) -> u64 {
        self.unsynced_bytes
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Truncates the log back to a bare header after a snapshot made its
    /// contents redundant. Sequence numbers keep counting up — see the
    /// module docs for why that matters. On failure the writer repairs
    /// itself before the next append (worst case the WAL still holds
    /// pre-snapshot records, which recovery skips by watermark).
    pub fn reset(&mut self) -> io::Result<()> {
        self.repair_if_needed()?;
        self.checked_set_len(0)?;
        self.trusted_len = 0;
        self.needs_repair = true;
        self.file.seek(SeekFrom::Start(0))?;
        self.checked_write(&wal_header())?;
        self.trusted_len = WAL_HEADER_LEN as u64;
        self.needs_repair = false;
        self.unsynced_bytes = WAL_HEADER_LEN as u64;
        self.checked_sync_data()?;
        self.unsynced_bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "datalab-store-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn reg(i: usize) -> SessionRecord {
        SessionRecord::RegisterCsv {
            name: format!("t{i}"),
            csv: format!("a,b\n{i},{i}\n"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("wal.dlw");
        {
            let mut open = WalWriter::open(&path, 0).unwrap();
            assert!(open.records.is_empty());
            for i in 0..5 {
                open.writer.append(&reg(i)).unwrap();
            }
            open.writer.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_wal(&bytes).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.last_seq, 5);
        let seqs: Vec<u64> = scan.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(scan.records[2].1.to_owned(), reg(2));
    }

    #[test]
    fn torn_tail_drops_only_the_partial_frame() {
        let dir = temp_dir("torn");
        let path = dir.join("wal.dlw");
        let mut open = WalWriter::open(&path, 0).unwrap();
        for i in 0..3 {
            open.writer.append(&reg(i)).unwrap();
        }
        open.writer.sync().unwrap();
        drop(open);
        // Simulate a kill mid-append: write half of a fourth frame.
        let frame = encode_frame(4, &reg(3));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let scan_bytes = std::fs::read(&path).unwrap();
        let scan = scan_wal(&scan_bytes).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(matches!(scan.tail, WalTail::Torn { .. }));

        // Re-opening truncates the torn bytes and appends continue.
        let mut open = WalWriter::open(&path, 0).unwrap();
        assert_eq!(open.records.len(), 3);
        assert!(matches!(open.tail, WalTail::Torn { .. }));
        open.writer.append(&reg(9)).unwrap();
        open.writer.sync().unwrap();
        drop(open);
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_wal(&bytes).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.records[3].0, 4, "seq resumes past the torn frame");
    }

    #[test]
    fn bit_flip_is_rejected_not_misparsed() {
        let dir = temp_dir("flip");
        let path = dir.join("wal.dlw");
        let mut open = WalWriter::open(&path, 0).unwrap();
        for i in 0..3 {
            open.writer.append(&reg(i)).unwrap();
        }
        open.writer.sync().unwrap();
        drop(open);
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit in every payload byte position of the last frame.
        let last_frame_start = {
            let scan = scan_wal(&clean).unwrap();
            let without_last = {
                let mut upto = WAL_HEADER_LEN;
                for (i, _) in scan.records.iter().enumerate() {
                    if i + 1 == scan.records.len() {
                        break;
                    }
                    let len = u32::from_le_bytes(clean[upto..upto + 4].try_into().unwrap());
                    upto += FRAME_HEADER_LEN + len as usize;
                }
                upto
            };
            without_last
        };
        for at in (last_frame_start + FRAME_HEADER_LEN)..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x10;
            let scan = scan_wal(&bytes).unwrap();
            assert_eq!(scan.records.len(), 2, "flip at {at} kept the bad frame");
            assert!(matches!(scan.tail, WalTail::Corrupt { .. }));
        }
    }

    #[test]
    fn seq_floor_lifts_the_next_sequence() {
        let dir = temp_dir("floor");
        let path = dir.join("wal.dlw");
        let open = WalWriter::open(&path, 41).unwrap();
        assert_eq!(open.writer.next_seq(), 42);
    }

    #[test]
    fn bad_magic_fails_outright() {
        let bytes = b"GARBAGE-".to_vec();
        assert!(matches!(scan_wal(&bytes), Err(WalError::BadMagic)));
    }

    #[test]
    fn failed_append_truncates_the_partial_frame() {
        use crate::faults::{DiskFault, FaultDisk, FaultDiskConfig};
        let dir = temp_dir("repair");
        let path = dir.join("wal.dlw");
        // Fresh open consumes op 0 (truncate) and op 1 (header write);
        // appends are ops 2 and 3 — tear the second one.
        let disk = Arc::new(FaultDisk::new(FaultDiskConfig::scheduled(
            7,
            DiskFault::ShortWrite,
            &[3],
        )));
        let mut open = WalWriter::open_with(&path, 0, Some(Arc::clone(&disk))).unwrap();
        open.writer.append(&reg(0)).unwrap();
        let torn = open.writer.append(&reg(1));
        assert!(torn.is_err(), "scheduled short write fails the append");
        assert_eq!(disk.injected(), 1);
        // The failed append consumed no sequence number, and the next
        // append repairs the tail before writing.
        open.writer.append(&reg(2)).unwrap();
        open.writer.sync().unwrap();
        drop(open);
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_wal(&bytes).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        let records: Vec<SessionRecord> = scan.records.iter().map(|(_, r)| r.to_owned()).collect();
        assert_eq!(records, vec![reg(0), reg(2)]);
        let seqs: Vec<u64> = scan.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn failed_fsync_keeps_the_backlog() {
        use crate::faults::{FaultDisk, FaultDiskConfig};
        let dir = temp_dir("backlog");
        let path = dir.join("wal.dlw");
        let disk = Arc::new(FaultDisk::new(FaultDiskConfig {
            fsync_fail_rate: 1.0,
            ..FaultDiskConfig::disabled(7)
        }));
        let mut open = WalWriter::open_with(&path, 0, Some(Arc::clone(&disk))).unwrap();
        open.writer.append(&reg(0)).unwrap();
        let backlog = open.writer.unsynced_bytes();
        assert!(backlog > 0);
        assert!(open.writer.sync().is_err());
        assert_eq!(open.writer.unsynced_bytes(), backlog, "backlog persists");
        disk.clear();
        assert_eq!(open.writer.sync().unwrap(), backlog);
        assert_eq!(open.writer.unsynced_bytes(), 0);
    }

    #[test]
    fn reset_keeps_sequence_monotonic() {
        let dir = temp_dir("reset");
        let path = dir.join("wal.dlw");
        let mut open = WalWriter::open(&path, 0).unwrap();
        for i in 0..3 {
            open.writer.append(&reg(i)).unwrap();
        }
        open.writer.reset().unwrap();
        let (seq, _) = open.writer.append(&reg(9)).unwrap();
        assert_eq!(seq, 4);
        drop(open);
        let reopened = WalWriter::open(&path, 0).unwrap();
        assert_eq!(reopened.records.len(), 1);
        assert_eq!(reopened.records[0].0, 4);
    }
}
