//! Property-based tests for the durability layer's core invariants:
//! record framing round-trips exactly, damaged WAL bytes are rejected
//! (never mis-parsed into a record that was not written), and
//! snapshot + tail replay is equivalent to replaying the full log.

use datalab_store::{
    decode_record, decode_snapshot, encode_frame, encode_record, encode_snapshot, scan_wal,
    wal_header, DurabilityConfig, DurableStore, FsyncPolicy, SessionRecord, SessionState, WalTail,
    WAL_HEADER_LEN,
};
use datalab_telemetry::Telemetry;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Arbitrary record payload text: includes quotes, commas, newlines,
/// NULs, and multi-byte UTF-8 so framing cannot rely on any sentinel.
fn text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 _,\"\\n\\x00éλ🦀-]{0,40}").expect("valid regex")
}

fn record_strategy() -> impl Strategy<Value = SessionRecord> {
    prop_oneof![
        (text(), text()).prop_map(|(name, csv)| SessionRecord::RegisterCsv { name, csv }),
        (text(), text())
            .prop_map(|(workload, question)| SessionRecord::Query { workload, question }),
        (text(), text()).prop_map(|(term, expansion)| SessionRecord::AddJargon { term, expansion }),
        (text(), text(), text(), text()).prop_map(|(term, table, column, value)| {
            SessionRecord::AddValueAlias {
                term,
                table,
                column,
                value,
            }
        }),
        text().prop_map(|json| SessionRecord::ImportKnowledge { json }),
        text().prop_map(|json| SessionRecord::ImportNotebook { json }),
        (text(), text(), proptest::option::of(text()), text()).prop_map(
            |(table, rows_csv, key_column, idempotency_key)| SessionRecord::IngestBatch {
                table,
                rows_csv,
                key_column,
                idempotency_key,
            },
        ),
    ]
}

fn state_strategy() -> impl Strategy<Value = SessionState> {
    (
        proptest::collection::vec((text(), text()), 0..4),
        text(),
        text(),
        proptest::collection::vec(text(), 0..4),
        proptest::collection::vec(text(), 0..4),
    )
        .prop_map(
            |(tables, knowledge_json, notebook_json, history, ingest_keys)| SessionState {
                tables,
                knowledge_json,
                notebook_json,
                history,
                ingest_keys,
            },
        )
}

/// Builds WAL bytes (header + one frame per record) the way the writer
/// lays them on disk.
fn wal_bytes(records: &[SessionRecord]) -> Vec<u8> {
    let mut bytes = wal_header();
    for (i, record) in records.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(i as u64 + 1, record));
    }
    bytes
}

/// A tenant-unique scratch directory per proptest case.
fn scratch() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "datalab-store-props-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    /// Payload encoding round-trips every variant and every string
    /// exactly, through the borrowed decode.
    #[test]
    fn record_encode_decode_round_trips(record in record_strategy()) {
        let bytes = encode_record(&record);
        let decoded = decode_record(&bytes).expect("encoded record decodes");
        prop_assert_eq!(decoded.to_owned(), record);
    }

    /// A truncated payload is rejected, never mis-parsed: any strict
    /// prefix of an encoded record fails to decode.
    #[test]
    fn truncated_record_payloads_are_rejected(record in record_strategy(), cut in any::<prop::sample::Index>()) {
        let bytes = encode_record(&record);
        let cut = cut.index(bytes.len()); // 0..len, always a strict prefix
        prop_assert!(decode_record(&bytes[..cut]).is_err());
    }

    /// Scanning an intact WAL returns every record in order with a
    /// clean tail.
    #[test]
    fn wal_scan_round_trips(records in proptest::collection::vec(record_strategy(), 0..8)) {
        let bytes = wal_bytes(&records);
        let scan = scan_wal(&bytes).expect("well-formed WAL scans");
        prop_assert!(matches!(scan.tail, WalTail::Clean));
        prop_assert_eq!(scan.valid_len as usize, bytes.len());
        let decoded: Vec<SessionRecord> =
            scan.records.iter().map(|(_, r)| r.to_owned()).collect();
        prop_assert_eq!(decoded, records);
        for (i, (seq, _)) in scan.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
        }
    }

    /// Cutting a WAL anywhere (a torn write) yields exactly the records
    /// whose frames fit before the cut — a strict prefix, with nothing
    /// invented from the partial frame.
    #[test]
    fn torn_wal_tails_recover_a_strict_prefix(
        records in proptest::collection::vec(record_strategy(), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = wal_bytes(&records);
        let cut = WAL_HEADER_LEN + cut.index(bytes.len() - WAL_HEADER_LEN + 1);
        let scan = scan_wal(&bytes[..cut]).expect("header intact");
        let decoded: Vec<SessionRecord> =
            scan.records.iter().map(|(_, r)| r.to_owned()).collect();
        prop_assert!(decoded.len() <= records.len());
        prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
        if cut == bytes.len() {
            prop_assert!(matches!(scan.tail, WalTail::Clean));
        } else {
            // Everything past the last intact frame counts as dropped.
            prop_assert_eq!(
                scan.valid_len as usize + scan.tail.dropped_bytes() as usize,
                cut
            );
        }
    }

    /// Flipping any single bit in the body is detected (CRC32 catches
    /// all single-bit errors): the scan never returns a record that was
    /// not written, and stops at or before the damaged frame.
    #[test]
    fn bit_flips_never_mis_parse(
        records in proptest::collection::vec(record_strategy(), 1..8),
        at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = wal_bytes(&records);
        let at = WAL_HEADER_LEN + at.index(bytes.len() - WAL_HEADER_LEN);
        bytes[at] ^= 1 << bit;
        let scan = scan_wal(&bytes).expect("header intact");
        prop_assert!(!matches!(scan.tail, WalTail::Clean));
        let decoded: Vec<SessionRecord> =
            scan.records.iter().map(|(_, r)| r.to_owned()).collect();
        prop_assert!(decoded.len() < records.len());
        prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
    }

    /// Snapshot encoding round-trips the full state and its watermark.
    #[test]
    fn snapshot_encode_decode_round_trips(state in state_strategy(), wal_seq in any::<u64>()) {
        let bytes = encode_snapshot(wal_seq, &state);
        let snap = decode_snapshot(&bytes).expect("encoded snapshot decodes");
        prop_assert_eq!(snap.wal_seq, wal_seq);
        prop_assert_eq!(snap.to_state(), state);
    }

    /// Snapshot + tail replay ≡ full-log replay: with any snapshot
    /// cadence, recovery hands back a (snapshot state, tail records)
    /// pair whose fold equals folding every record from scratch. The
    /// fold models a session: registrations update tables, everything
    /// appends to history.
    #[test]
    fn snapshot_plus_tail_replay_equals_full_replay(
        records in proptest::collection::vec(record_strategy(), 1..12),
        snapshot_every in 0u64..5,
    ) {
        fn fold(state: &mut SessionState, record: &SessionRecord) {
            if let SessionRecord::RegisterCsv { name, csv } = record {
                state.tables.push((name.clone(), csv.clone()));
            }
            state.history.push(format!("{record:?}"));
        }

        let dir = scratch();
        let config = DurabilityConfig {
            fsync: FsyncPolicy::Never,
            snapshot_every,
        };
        let store = DurableStore::open(&dir, config.clone(), Telemetry::new())
            .expect("store opens");

        // Live run: fold every record and write through, snapshotting
        // whenever the cadence fires.
        let mut live = SessionState::default();
        for record in &records {
            fold(&mut live, record);
            let receipt = store.append("tenant", record).expect("append succeeds");
            if receipt.snapshot_due {
                store.snapshot("tenant", &live).expect("snapshot succeeds");
            }
        }
        store.flush_all();
        drop(store);

        // Reboot and recover: restored snapshot state + tail replay
        // must reproduce the live fold exactly.
        let store = DurableStore::open(&dir, config, Telemetry::new()).expect("store reopens");
        let (snapshot, tail, torn, corrupt) = store
            .recover_owned("tenant")
            .expect("recovery io")
            .expect("tenant has durable state");
        prop_assert!(!torn);
        prop_assert!(!corrupt);
        let mut recovered = snapshot.unwrap_or_default();
        for record in &tail {
            fold(&mut recovered, record);
        }
        prop_assert_eq!(recovered, live);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Replaying a WAL holding duplicated idempotency keys applies each
    /// key exactly once, at any snapshot cadence. Keys are drawn from a
    /// tiny pool so duplicates are common — modelling a crash between
    /// WAL append and HTTP response followed by a client retry, which
    /// legitimately leaves the same key in the log twice. The dedup set
    /// must survive the snapshot boundary: a key applied before the
    /// snapshot must still suppress its duplicate replayed from the
    /// tail.
    #[test]
    fn duplicated_idempotency_keys_replay_exactly_once(
        keys in proptest::collection::vec(0u8..4, 1..12),
        snapshot_every in 0u64..5,
    ) {
        /// The ingest fold the session layer implements: apply only
        /// unseen keys, remember every applied key.
        fn fold(state: &mut SessionState, key: &str) {
            if !state.ingest_keys.iter().any(|k| k == key) {
                state.ingest_keys.push(key.to_string());
                state.history.push(format!("applied {key}"));
            }
        }

        let dir = scratch();
        let config = DurabilityConfig {
            fsync: FsyncPolicy::Never,
            snapshot_every,
        };
        let store = DurableStore::open(&dir, config.clone(), Telemetry::new())
            .expect("store opens");

        let mut live = SessionState::default();
        for key in &keys {
            let key = format!("batch-{key}");
            let record = SessionRecord::IngestBatch {
                table: "t".to_string(),
                rows_csv: "a\n1\n".to_string(),
                key_column: None,
                idempotency_key: key.clone(),
            };
            // Every attempt reaches the WAL — duplicates included.
            let receipt = store.append("tenant", &record).expect("append succeeds");
            fold(&mut live, &key);
            if receipt.snapshot_due {
                store.snapshot("tenant", &live).expect("snapshot succeeds");
            }
        }
        store.flush_all();
        drop(store);

        let store = DurableStore::open(&dir, config, Telemetry::new()).expect("store reopens");
        let (snapshot, tail, torn, corrupt) = store
            .recover_owned("tenant")
            .expect("recovery io")
            .expect("tenant has durable state");
        prop_assert!(!torn);
        prop_assert!(!corrupt);
        let mut recovered = snapshot.unwrap_or_default();
        for record in &tail {
            if let SessionRecord::IngestBatch { idempotency_key, .. } = record {
                fold(&mut recovered, idempotency_key);
            }
        }
        prop_assert_eq!(&recovered, &live);
        // Exactly-once: no key ever applied twice.
        let mut seen = std::collections::BTreeSet::new();
        for key in &recovered.ingest_keys {
            prop_assert!(seen.insert(key.clone()), "key {} applied twice", key);
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
