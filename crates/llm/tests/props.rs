//! Property-based tests for the LLM substrate: hashing, embeddings,
//! tokens, prompt roundtrips, model determinism/totality, and the chaos
//! transport layer.

use datalab_llm::util::{hash01, split_ident, stem};
use datalab_llm::{
    count_tokens, parse_prompt, ChaosConfig, ChaosLlm, HashEmbedder, LanguageModel, LlmError,
    Prompt, SimLlm,
};
use proptest::prelude::*;

/// Deterministic infallible backend for fault-sequence properties.
struct Echo;
impl LanguageModel for Echo {
    fn name(&self) -> &str {
        "echo"
    }
    fn complete(&self, prompt: &str) -> String {
        format!("echo:{prompt}")
    }
}

fn sim_prompt(question: &str) -> String {
    Prompt::new("nl2sql")
        .section(
            "schema",
            "table sales: region (str), amount (int), ftime (date)",
        )
        .section("question", question)
        .render()
}

proptest! {
    #[test]
    fn hash01_bounded_and_deterministic(s in ".{0,64}") {
        let h = hash01(&s);
        prop_assert!((0.0..1.0).contains(&h));
        prop_assert_eq!(h, hash01(&s));
    }

    #[test]
    fn embeddings_are_unit_or_zero(s in ".{0,64}") {
        let v = HashEmbedder::new().embed(&s);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn token_count_superadditive_floor(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        // Concatenating text never reduces the count.
        let joined = format!("{a} {b}");
        prop_assert!(count_tokens(&joined) >= count_tokens(&a));
        prop_assert!(count_tokens(&joined) >= count_tokens(&b));
    }

    #[test]
    fn stem_is_idempotent(w in "[a-z]{1,12}") {
        prop_assert_eq!(stem(&stem(&w)), stem(&w));
    }

    #[test]
    fn split_ident_yields_nonempty_lowercase(s in "[A-Za-z0-9_]{0,24}") {
        for part in split_ident(&s) {
            prop_assert!(!part.is_empty());
            prop_assert_eq!(part.to_lowercase(), part);
        }
    }

    #[test]
    fn prompt_roundtrip(
        task in "[a-z0-9_]{1,12}",
        name in "[a-z]{1,8}",
        // Section content without marker-colliding lines.
        content in "[a-zA-Z0-9 .,:]{0,80}",
    ) {
        let rendered = Prompt::new(task.clone()).section(name.clone(), content.clone()).render();
        let parsed = parse_prompt(&rendered);
        prop_assert_eq!(parsed.task.clone(), task);
        prop_assert_eq!(parsed.section(&name).trim_end_matches('\n'), content.as_str());
    }

    #[test]
    fn model_is_total_and_deterministic(text in ".{0,160}") {
        let m = SimLlm::gpt4();
        let a = m.complete(&text);
        let b = m.complete(&text);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn nl2sql_outputs_select_statements(q in "[a-z ]{0,40}") {
        let m = SimLlm::gpt4();
        let out = m.complete(
            &Prompt::new("nl2sql")
                .section("schema", "table t: region (str), amount (int), day (date)")
                .section("question", q)
                .render(),
        );
        prop_assert!(out.to_uppercase().starts_with("SELECT"), "{}", out);
    }

    /// All-zero rates make `ChaosLlm` a bit-identical passthrough for
    /// `SimLlm` — same completions, same token accounting — under both
    /// the fallible and infallible call surfaces.
    #[test]
    fn zero_rate_chaos_is_bit_identical_over_simllm(
        questions in proptest::collection::vec("[a-z ]{0,40}", 1..8),
        seed in any::<u64>(),
    ) {
        let raw = SimLlm::gpt4();
        let chaos = ChaosLlm::new(SimLlm::gpt4(), ChaosConfig::disabled(seed));
        for (i, q) in questions.iter().enumerate() {
            let p = sim_prompt(q);
            if i % 2 == 0 {
                prop_assert_eq!(Ok(raw.complete(&p)), chaos.try_complete(&p));
            } else {
                prop_assert_eq!(raw.complete(&p), chaos.complete(&p));
            }
        }
        prop_assert_eq!(raw.usage().snapshot(), chaos.inner().usage().snapshot());
    }

    /// The same seed + rates always injects the same fault sequence: two
    /// independent instances agree call by call, fault payloads included.
    #[test]
    fn same_seed_and_rates_same_fault_sequence(
        seed in any::<u64>(),
        transport in 0.0f64..0.5,
        timeout in 0.0f64..0.3,
        truncate in 0.0f64..0.3,
        garbage in 0.0f64..0.3,
        prompts in proptest::collection::vec("[a-z0-9 ]{0,30}", 1..20),
    ) {
        let config = ChaosConfig {
            seed,
            transport_rate: transport,
            timeout_rate: timeout,
            truncate_rate: truncate,
            garbage_rate: garbage,
        };
        let a = ChaosLlm::new(Echo, config.clone());
        let b = ChaosLlm::new(Echo, config);
        for p in &prompts {
            prop_assert_eq!(a.try_complete(p), b.try_complete(p));
        }
        prop_assert_eq!(a.calls(), b.calls());
    }

    /// Faulty calls never panic and always carry a taxonomy kind.
    #[test]
    fn chaos_faults_are_total_and_classified(
        seed in any::<u64>(),
        prompt in ".{0,80}",
    ) {
        let chaos = ChaosLlm::new(Echo, ChaosConfig::uniform(seed, 1.0));
        match chaos.try_complete(&prompt) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(matches!(
                    e.kind(),
                    "transport" | "timeout" | "truncated" | "garbage"
                ));
                prop_assert!(e.is_retryable());
                let _ = matches!(e, LlmError::Truncated(_) | LlmError::Garbage(_));
            }
        }
    }
}
