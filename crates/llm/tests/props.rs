//! Property-based tests for the LLM substrate: hashing, embeddings,
//! tokens, prompt roundtrips, and model determinism/totality.

use datalab_llm::util::{hash01, split_ident, stem};
use datalab_llm::{count_tokens, parse_prompt, HashEmbedder, LanguageModel, Prompt, SimLlm};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hash01_bounded_and_deterministic(s in ".{0,64}") {
        let h = hash01(&s);
        prop_assert!((0.0..1.0).contains(&h));
        prop_assert_eq!(h, hash01(&s));
    }

    #[test]
    fn embeddings_are_unit_or_zero(s in ".{0,64}") {
        let v = HashEmbedder::new().embed(&s);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn token_count_superadditive_floor(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        // Concatenating text never reduces the count.
        let joined = format!("{a} {b}");
        prop_assert!(count_tokens(&joined) >= count_tokens(&a));
        prop_assert!(count_tokens(&joined) >= count_tokens(&b));
    }

    #[test]
    fn stem_is_idempotent(w in "[a-z]{1,12}") {
        prop_assert_eq!(stem(&stem(&w)), stem(&w));
    }

    #[test]
    fn split_ident_yields_nonempty_lowercase(s in "[A-Za-z0-9_]{0,24}") {
        for part in split_ident(&s) {
            prop_assert!(!part.is_empty());
            prop_assert_eq!(part.to_lowercase(), part);
        }
    }

    #[test]
    fn prompt_roundtrip(
        task in "[a-z0-9_]{1,12}",
        name in "[a-z]{1,8}",
        // Section content without marker-colliding lines.
        content in "[a-zA-Z0-9 .,:]{0,80}",
    ) {
        let rendered = Prompt::new(task.clone()).section(name.clone(), content.clone()).render();
        let parsed = parse_prompt(&rendered);
        prop_assert_eq!(parsed.task.clone(), task);
        prop_assert_eq!(parsed.section(&name).trim_end_matches('\n'), content.as_str());
    }

    #[test]
    fn model_is_total_and_deterministic(text in ".{0,160}") {
        let m = SimLlm::gpt4();
        let a = m.complete(&text);
        let b = m.complete(&text);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn nl2sql_outputs_select_statements(q in "[a-z ]{0,40}") {
        let m = SimLlm::gpt4();
        let out = m.complete(
            &Prompt::new("nl2sql")
                .section("schema", "table t: region (str), amount (int), day (date)")
                .section("question", q)
                .render(),
        );
        prop_assert!(out.to_uppercase().starts_with("SELECT"), "{}", out);
    }
}
