//! The simulated language model.
//!
//! `SimLlm` is the reproduction's stand-in for GPT-4 / Qwen-2.5 /
//! LLaMA-3.1 (see DESIGN.md "Substitutions"). It is a deterministic
//! text-in/text-out endpoint that genuinely performs DataLab's structured
//! sub-tasks using only evidence present in the prompt, and injects
//! characteristic mistakes at a rate governed by its [`ModelProfile`] and
//! by prompt quality (missing knowledge, distracting context, feedback).

use crate::embed::text_similarity;
use crate::generate::{to_dscript, to_dsl_json, to_sql, to_vis_json};
use crate::intent::{infer_intent, Evidence, QueryIntent};
use crate::profile::ModelProfile;
use crate::prompt::{parse_prompt, ParsedPrompt};
use crate::tokens::{count_tokens, TokenMeter};
use crate::util::{hash01, split_ident, token_overlap, words};
use datalab_frame::AggFunc;
use datalab_telemetry::Telemetry;
use serde_json::json;
use std::sync::{Arc, Mutex};

/// The abstract model endpoint: text in, text out.
pub trait LanguageModel: Send + Sync {
    /// Model name.
    fn name(&self) -> &str;
    /// Completes a rendered prompt.
    fn complete(&self, prompt: &str) -> String;
    /// Fallible completion. Infallible models (like [`SimLlm`]) use this
    /// default; transport decorators ([`crate::transport::ChaosLlm`],
    /// [`crate::transport::ResilientLlm`]) override it to surface
    /// [`crate::transport::LlmError`]s, which error-aware callers handle
    /// with fallbacks instead of consuming poisoned text.
    fn try_complete(&self, prompt: &str) -> Result<String, crate::transport::LlmError> {
        Ok(self.complete(prompt))
    }
    /// Token usage meter, when the implementation tracks one.
    fn meter(&self) -> Option<&TokenMeter> {
        None
    }
}

/// Shared-ownership models are models: `Arc<SimLlm>` (and trait objects
/// behind `Arc`) can be handed to any `&dyn LanguageModel` consumer or
/// wrapped in a transport decorator while the platform keeps its own
/// handle.
impl<M: LanguageModel + ?Sized> LanguageModel for Arc<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn complete(&self, prompt: &str) -> String {
        (**self).complete(prompt)
    }
    fn try_complete(&self, prompt: &str) -> Result<String, crate::transport::LlmError> {
        (**self).try_complete(prompt)
    }
    fn meter(&self) -> Option<&TokenMeter> {
        (**self).meter()
    }
}

/// Deterministic simulated LLM.
#[derive(Debug)]
pub struct SimLlm {
    profile: ModelProfile,
    meter: Arc<TokenMeter>,
    telemetry: Mutex<Option<Telemetry>>,
}

impl SimLlm {
    /// Creates a model with the given capability profile.
    pub fn new(profile: ModelProfile) -> Self {
        SimLlm {
            profile,
            meter: Arc::new(TokenMeter::new()),
            telemetry: Mutex::new(None),
        }
    }

    /// Attaches a telemetry pipeline: every subsequent [`SimLlm::complete`]
    /// is charged to the telemetry's innermost stage/agent scope and folded
    /// into its metrics registry, mirroring the [`TokenMeter`] exactly.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock().expect("telemetry slot") = Some(telemetry);
    }

    /// GPT-4-profile model (the paper's default foundation model).
    pub fn gpt4() -> Self {
        SimLlm::new(ModelProfile::gpt4())
    }

    /// The capability profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Shared usage meter.
    pub fn usage(&self) -> Arc<TokenMeter> {
        Arc::clone(&self.meter)
    }

    fn build_evidence(p: &ParsedPrompt) -> Evidence {
        let mut ev = Evidence::from_schema(p.section("schema"));
        // Data-profiling output and retrieved knowledge both enrich
        // grounding; context (notebook cells, buffer units) can contain
        // structured lines too — absorb them all. Profiling emits both
        // schema-shaped lines (values/samples) and knowledge-shaped ones.
        ev.absorb_schema(p.section("profile"));
        ev.absorb_schema(p.section("context"));
        ev.absorb_knowledge(p.section("knowledge"));
        ev.absorb_knowledge(p.section("profile"));
        ev.absorb_knowledge(p.section("context"));
        if ev.current_date.is_none() {
            let cd = p.section("current_date").trim().to_string();
            if !cd.is_empty() {
                ev.current_date = Some(cd);
            }
        }
        ev
    }

    /// Deterministic failure decision for one generation. The probability
    /// grows with task complexity and with distracting prompt volume, and
    /// shrinks when execution feedback (the retry path) or in-context
    /// examples (few-shot prompting à la DAIL-SQL) are present.
    fn fails(
        &self,
        task: &str,
        prompt: &str,
        complexity: usize,
        has_feedback: bool,
        has_examples: bool,
    ) -> Option<u64> {
        let skill = self.profile.skill_for(task);
        let prompt_tokens = count_tokens(prompt) as f64;
        let distraction = ((prompt_tokens - 1500.0) / 9000.0).clamp(0.0, 0.35);
        let mut p_fail = (1.0 - skill) * (0.35 + 0.12 * complexity as f64) + distraction;
        if has_feedback {
            p_fail *= 0.45;
        }
        if has_examples {
            p_fail *= 0.58;
        }
        p_fail = p_fail.clamp(0.0, 0.9);
        let salt = format!("{}|{}|{}", self.profile.name, task, prompt);
        if hash01(&salt) < p_fail {
            // The slip *kind* must be independent of the slip *decision*
            // (both deriving from one hash skews which variants fire for
            // low-failure-rate models).
            let variant_salt = format!("{salt}|variant");
            Some((hash01(&variant_salt) * u32::MAX as f64) as u64)
        } else {
            None
        }
    }
}

fn intent_complexity(intent: &QueryIntent) -> usize {
    let multi = if intent.tables().len() > 1 { 2 } else { 0 };
    let derived = intent
        .measures
        .iter()
        .filter(|m| m.derived_expr.is_some())
        .count();
    intent.filters.len() + intent.dimensions.len() + intent.measures.len() + multi + derived
}

/// Applies one characteristic slip to an otherwise-correct intent. The
/// slip must actually change the intent — a weak model's failure is a
/// failure — so variants cascade until one takes effect.
fn corrupt_intent(intent: QueryIntent, ev: &Evidence, variant: u64) -> QueryIntent {
    let original = intent.clone();
    for offset in 0..5 {
        let out = corrupt_variant(intent.clone(), ev, variant + offset);
        if out != original {
            return out;
        }
    }
    // Nothing structural to corrupt (e.g. bare COUNT(*)): misread the
    // request as a plain listing — well-formed output, wrong answer.
    QueryIntent {
        projections: ev
            .all_columns()
            .into_iter()
            .take(1)
            .map(|(cr, _)| cr)
            .collect(),
        ..QueryIntent::default()
    }
}

fn corrupt_variant(mut intent: QueryIntent, ev: &Evidence, variant: u64) -> QueryIntent {
    match variant % 5 {
        0 => {
            // Drop the last filter (missed condition).
            intent.filters.pop();
        }
        1 => {
            // Aggregate confusion.
            if let Some(m) = intent.measures.first_mut() {
                m.agg = match m.agg {
                    AggFunc::Sum => AggFunc::Avg,
                    AggFunc::Avg => AggFunc::Sum,
                    AggFunc::Max => AggFunc::Min,
                    AggFunc::Min => AggFunc::Max,
                    AggFunc::Count => AggFunc::Sum,
                    AggFunc::CountDistinct => AggFunc::Count,
                };
            } else {
                intent.filters.pop();
            }
        }
        2 => {
            // Lost grouping.
            intent.dimensions.pop();
        }
        3 => {
            // Grounded the measure on the wrong numeric column.
            if let Some(m) = intent.measures.first_mut() {
                let current = m.column.clone();
                let alt = ev
                    .all_columns()
                    .into_iter()
                    .find(|(cr, info)| info.is_numeric() && Some(cr) != current.as_ref())
                    .map(|(cr, _)| cr);
                if let Some(alt) = alt {
                    m.column = Some(alt);
                    m.derived_expr = None;
                }
            } else {
                intent.dimensions.pop();
            }
        }
        _ => {
            // Sort/limit slip.
            if intent.order_desc.is_some() {
                intent.order_desc = intent.order_desc.map(|d| !d);
            } else if !intent.filters.is_empty() {
                intent.filters.remove(0);
            } else {
                intent.dimensions.pop();
            }
        }
    }
    intent
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn meter(&self) -> Option<&TokenMeter> {
        Some(&self.meter)
    }

    fn complete(&self, prompt: &str) -> String {
        let parsed = parse_prompt(prompt);
        let out = self.dispatch(prompt, &parsed);
        let (p, c) = (count_tokens(prompt), count_tokens(&out));
        self.meter.record(p, c);
        let telemetry = self.telemetry.lock().expect("telemetry slot").clone();
        if let Some(t) = telemetry {
            t.record_llm_call(p as u64, c as u64);
        }
        out
    }
}

impl SimLlm {
    fn dispatch(&self, raw: &str, p: &ParsedPrompt) -> String {
        let has_feedback = p.has("feedback");
        match p.task.as_str() {
            "nl2sql" | "nl2dsl" | "nl2code" | "nl2vis" => {
                let ev = Self::build_evidence(p);
                let question = p.section("question").trim().to_string();
                let mut intent = infer_intent(&question, &ev);
                let complexity = intent_complexity(&intent);
                if let Some(variant) =
                    self.fails(&p.task, raw, complexity, has_feedback, p.has("examples"))
                {
                    // Format-breaking failures when instruction following
                    // is weak: the sandbox / JSON-schema validator rejects
                    // them, which is what retry loops are for.
                    if p.task == "nl2code" && variant % 2 == 0 {
                        return "groupby : !!\nthis is not a valid pipeline".to_string();
                    }
                    if p.task == "nl2dsl" && variant % 4 == 0 {
                        return "{\"MeasureList\": [{\"aggregate\": \"total".to_string();
                    }
                    intent = corrupt_intent(intent, &ev, variant);
                }
                match p.task.as_str() {
                    "nl2sql" => to_sql(&intent, &ev),
                    "nl2dsl" => to_dsl_json(&intent).to_string(),
                    "nl2code" => to_dscript(&intent),
                    _ => to_vis_json(&intent).to_string(),
                }
            }
            "schema_linking" => {
                let ev = Self::build_evidence(p);
                let q = words(p.section("question"));
                let q_stems: std::collections::HashSet<String> =
                    q.iter().map(|w| crate::util::stem(w)).collect();
                let mut scored: Vec<(String, f64)> = ev
                    .all_columns()
                    .into_iter()
                    .map(|(cr, _)| {
                        let mut s = ev.score_column(&cr, &q);
                        // When the question names the table, its columns
                        // outrank same-named columns elsewhere.
                        let t_toks = split_ident(&cr.table);
                        if !t_toks.is_empty()
                            && t_toks
                                .iter()
                                .all(|t| q_stems.contains(&crate::util::stem(t)))
                        {
                            s += 0.75;
                        }
                        (format!("{}.{}", cr.table, cr.column), s)
                    })
                    .collect();
                // Table affinity: columns living in a table that already
                // has a strong match rank above equal-scoring columns in
                // unrelated tables (schema linkers exploit this).
                let mut table_max: std::collections::HashMap<String, f64> =
                    std::collections::HashMap::new();
                for (name, s) in &scored {
                    let table = name.split('.').next().unwrap_or("").to_string();
                    let e = table_max.entry(table).or_insert(0.0);
                    if *s > *e {
                        *e = *s;
                    }
                }
                for (name, s) in &mut scored {
                    let table = name.split('.').next().unwrap_or("");
                    *s += 0.3 * table_max.get(table).copied().unwrap_or(0.0);
                }
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                scored
                    .into_iter()
                    .take(10)
                    .map(|(name, s)| format!("{name} {s:.3}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            "score_knowledge" => {
                // Self-calibration (§IV-A): rate knowledge components 1-5
                // by completeness — a column flagged with usage tags but
                // no usage text, or a token-echo description, is a slip.
                let content = p.section("content");
                let parsed: serde_json::Value =
                    serde_json::from_str(content.trim()).unwrap_or(json!({}));
                let mut score = 5.0f64;
                let table = &parsed["table"];
                if !table["description"]
                    .as_str()
                    .map(|s| s.len() >= 12)
                    .unwrap_or(false)
                {
                    score -= 1.5;
                }
                let cols = parsed["columns"].as_array().cloned().unwrap_or_default();
                if cols.is_empty() {
                    score -= 1.0;
                } else {
                    let flagged = cols
                        .iter()
                        .filter(|c| {
                            let desc_short = c["description"]
                                .as_str()
                                .map(|s| s.len() < 8)
                                .unwrap_or(true);
                            let tagged =
                                c["tags"].as_array().map(|t| !t.is_empty()).unwrap_or(false);
                            let usage_empty =
                                c["usage"].as_str().map(str::is_empty).unwrap_or(true);
                            desc_short || (tagged && usage_empty)
                        })
                        .count();
                    score -= 2.5 * flagged as f64 / cols.len() as f64;
                }
                format!("{:.1}", score.clamp(1.0, 5.0))
            }
            "relevance" => {
                let q = p.section("query");
                let c = p.section("candidate");
                let lex = token_overlap(&words(q), &words(c));
                let sem = text_similarity(q, c).max(0.0);
                format!("{:.3}", 0.5 * lex + 0.5 * sem)
            }
            "rewrite" => self.rewrite(p),
            "classify_task" => classify_task(p.section("question")).to_string(),
            "plan" => plan(p.section("question")),
            "plan2" => plan_with_parts(p.section("question").trim())
                .into_iter()
                .map(|(label, text)| format!("{label} :: {text}"))
                .collect::<Vec<_>>()
                .join("\n"),
            "extract_knowledge" => self.extract_knowledge(raw, p),
            "summarize" => summarize(p.section("facts"), p.section("question")),
            _ => {
                // Generic completion: echo a condensed view of the prompt.
                let body = p.section("preamble");
                let mut s: String = body
                    .split_whitespace()
                    .take(60)
                    .collect::<Vec<_>>()
                    .join(" ");
                if s.is_empty() {
                    s = "OK".to_string();
                }
                s
            }
        }
    }

    fn rewrite(&self, p: &ParsedPrompt) -> String {
        let question = p.section("question").trim().to_string();
        let history = p.section("history");
        let current_date = p.section("current_date").trim().to_string();
        let mut q = question.clone();
        // Context completion: "what about X" inherits the previous question.
        let lower = q.to_lowercase();
        for lead in ["what about", "how about", "and for", "and in"] {
            if let Some(rest) = lower.strip_prefix(lead) {
                if let Some(prev) = history.lines().rev().find(|l| !l.trim().is_empty()) {
                    q = format!(
                        "{} for{}",
                        prev.trim(),
                        &question[question.len() - rest.len()..]
                    );
                }
                break;
            }
        }
        // Temporal standardisation.
        if !current_date.is_empty() {
            if let Some(year) = current_date.get(0..4).and_then(|y| y.parse::<i32>().ok()) {
                q = q.replace("this year", &format!("in {year}"));
                q = q.replace("last year", &format!("in {}", year - 1));
            }
        }
        q
    }

    fn extract_knowledge(&self, raw: &str, p: &ParsedPrompt) -> String {
        let script = p.section("script");
        let ev = Self::build_evidence(p);
        let attempt = p.section("attempt").trim().to_string();

        // Comment lines carry human intent. BI rollup comments follow the
        // "X by Y [for the Z team]" shape: attribute the head words to the
        // aggregated (measure) columns and the tail words to the grouping
        // (dimension) columns, the way a reader would.
        let mut comment_words: Vec<String> = Vec::new();
        let mut measure_words: Vec<String> = Vec::new();
        let mut dim_words: Vec<String> = Vec::new();
        for line in script.lines() {
            let t = line.trim();
            if let Some(c) = t.strip_prefix("--").or_else(|| t.strip_prefix("#")) {
                comment_words.extend(words(c));
                let (trimmed, owner) = match c.find(" for ") {
                    Some(pos) => (&c[..pos], &c[pos..]),
                    None => (c, ""),
                };
                match trimmed.split_once(" by ") {
                    Some((head, tail)) => {
                        measure_words.extend(words(head));
                        // The owning team describes the rollup, hence the
                        // measure being rolled up.
                        measure_words.extend(words(owner));
                        dim_words.extend(words(tail));
                    }
                    None => {
                        measure_words.extend(words(trimmed));
                        measure_words.extend(words(owner));
                        dim_words.extend(words(trimmed));
                    }
                }
            }
        }

        // Column usage analysis by lightweight token scanning.
        let script_lower = script.to_lowercase();
        let mut columns = Vec::new();
        let mut derived = Vec::new();
        let target_table = p.section("table").trim().to_string();
        for (cr, info) in ev.all_columns() {
            if !target_table.is_empty() && !cr.table.eq_ignore_ascii_case(&target_table) {
                continue;
            }
            let cl = cr.column.to_lowercase();
            if !script_lower.contains(&cl) {
                continue;
            }
            let mut usages = Vec::new();
            let mut tags = Vec::new();
            for agg in ["sum", "avg", "max", "min", "count"] {
                if script_lower.contains(&format!("{agg}({cl}")) {
                    usages.push(format!("aggregated with {agg}"));
                    tags.push("measure".to_string());
                    break;
                }
            }
            if find_after(&script_lower, "group by", &cl) {
                usages.push("used as grouping dimension".to_string());
                tags.push("dimension".to_string());
            }
            if find_after(&script_lower, "where", &cl) {
                usages.push("used in filter predicates".to_string());
                tags.push("filter".to_string());
            }
            // Description: identifier words + the comment words that
            // belong to this column's role.
            let ident_words = split_ident(&cr.column).join(" ");
            static NO_WORDS: Vec<String> = Vec::new();
            let role_words: &[String] = if tags.contains(&"measure".to_string()) {
                &measure_words
            } else if tags.contains(&"dimension".to_string()) {
                &dim_words
            } else {
                // Filter-only or merely-mentioned columns: a careful reader
                // does not attach the comment's business phrase to them.
                &NO_WORDS
            };
            let related: Vec<String> = role_words
                .iter()
                .filter(|w| split_ident(&cr.column).iter().any(|p| p == *w) || w.len() >= 4)
                .cloned()
                .collect();
            let mut description = if related.is_empty() {
                ident_words.clone()
            } else {
                related.join(" ")
            };
            // A weak model occasionally returns terse, low-quality output;
            // the self-calibration loop in Algorithm 1 catches this and
            // retries (the attempt number re-salts the hash).
            let salt = format!(
                "{}|extract|{}|{}|{attempt}",
                self.profile.name,
                cr.column,
                raw.len()
            );
            if hash01(&salt) > self.profile.reasoning {
                // A weak model's slip: a token-level echo instead of a
                // description — short enough that self-calibration
                // notices and retries.
                description = split_ident(&cr.column)
                    .into_iter()
                    .next()
                    .unwrap_or_default();
                usages.clear();
            }
            columns.push(json!({
                "name": cr.column,
                "dtype": info.dtype,
                "description": description,
                "usage": usages.join("; "),
                "tags": tags,
            }));
        }

        // Derived columns: `expr AS name` where expr is more than a column.
        for (name, expr) in find_derived(script) {
            derived.push(json!({
                "name": name,
                "expr": expr,
                "description": split_ident(&name).join(" "),
            }));
        }

        let table_desc = if comment_words.is_empty() {
            format!(
                "table used by data processing scripts ({} columns referenced)",
                columns.len()
            )
        } else {
            comment_words.join(" ")
        };
        json!({
            "table": {
                "name": target_table,
                "description": table_desc,
                "usage": "daily data processing",
                "tags": ["script-derived"],
            },
            "columns": columns,
            "derived": derived,
        })
        .to_string()
    }
}

fn find_after(script: &str, keyword: &str, column: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = script[start..].find(keyword) {
        let abs = start + pos + keyword.len();
        let window = &script[abs..script.len().min(abs + 120)];
        if window.contains(column) {
            return true;
        }
        start = abs;
    }
    false
}

/// Finds `expr AS name` pairs where expr involves computation.
fn find_derived(script: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let lower = script.to_lowercase();
    let mut start = 0;
    while let Some(pos) = lower[start..].find(" as ") {
        let abs = start + pos;
        // Name: identifier after AS.
        let name: String = script[abs + 4..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // Expr: scan backwards to the enclosing comma/SELECT at paren depth 0.
        let before = &script[..abs];
        let mut depth = 0i32;
        let mut expr_start = 0;
        for (i, c) in before.char_indices().rev() {
            match c {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth < 0 {
                        expr_start = i + 1;
                        break;
                    }
                }
                ',' if depth == 0 => {
                    expr_start = i + 1;
                    break;
                }
                '\n' if depth == 0 => {
                    // Keep scanning; SELECT lists span lines.
                }
                _ => {}
            }
            if before[i..].len() > 200 {
                expr_start = i;
                break;
            }
        }
        let mut expr = script[expr_start..abs].trim().to_string();
        for kw in ["select", "SELECT", "Select"] {
            if let Some(stripped) = expr.strip_prefix(kw) {
                expr = stripped.trim().to_string();
            }
        }
        let lower_expr = expr.to_lowercase();
        let is_aggregate = ["sum(", "avg(", "count(", "min(", "max("]
            .iter()
            .any(|a| lower_expr.starts_with(a));
        let is_computed = expr.contains('+')
            || expr.contains('-')
            || expr.contains('*')
            || expr.contains('/')
            || (expr.contains('(') && expr.contains(')'));
        if !name.is_empty() && is_computed && !is_aggregate && !expr.is_empty() {
            out.push((name, expr));
        }
        start = abs + 4;
    }
    out
}

/// Keyword task routing used by the proxy agent.
pub fn classify_task(question: &str) -> &'static str {
    let q = question.to_lowercase();
    let any = |pats: &[&str]| pats.iter().any(|p| q.contains(p));
    if any(&[
        "forecast",
        "predict",
        "next month",
        "next quarter",
        "next year",
        "project the",
    ]) {
        "forecast"
    } else if any(&["anomal", "outlier", "unusual", "spike", "abnormal"]) {
        "anomaly"
    } else if any(&[
        "why",
        "cause",
        "driver",
        "drive",
        "correlat",
        "relationship between",
        "impact of",
    ]) {
        "causal"
    } else if any(&[
        "chart",
        "plot",
        "visuali",
        "graph",
        "pie",
        "dashboard",
        "draw",
    ]) {
        "nl2vis"
    } else if any(&[
        "insight", "analyz", "analyse", "explore", "report", "summary", "findings", "trend",
    ]) {
        "nl2insight"
    } else if any(&[
        "dataframe",
        "pandas",
        "transform",
        "pivot",
        "clean",
        "python",
        "code",
    ]) {
        "nl2dscode"
    } else {
        "nl2sql"
    }
}

/// Decomposes a compound question into `(label, subtask text)` pairs —
/// the proxy agent allocates each part to the matching specialised agent.
pub fn plan_with_parts(question: &str) -> Vec<(&'static str, String)> {
    let mut parts: Vec<&str> = Vec::new();
    let mut rest = question;
    loop {
        let mut cut = None;
        for sep in [
            ", then ",
            " and then ",
            "; then ",
            "; ",
            ". then ",
            ". ",
            "? ",
            "! ",
            ", ",
        ] {
            if let Some(pos) = rest.to_lowercase().find(sep) {
                match cut {
                    Some((best, _)) if best <= pos => {}
                    _ => cut = Some((pos, sep.len())),
                }
            }
        }
        match cut {
            Some((pos, len)) => {
                parts.push(&rest[..pos]);
                rest = &rest[pos + len..];
            }
            None => {
                parts.push(rest);
                break;
            }
        }
    }
    let mut out: Vec<(&'static str, String)> = Vec::new();
    for part in parts {
        let text = part.trim();
        if text.is_empty() {
            continue;
        }
        let label = classify_task(text);
        match out.last_mut() {
            Some((l, t)) if *l == label => {
                t.push_str(", ");
                t.push_str(text);
            }
            _ => out.push((label, text.to_string())),
        }
    }
    if out.is_empty() {
        out.push(("nl2sql", question.to_string()));
    }
    out
}

/// Decomposes a compound question into an ordered subtask plan.
pub fn plan(question: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut rest = question;
    // Split on sequencing connectors.
    loop {
        let mut cut = None;
        for sep in [
            ", then ",
            " and then ",
            "; then ",
            "; ",
            ". then ",
            ". ",
            "? ",
            "! ",
            ", ",
        ] {
            if let Some(pos) = rest.to_lowercase().find(sep) {
                match cut {
                    Some((best, _)) if best <= pos => {}
                    _ => cut = Some((pos, sep.len())),
                }
            }
        }
        match cut {
            Some((pos, len)) => {
                parts.push(&rest[..pos]);
                rest = &rest[pos + len..];
            }
            None => {
                parts.push(rest);
                break;
            }
        }
    }
    let mut labels: Vec<&'static str> = Vec::new();
    for part in parts {
        if part.trim().is_empty() {
            continue;
        }
        let label = classify_task(part);
        if labels.last() != Some(&label) {
            labels.push(label);
        }
    }
    if labels.is_empty() {
        labels.push("nl2sql");
    }
    labels.join("\n")
}

fn summarize(facts: &str, question: &str) -> String {
    let q_tokens = words(question);
    let mut lines: Vec<(&str, f64)> = facts
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| (l.trim(), token_overlap(&q_tokens, &words(l))))
        .collect();
    // Most question-relevant facts first, stable for ties.
    lines.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let picked: Vec<&str> = lines.iter().take(12).map(|(l, _)| *l).collect();
    picked.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;

    fn schema() -> &'static str {
        "table sales: region (str), amount (int), ftime (date), cost (float)\n\
         values sales.region: east, west, south\n"
    }

    #[test]
    fn nl2sql_end_to_end() {
        let m = SimLlm::gpt4();
        let prompt = Prompt::new("nl2sql")
            .section("schema", schema())
            .section("question", "What is the total amount by region?")
            .render();
        let sql = m.complete(&prompt);
        assert!(sql.starts_with("SELECT region, SUM(amount)"), "{sql}");
        assert!(m.usage().total_tokens() > 0);
    }

    #[test]
    fn telemetry_mirrors_the_meter() {
        let m = SimLlm::gpt4();
        let telemetry = Telemetry::new();
        m.attach_telemetry(telemetry.clone());
        let prompt = Prompt::new("nl2sql")
            .section("schema", schema())
            .section("question", "total amount by region")
            .render();
        {
            let _stage = telemetry.stage("execute");
            let _agent = telemetry.agent_scope("sql_agent");
            m.complete(&prompt);
        }
        m.complete(&prompt); // outside any scope
        let meter = m.usage().snapshot();
        assert_eq!(meter.calls, 2);
        assert_eq!(telemetry.token_totals(), meter);
        assert_eq!(telemetry.metrics().counter("llm.calls"), 2);
        assert_eq!(
            telemetry.metrics().counter("llm.prompt_tokens"),
            meter.prompt_tokens
        );
        let attribution = telemetry.attribution();
        assert!(attribution
            .iter()
            .any(|a| a.stage == "execute" && a.agent == "sql_agent" && a.usage.calls == 1));
        assert!(attribution
            .iter()
            .any(|a| a.stage == "unattributed" && a.usage.calls == 1));
    }

    #[test]
    fn determinism() {
        let m = SimLlm::gpt4();
        let prompt = Prompt::new("nl2sql")
            .section("schema", schema())
            .section("question", "average cost for east")
            .render();
        assert_eq!(m.complete(&prompt), m.complete(&prompt));
    }

    #[test]
    fn weaker_model_fails_more() {
        // Over many prompts, the LLaMA profile corrupts code generations
        // more often than GPT-4.
        let strong = SimLlm::gpt4();
        let weak = SimLlm::new(ModelProfile::llama31());
        let mut strong_ok = 0;
        let mut weak_ok = 0;
        for i in 0..200 {
            let prompt = Prompt::new("nl2code")
                .section("schema", schema())
                .section(
                    "question",
                    format!("total amount by region with cost greater than {i}"),
                )
                .render();
            let expected_prefix = "load sales";
            let s = strong.complete(&prompt);
            let w = weak.complete(&prompt);
            let good = |out: &str| {
                out.starts_with(expected_prefix)
                    && out.contains("groupby region: sum(amount)")
                    && out.contains(&format!("filter cost > {i}"))
            };
            if good(&s) {
                strong_ok += 1;
            }
            if good(&w) {
                weak_ok += 1;
            }
        }
        assert!(
            strong_ok > weak_ok + 20,
            "strong={strong_ok} weak={weak_ok}"
        );
    }

    #[test]
    fn feedback_improves_retry() {
        let weak = SimLlm::new(ModelProfile::llama31());
        let mut first_ok = 0;
        let mut retry_ok = 0;
        for i in 0..300 {
            let base = Prompt::new("nl2code")
                .section("schema", schema())
                .section("question", format!("sum of amount by region run {i}"));
            let first = weak.complete(&base.clone().render());
            let retry = weak.complete(
                &base
                    .section("feedback", "error: previous pipeline failed to parse")
                    .render(),
            );
            let good = |out: &str| out.contains("groupby region: sum(amount)");
            if good(&first) {
                first_ok += 1;
            }
            if good(&retry) {
                retry_ok += 1;
            }
        }
        assert!(retry_ok > first_ok, "retry={retry_ok} first={first_ok}");
    }

    #[test]
    fn schema_linking_ranks_alias_targets_with_knowledge() {
        let m = SimLlm::gpt4();
        let base = Prompt::new("schema_linking")
            .section(
                "schema",
                "table s: prod_name (str), shouldincome_after (float), ftime (date)",
            )
            .section("question", "income of products");
        let without = m.complete(&base.clone().render());
        let with = m.complete(
            &base
                .section("knowledge", "alias income -> s.shouldincome_after")
                .render(),
        );
        let rank = |out: &str| {
            out.lines()
                .position(|l| l.starts_with("s.shouldincome_after"))
        };
        let rw = rank(&with).unwrap();
        // With knowledge the target ranks first; without, its score is 0.
        assert_eq!(rw, 0, "{with}");
        assert!(without.lines().next().unwrap().ends_with("0.000") || rank(&without) != Some(0));
    }

    #[test]
    fn relevance_scoring_orders_candidates() {
        let m = SimLlm::gpt4();
        let score = |cand: &str| -> f64 {
            m.complete(
                &Prompt::new("relevance")
                    .section("query", "monthly revenue trend")
                    .section("candidate", cand)
                    .render(),
            )
            .trim()
            .parse()
            .unwrap()
        };
        assert!(score("revenue by month") > score("user signup form"));
    }

    #[test]
    fn classify_and_plan() {
        assert_eq!(classify_task("Plot the revenue trend"), "nl2vis");
        assert_eq!(
            classify_task("Are there any anomalies in the data?"),
            "anomaly"
        );
        assert_eq!(classify_task("Forecast sales for next quarter"), "forecast");
        assert_eq!(classify_task("How many users signed up?"), "nl2sql");
        let p = plan("Find total sales by region, then plot a bar chart. Forecast next month");
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines, vec!["nl2sql", "nl2vis", "forecast"]);
    }

    #[test]
    fn rewrite_completes_context_and_time() {
        let m = SimLlm::gpt4();
        let out = m.complete(
            &Prompt::new("rewrite")
                .section("question", "what about the west region")
                .section("history", "total amount by month for east")
                .section("current_date", "2026-07-06")
                .render(),
        );
        assert!(out.contains("total amount by month"), "{out}");
        assert!(out.contains("west"), "{out}");
        let out2 = m.complete(
            &Prompt::new("rewrite")
                .section("question", "total income this year")
                .section("current_date", "2026-07-06")
                .render(),
        );
        assert!(out2.contains("in 2026"), "{out2}");
    }

    #[test]
    fn extract_knowledge_finds_usage_and_derived() {
        let m = SimLlm::gpt4();
        let script = "-- daily revenue rollup for finance\n\
                      SELECT region, SUM(amount) AS total_amount, amount - cost AS profit\n\
                      FROM sales WHERE ftime >= '2024-01-01' GROUP BY region";
        let out = m.complete(
            &Prompt::new("extract_knowledge")
                .section("schema", schema())
                .section("table", "sales")
                .section("script", script)
                .section("attempt", "0")
                .render(),
        );
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let cols = v["columns"].as_array().unwrap();
        let amount = cols.iter().find(|c| c["name"] == "amount").unwrap();
        assert!(
            amount["usage"].as_str().unwrap().contains("sum"),
            "{amount}"
        );
        let derived = v["derived"].as_array().unwrap();
        assert!(derived.iter().any(|d| d["name"] == "profit"), "{out}");
        assert!(v["table"]["description"]
            .as_str()
            .unwrap()
            .contains("revenue"));
    }

    #[test]
    fn score_knowledge_rewards_completeness() {
        let m = SimLlm::gpt4();
        let poor = m.complete(
            &Prompt::new("score_knowledge")
                .section("content", r#"{"table":{},"columns":[]}"#)
                .render(),
        );
        let rich = m.complete(
            &Prompt::new("score_knowledge")
                .section(
                    "content",
                    r#"{"table":{"description":"daily revenue records by region","usage":"finance"},
                        "columns":[{"name":"amount","description":"revenue collected per order"}],
                        "derived":[{"name":"profit"}]}"#,
                )
                .render(),
        );
        let p: f64 = poor.trim().parse().unwrap();
        let r: f64 = rich.trim().parse().unwrap();
        assert!(r > p + 1.5, "rich={r} poor={p}");
    }

    #[test]
    fn summarize_prefers_relevant_facts() {
        let m = SimLlm::gpt4();
        let out = m.complete(
            &Prompt::new("summarize")
                .section(
                    "facts",
                    "east region grew 20%\nwest region flat\nserver uptime 99%",
                )
                .section("question", "how did the east region perform")
                .render(),
        );
        assert!(out.starts_with("east region"), "{out}");
    }
}
