//! Query-intent inference — the "reasoning engine" of the simulated model.
//!
//! Everything here works exclusively from evidence present in the prompt:
//! the schema section, optional knowledge lines, optional sample values.
//! That is the point of the simulation — when the prompt lacks the alias
//! that maps "income" to `shouldincome_after`, the inference genuinely
//! fails, exactly the causal pathway the DataLab paper studies.
//!
//! ## Prompt line conventions
//!
//! Schema section:
//! ```text
//! table sales: region (str), amount (int), ftime (date)
//! fk orders.user_id = users.id
//! values sales.region: east, west, south
//! ```
//!
//! Knowledge section (each line free text; structured prefixes recognised):
//! ```text
//! table sales: daily revenue records
//! column sales.shouldincome_after: income after tax
//! alias income -> sales.shouldincome_after
//! alias TencentBI -> value sales.prod_class4_name = 'Tencent BI'
//! jargon DAU: daily active users
//! derived sales.profit = shouldincome_after - cost_amt
//! ```

use crate::util::{split_ident, stem, words};
use datalab_frame::AggFunc;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// A `table.column` reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates a reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

/// One column in the parsed schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInfo {
    /// Column name.
    pub name: String,
    /// Type string (`int`, `float`, `str`, `bool`, `date`).
    pub dtype: String,
}

impl ColumnInfo {
    /// True for int/float columns.
    pub fn is_numeric(&self) -> bool {
        matches!(self.dtype.as_str(), "int" | "float")
    }
}

/// One table in the parsed schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// Columns in order.
    pub columns: Vec<ColumnInfo>,
}

/// A derived-column definition surfaced through knowledge.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedInfo {
    /// Derived column name.
    pub name: String,
    /// Owning table.
    pub table: String,
    /// Calculation expression over base columns (SQL syntax).
    pub expr: String,
}

/// Everything the model can ground against, parsed from the prompt.
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    /// Tables and columns.
    pub tables: Vec<TableInfo>,
    /// Declared foreign keys.
    pub fks: Vec<(ColumnRef, ColumnRef)>,
    /// Extra descriptive tokens per column, from knowledge lines.
    pub col_tokens: HashMap<ColumnRef, Vec<String>>,
    /// Column aliases: lower-cased term → column.
    pub col_alias: Vec<(String, ColumnRef)>,
    /// Value aliases: lower-cased term → (column, stored value).
    pub value_alias: Vec<(String, ColumnRef, String)>,
    /// Known sample values: lower-cased value → (column, original text).
    pub value_index: Vec<(String, ColumnRef, String)>,
    /// Derived column definitions.
    pub derived: Vec<DerivedInfo>,
    /// Jargon glossary: lower-cased term → expansion.
    pub jargon: Vec<(String, String)>,
    /// Current date (YYYY-MM-DD) if the prompt supplies one.
    pub current_date: Option<String>,
}

impl Evidence {
    /// Parses the schema section (and initialises value/fk indexes).
    pub fn from_schema(schema_text: &str) -> Evidence {
        let mut ev = Evidence::default();
        ev.absorb_schema(schema_text);
        ev
    }

    /// Parses `table ...`, `fk ...` and `values ...` lines.
    pub fn absorb_schema(&mut self, text: &str) {
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("table ") {
                if let Some((name, cols)) = rest.split_once(':') {
                    let mut table = TableInfo {
                        name: name.trim().to_string(),
                        columns: Vec::new(),
                    };
                    for part in cols.split(',') {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        let (cname, dtype) = match part.split_once('(') {
                            Some((n, t)) => (
                                n.trim().to_string(),
                                t.trim_end_matches(')').trim().to_string(),
                            ),
                            None => (part.to_string(), "str".to_string()),
                        };
                        table.columns.push(ColumnInfo { name: cname, dtype });
                    }
                    self.tables.push(table);
                }
            } else if let Some(rest) = line.strip_prefix("fk ") {
                if let Some((l, r)) = rest.split_once('=') {
                    if let (Some(lc), Some(rc)) = (parse_colref(l), parse_colref(r)) {
                        self.fks.push((lc, rc));
                    }
                }
            } else if let Some(rest) = line.strip_prefix("values ") {
                if let Some((colref, vals)) = rest.split_once(':') {
                    if let Some(cr) = parse_colref(colref) {
                        for v in vals.split(',') {
                            let v = v.trim().trim_matches('\'');
                            if !v.is_empty() {
                                self.value_index.push((
                                    v.to_lowercase(),
                                    cr.clone(),
                                    v.to_string(),
                                ));
                            }
                        }
                    }
                }
            } else if let Some(rest) = line.strip_prefix("current_date ") {
                self.current_date = Some(rest.trim().to_string());
            }
        }
    }

    /// Parses knowledge lines, enriching column evidence, aliases, values,
    /// jargon and derived definitions.
    pub fn absorb_knowledge(&mut self, text: &str) {
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("column ") {
                if let Some((colref, desc)) = rest.split_once(':') {
                    if let Some(cr) = parse_colref(colref) {
                        self.col_tokens.entry(cr).or_default().extend(words(desc));
                    }
                }
            } else if let Some(rest) = line.strip_prefix("alias ") {
                if let Some((term, target)) = rest.split_once("->") {
                    let term = term.trim().to_lowercase();
                    let target = target.trim();
                    if let Some(vt) = target.strip_prefix("value ") {
                        // alias term -> value t.c = 'v'
                        if let Some((colref, val)) = vt.split_once('=') {
                            if let Some(cr) = parse_colref(colref) {
                                let val = val.trim().trim_matches('\'').to_string();
                                self.value_alias.push((term, cr, val));
                            }
                        }
                    } else if let Some(cr) = parse_colref(target) {
                        self.col_alias.push((term, cr));
                    }
                }
            } else if let Some(rest) = line.strip_prefix("jargon ") {
                if let Some((term, expansion)) = rest.split_once(':') {
                    self.jargon
                        .push((term.trim().to_lowercase(), expansion.trim().to_string()));
                }
            } else if let Some(rest) = line.strip_prefix("derived ") {
                if let Some((name_part, expr)) = rest.split_once('=') {
                    if let Some(cr) = parse_colref(name_part) {
                        self.derived.push(DerivedInfo {
                            name: cr.column,
                            table: cr.table,
                            expr: expr.trim().to_string(),
                        });
                    }
                }
            } else if let Some(rest) = line.strip_prefix("value ") {
                // value t.c: 'X' means ...
                if let Some((colref, desc)) = rest.split_once(':') {
                    if let Some(cr) = parse_colref(colref) {
                        if let Some(v) = extract_quoted(desc) {
                            self.value_index
                                .push((v.to_lowercase(), cr.clone(), v.clone()));
                        }
                        self.col_tokens.entry(cr).or_default().extend(words(desc));
                    }
                }
            } else if let Some(rest) = line.strip_prefix("table ") {
                // table t: description — attach tokens to all of t's columns' table score via a pseudo entry.
                if let Some((tname, desc)) = rest.split_once(':') {
                    let tname = tname.trim().to_string();
                    let toks = words(desc);
                    self.col_tokens
                        .entry(ColumnRef::new(tname, "*"))
                        .or_default()
                        .extend(toks);
                }
            }
        }
    }

    /// All columns of all tables.
    pub fn all_columns(&self) -> Vec<(ColumnRef, &ColumnInfo)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for c in &t.columns {
                out.push((ColumnRef::new(t.name.clone(), c.name.clone()), c));
            }
        }
        out
    }

    /// Looks up a column's info.
    pub fn column_info(&self, cr: &ColumnRef) -> Option<&ColumnInfo> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(&cr.table))?
            .columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(&cr.column))
    }

    /// First date-typed column, preferring the given table.
    pub fn date_column(&self, prefer_table: Option<&str>) -> Option<ColumnRef> {
        let pick = |t: &TableInfo| {
            t.columns
                .iter()
                .find(|c| c.dtype == "date")
                .map(|c| ColumnRef::new(t.name.clone(), c.name.clone()))
        };
        if let Some(pt) = prefer_table {
            if let Some(t) = self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(pt)) {
                if let Some(c) = pick(t) {
                    return Some(c);
                }
            }
        }
        self.tables.iter().find_map(pick)
    }

    /// Replaces jargon terms in a question with their expansions.
    pub fn expand_jargon(&self, question: &str) -> String {
        let mut q = question.to_string();
        for (term, expansion) in &self.jargon {
            let lower = q.to_lowercase();
            if let Some(pos) = lower.find(term.as_str()) {
                // Whole-word check.
                let before_ok = pos == 0 || !lower.as_bytes()[pos - 1].is_ascii_alphanumeric();
                let end = pos + term.len();
                let after_ok = end >= lower.len() || !lower.as_bytes()[end].is_ascii_alphanumeric();
                if before_ok && after_ok {
                    q = format!("{}{}{}", &q[..pos], expansion, &q[end..]);
                }
            }
        }
        q
    }

    /// Scores how well a question phrase matches a column, combining name
    /// tokens, knowledge tokens, and alias hits.
    pub fn score_column(&self, cr: &ColumnRef, phrase_tokens: &[String]) -> f64 {
        let mut score = 0.0;
        let name_tokens: Vec<String> = split_ident(&cr.column);
        let stems: HashSet<String> = phrase_tokens.iter().map(|w| stem(w)).collect();
        for nt in &name_tokens {
            if stems.contains(&stem(nt)) {
                score += 1.0;
            }
        }
        if let Some(extra) = self.col_tokens.get(cr) {
            let mut hit = 0.0f64;
            for tok in extra {
                if stems.contains(&stem(tok)) {
                    hit += 0.6;
                }
            }
            score += hit.min(1.8);
        }
        for (term, target) in &self.col_alias {
            // An alias teaches what a column *name* means; it applies to
            // the same-named column in derived/result tables too.
            if target == cr || target.column.eq_ignore_ascii_case(&cr.column) {
                let term_tokens = words(term);
                if !term_tokens.is_empty() && term_tokens.iter().all(|t| stems.contains(&stem(t))) {
                    score += 2.5;
                }
            }
        }
        score
    }

    /// Best-matching column for a phrase, optionally restricted by a
    /// predicate (e.g. numeric only). Returns `(column, score)`.
    pub fn best_column<F>(&self, phrase_tokens: &[String], filter: F) -> Option<(ColumnRef, f64)>
    where
        F: Fn(&ColumnRef, &ColumnInfo) -> bool,
    {
        let mut best: Option<(ColumnRef, f64)> = None;
        for (cr, info) in self.all_columns() {
            if !filter(&cr, info) {
                continue;
            }
            let s = self.score_column(&cr, phrase_tokens);
            if s <= 0.0 {
                continue;
            }
            match &best {
                Some((_, bs)) if *bs >= s => {}
                _ => best = Some((cr, s)),
            }
        }
        best
    }

    /// Join path (sequence of FK edges) connecting `from` to `to`, if any.
    pub fn join_path(&self, from: &str, to: &str) -> Option<Vec<(ColumnRef, ColumnRef)>> {
        if from.eq_ignore_ascii_case(to) {
            return Some(Vec::new());
        }
        // BFS over the FK graph.
        type FkEdge = (String, (ColumnRef, ColumnRef));
        let mut adj: HashMap<String, Vec<FkEdge>> = HashMap::new();
        for (l, r) in &self.fks {
            adj.entry(l.table.to_lowercase())
                .or_default()
                .push((r.table.to_lowercase(), (l.clone(), r.clone())));
            adj.entry(r.table.to_lowercase())
                .or_default()
                .push((l.table.to_lowercase(), (r.clone(), l.clone())));
        }
        let start = from.to_lowercase();
        let goal = to.to_lowercase();
        let mut prev: HashMap<String, (String, (ColumnRef, ColumnRef))> = HashMap::new();
        let mut q = VecDeque::from([start.clone()]);
        let mut seen: HashSet<String> = HashSet::from([start.clone()]);
        while let Some(t) = q.pop_front() {
            if t == goal {
                let mut path = Vec::new();
                let mut cur = goal.clone();
                while cur != start {
                    let (p, edge) = prev.get(&cur)?.clone();
                    path.push(edge);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for (next, edge) in adj.get(&t).into_iter().flatten() {
                if seen.insert(next.clone()) {
                    prev.insert(next.clone(), (t.clone(), edge.clone()));
                    q.push_back(next.clone());
                }
            }
        }
        None
    }
}

fn parse_colref(s: &str) -> Option<ColumnRef> {
    let s = s.trim();
    let (t, c) = s.split_once('.')?;
    let c = c.trim();
    // Strip anything after the column identifier.
    let c: String = c
        .chars()
        .take_while(|ch| ch.is_alphanumeric() || *ch == '_')
        .collect();
    if t.trim().is_empty() || c.is_empty() {
        return None;
    }
    Some(ColumnRef::new(t.trim(), c))
}

fn extract_quoted(s: &str) -> Option<String> {
    let start = s.find('\'')?;
    let rest = &s[start + 1..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

/// A filter value as inferred from the question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterValue {
    /// Numeric comparison operand.
    Num(f64),
    /// String equality operand.
    Str(String),
    /// Inclusive date range (ISO strings).
    DateRange(String, String),
}

/// One inferred filter predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    /// Filtered column.
    pub column: ColumnRef,
    /// Operator: `=`, `>`, `>=`, `<`, `<=`, `between`.
    pub op: String,
    /// Operand.
    pub value: FilterValue,
}

/// One inferred measure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measure {
    /// Aggregate function.
    pub agg: AggFunc,
    /// Aggregated column; `None` means `COUNT(*)`.
    pub column: Option<ColumnRef>,
    /// Set when the measure is a knowledge-provided derived column; the
    /// expression to compute before aggregating.
    pub derived_expr: Option<String>,
}

/// The structured interpretation of a natural-language analytics question.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryIntent {
    /// Measures (aggregations) requested.
    pub measures: Vec<Measure>,
    /// Grouping dimensions.
    pub dimensions: Vec<ColumnRef>,
    /// Filter predicates.
    pub filters: Vec<Filter>,
    /// Plain projection columns for list-style questions with no measure.
    pub projections: Vec<ColumnRef>,
    /// Sort on the first measure, descending?
    pub order_desc: Option<bool>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// Chart-type hint for visualization tasks.
    pub chart_hint: Option<String>,
    /// Data-preparation request: drop rows with missing values first.
    pub dropna: bool,
}

impl QueryIntent {
    /// Every table the intent touches.
    pub fn tables(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut add = |t: &str| {
            if seen.insert(t.to_lowercase()) {
                out.push(t.to_string());
            }
        };
        for m in &self.measures {
            if let Some(c) = &m.column {
                add(&c.table);
            }
        }
        for d in &self.dimensions {
            add(&d.table);
        }
        for f in &self.filters {
            add(&f.column.table);
        }
        for p in &self.projections {
            add(&p.table);
        }
        out
    }
}

const AGG_WORDS: &[(&str, AggFunc)] = &[
    ("total", AggFunc::Sum),
    ("sum", AggFunc::Sum),
    ("overall", AggFunc::Sum),
    ("average", AggFunc::Avg),
    ("avg", AggFunc::Avg),
    ("mean", AggFunc::Avg),
    ("count", AggFunc::Count),
    ("many", AggFunc::Count),
    ("number", AggFunc::Count),
    ("maximum", AggFunc::Max),
    ("max", AggFunc::Max),
    ("highest", AggFunc::Max),
    ("largest", AggFunc::Max),
    ("peak", AggFunc::Max),
    ("minimum", AggFunc::Min),
    ("min", AggFunc::Min),
    ("lowest", AggFunc::Min),
    ("smallest", AggFunc::Min),
];

const PHRASE_STOP: &[&str] = &[
    "by", "per", "for", "where", "with", "in", "of", "and", "or", "the", "a", "an", "each",
    "every", "grouped", "show", "list", "what", "which", "how", "is", "are", "their", "its",
    "there", "top", "bottom", "that", "than", "over", "under", "since", "between",
];

/// Infers a [`QueryIntent`] from a question given the prompt evidence.
/// Jargon is expanded first when the evidence carries a glossary.
pub fn infer_intent(question: &str, ev: &Evidence) -> QueryIntent {
    // "…of the extracted result" anchors the question on an upstream
    // result table when the context supplies one; restrict grounding to
    // those tables in that case.
    let lower = question.to_lowercase();
    let wants_result = [
        "extracted",
        "subset",
        "that result",
        "the result",
        "previous result",
    ]
    .iter()
    .any(|p| lower.contains(p));
    let restricted: Evidence;
    let ev = if wants_result
        && ev
            .tables
            .iter()
            .any(|t| t.name.to_lowercase().ends_with("_result"))
    {
        let mut r = ev.clone();
        r.tables
            .retain(|t| t.name.to_lowercase().ends_with("_result"));
        restricted = r;
        &restricted
    } else {
        ev
    };
    let expanded = ev.expand_jargon(question);
    let toks = words(&expanded);
    let mut intent = QueryIntent::default();
    let mut used_value_filter_terms: HashSet<String> = HashSet::new();

    // --- Value-alias and known-value equality filters -------------------
    // Longest alias/value phrases first so "tencent bi cloud" beats "tencent bi".
    let lower_q = expanded.to_lowercase();
    let in_scope = |cr: &ColumnRef| {
        ev.tables
            .iter()
            .any(|t| t.name.eq_ignore_ascii_case(&cr.table))
    };
    // A bare value mention only counts as a filter when a preposition
    // introduces it ("for east", "of TencentBI") — otherwise verbs and
    // incidental words that collide with stored values ("compute", "app")
    // would spray spurious predicates.
    let introduced = |term: &str| -> bool {
        let mut start = 0;
        while let Some(pos) = lower_q[start..].find(term) {
            let abs = start + pos;
            let before = lower_q[..abs].trim_end();
            let prev_word = before
                .rsplit(|c: char| !c.is_alphanumeric())
                .next()
                .unwrap_or("");
            if matches!(
                prev_word,
                "for"
                    | "of"
                    | "in"
                    | "on"
                    | "at"
                    | "where"
                    | "with"
                    | "is"
                    | "equals"
                    | "from"
                    | "to"
            ) {
                return true;
            }
            start = abs + term.len().max(1);
        }
        false
    };
    let mut value_hits: Vec<(String, ColumnRef, String)> = Vec::new();
    for (term, cr, val) in ev.value_alias.iter().chain(ev.value_index.iter()) {
        if term.len() >= 2 && contains_phrase(&lower_q, term) && introduced(term) {
            value_hits.push((term.clone(), cr.clone(), val.clone()));
        }
    }
    // Knowledge can mention the same value in other tables; entries on
    // tables actually in schema scope win.
    if value_hits.iter().any(|(_, cr, _)| in_scope(cr)) {
        value_hits.retain(|(_, cr, _)| in_scope(cr));
    }
    value_hits.sort_by_key(|hit| std::cmp::Reverse(hit.0.len()));
    let mut covered: Vec<(usize, usize)> = Vec::new();
    for (term, cr, val) in value_hits {
        if let Some(pos) = lower_q.find(&term) {
            let span = (pos, pos + term.len());
            if covered.iter().any(|(s, e)| span.0 < *e && span.1 > *s) {
                continue; // overlapping with a longer hit
            }
            covered.push(span);
            used_value_filter_terms.extend(words(&term));
            intent.filters.push(Filter {
                column: cr,
                op: "=".into(),
                value: FilterValue::Str(val),
            });
        }
    }

    // --- Quoted literal filters -------------------------------------------
    // 'east' in the question is an equality filter even without sample
    // knowledge: ground it on the known value's column when available,
    // else on the best-matching string column near the quote.
    let mut qrest: &str = &expanded;
    while let Some(start) = qrest.find('\'') {
        let after = &qrest[start + 1..];
        let Some(len) = after.find('\'') else { break };
        let literal = &after[..len];
        qrest = &after[len + 1..];
        if literal.is_empty() {
            continue;
        }
        let ll = literal.to_lowercase();
        if intent
            .filters
            .iter()
            .any(|f| matches!(&f.value, FilterValue::Str(s) if s.to_lowercase() == ll))
        {
            continue;
        }
        let by_value = ev
            .value_index
            .iter()
            .chain(ev.value_alias.iter())
            .find(|(v, _, _)| *v == ll)
            .map(|(_, cr, orig)| (cr.clone(), orig.clone()));
        let (column, value) = match by_value {
            Some((cr, orig)) => (Some(cr), orig),
            None => {
                // Column phrase: tokens immediately before the quote.
                let before = &expanded[..expanded.len() - qrest.len() - literal.len() - 2];
                let btoks = words(before);
                let phrase: Vec<String> = btoks.iter().rev().take(3).rev().cloned().collect();
                let col = ev
                    .best_column(&phrase, |_, info| info.dtype == "str")
                    .map(|(c, _)| c)
                    .or_else(|| {
                        ev.all_columns()
                            .into_iter()
                            .find(|(_, info)| info.dtype == "str")
                            .map(|(c, _)| c)
                    });
                (col, literal.to_string())
            }
        };
        if let Some(column) = column {
            intent.filters.push(Filter {
                column,
                op: "=".into(),
                value: FilterValue::Str(value),
            });
        }
    }

    // --- Numeric comparison filters --------------------------------------
    parse_numeric_filters(&toks, ev, &mut intent);

    // --- Temporal filters -------------------------------------------------
    parse_temporal_filters(&expanded, &toks, ev, &mut intent);

    // --- top-N / bottom-N ---------------------------------------------------
    // "top 3 regions by ..." — the phrase between N and the next stop word
    // names the ranked dimension.
    let mut dim_token_idx: HashSet<usize> = HashSet::new();
    for (i, t) in toks.iter().enumerate() {
        if (t == "top" || t == "bottom") && i + 1 < toks.len() {
            if let Ok(n) = toks[i + 1].parse::<usize>() {
                intent.limit = Some(n);
                intent.order_desc = Some(t == "top");
                let phrase: Vec<String> = toks[i + 2..]
                    .iter()
                    .take(3)
                    .take_while(|w| {
                        !PHRASE_STOP.contains(&w.as_str()) && !AGG_WORDS.iter().any(|(a, _)| a == w)
                    })
                    .cloned()
                    .collect();
                if !phrase.is_empty() {
                    if let Some((cr, score)) = ev.best_column(&phrase, |_, _| true) {
                        if score >= 0.9 && !intent.dimensions.contains(&cr) {
                            for (j, _) in phrase.iter().enumerate() {
                                dim_token_idx.insert(i + 2 + j);
                            }
                            intent.dimensions.push(cr);
                        }
                    }
                }
            }
        }
    }

    // --- Dimensions --------------------------------------------------------
    for (i, t) in toks.iter().enumerate() {
        let trigger = t == "by"
            || t == "per"
            || t == "over"
            || t == "across"
            || ((t == "each" || t == "every") && i > 0);
        if !trigger {
            continue;
        }
        // "by total amount" is an ordering metric, not a dimension.
        if toks
            .get(i + 1)
            .map(|w| AGG_WORDS.iter().any(|(a, _)| a == w))
            .unwrap_or(false)
        {
            continue;
        }
        let phrase: Vec<String> = toks[i + 1..]
            .iter()
            .take(4)
            .take_while(|w| !PHRASE_STOP.contains(&w.as_str()))
            .cloned()
            .collect();
        if phrase.is_empty() {
            continue;
        }
        if let Some((cr, score)) = ev.best_column(&phrase, |_, _| true) {
            if score >= 0.9 && !intent.dimensions.contains(&cr) {
                for (j, _) in phrase.iter().enumerate() {
                    dim_token_idx.insert(i + 1 + j);
                }
                intent.dimensions.push(cr);
            }
        }
    }

    // --- Measures ----------------------------------------------------------
    let filter_tokens: HashSet<String> = used_value_filter_terms;
    let mut agg_positions: Vec<(usize, AggFunc)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if let Some((_, f)) = AGG_WORDS.iter().find(|(w, _)| *w == t) {
            // "top"-adjacent "highest" means ordering, not MAX, when a
            // dimension exists: "highest revenue regions" — keep as agg,
            // ordering handled separately; acceptable approximation.
            agg_positions.push((i, *f));
        }
    }
    for (pos, func) in &agg_positions {
        // The measured phrase: tokens after the agg word until a stop
        // word, skipping leading connectors ("number OF THE distinct X").
        let mut start = pos + 1;
        while toks
            .get(start)
            .map(|w| w == "of" || w == "the")
            .unwrap_or(false)
        {
            start += 1;
        }
        let mut phrase: Vec<String> = toks[start..]
            .iter()
            .take(5)
            .take_while(|w| !PHRASE_STOP.contains(&w.as_str()))
            .filter(|w| !filter_tokens.contains(*w))
            .cloned()
            .collect();
        // "how many distinct X" / "number of unique X" → COUNT(DISTINCT X).
        let mut func = *func;
        if func == AggFunc::Count
            && phrase
                .first()
                .map(|w| w == "distinct" || w == "unique")
                .unwrap_or(false)
        {
            func = AggFunc::CountDistinct;
            phrase.remove(0);
        }
        let func = &func;
        // Derived columns take precedence when their name matches.
        if let Some(d) = match_derived(&phrase, ev) {
            intent.measures.push(Measure {
                agg: *func,
                column: Some(ColumnRef::new(d.table.clone(), d.name.clone())),
                derived_expr: Some(d.expr.clone()),
            });
            continue;
        }
        let numeric_only = !matches!(func, AggFunc::Count | AggFunc::CountDistinct);
        let col = if phrase.is_empty() {
            None
        } else {
            ev.best_column(&phrase, |cr, info| {
                (!numeric_only || info.is_numeric()) && !intent.dimensions.contains(cr)
            })
            .map(|(c, _)| c)
        };
        match (func, col) {
            (AggFunc::Count, None) => intent.measures.push(Measure {
                agg: AggFunc::Count,
                column: None,
                derived_expr: None,
            }),
            (AggFunc::Count | AggFunc::CountDistinct, Some(c)) => intent.measures.push(Measure {
                agg: *func,
                column: Some(c),
                derived_expr: None,
            }),
            (f, Some(c)) => intent.measures.push(Measure {
                agg: *f,
                column: Some(c),
                derived_expr: None,
            }),
            (f, None) => {
                // Fall back to the best numeric column over the whole question.
                let q_toks: Vec<String> = toks
                    .iter()
                    .enumerate()
                    .filter(|(i, w)| !dim_token_idx.contains(i) && !filter_tokens.contains(*w))
                    .map(|(_, w)| w.clone())
                    .collect();
                if let Some((c, _)) = ev.best_column(&q_toks, |cr, info| {
                    info.is_numeric() && !intent.dimensions.contains(cr)
                }) {
                    intent.measures.push(Measure {
                        agg: *f,
                        column: Some(c),
                        derived_expr: None,
                    });
                }
            }
        }
    }
    intent.measures.dedup();

    // Implicit SUM: a "show X by Y" question with a dimension but no agg word.
    if intent.measures.is_empty() && !intent.dimensions.is_empty() {
        // Try derived first.
        let q_toks: Vec<String> = toks
            .iter()
            .enumerate()
            .filter(|(i, w)| !dim_token_idx.contains(i) && !filter_tokens.contains(*w))
            .map(|(_, w)| w.clone())
            .collect();
        if let Some(d) = match_derived(&q_toks, ev) {
            intent.measures.push(Measure {
                agg: AggFunc::Sum,
                column: Some(ColumnRef::new(d.table.clone(), d.name.clone())),
                derived_expr: Some(d.expr.clone()),
            });
        } else if let Some((c, _)) = ev.best_column(&q_toks, |cr, info| {
            info.is_numeric() && !intent.dimensions.contains(cr)
        }) {
            intent.measures.push(Measure {
                agg: AggFunc::Sum,
                column: Some(c),
                derived_expr: None,
            });
        }
    }

    // An aggregate request over a result-table scope with exactly one
    // numeric column is unambiguous even when no token matches (result
    // tables rename their aggregates, e.g. `sum_shouldincome_after`).
    if wants_result
        && intent.measures.is_empty()
        && (!intent.dimensions.is_empty() || !agg_positions.is_empty())
    {
        let numeric: Vec<ColumnRef> = ev
            .all_columns()
            .into_iter()
            .filter(|(cr, info)| info.is_numeric() && !intent.dimensions.contains(cr))
            .map(|(cr, _)| cr)
            .collect();
        if numeric.len() == 1 {
            intent.measures.push(Measure {
                agg: AggFunc::Sum,
                column: Some(numeric.into_iter().next().expect("len checked")),
                derived_expr: None,
            });
        }
    }

    // If ordering was requested but measures exist, default ordering column
    // is the first measure (handled by generators).
    if intent.limit.is_some() && intent.order_desc.is_none() {
        intent.order_desc = Some(true);
    }

    // List-style projection when nothing aggregate was found.
    if intent.measures.is_empty() && intent.dimensions.is_empty() {
        let q_toks: Vec<String> = toks
            .iter()
            .filter(|w| !filter_tokens.contains(*w))
            .cloned()
            .collect();
        let mut scored: Vec<(ColumnRef, f64)> = ev
            .all_columns()
            .into_iter()
            .map(|(cr, _)| {
                let s = ev.score_column(&cr, &q_toks);
                (cr, s)
            })
            .filter(|(_, s)| *s >= 1.0)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        intent.projections = scored.into_iter().take(3).map(|(c, _)| c).collect();
    }

    // BI convention: "show me the <measure> for <filter>" with no
    // dimension means the total — promote a lone numeric projection under
    // filters to a SUM measure.
    if intent.measures.is_empty() && intent.dimensions.is_empty() && !intent.filters.is_empty() {
        let numeric_proj = intent
            .projections
            .iter()
            .find(|p| ev.column_info(p).map(|i| i.is_numeric()).unwrap_or(false))
            .cloned();
        if let Some(p) = numeric_proj {
            intent.measures.push(Measure {
                agg: AggFunc::Sum,
                column: Some(p),
                derived_expr: None,
            });
            intent.projections.clear();
        }
    }

    // Filters must reference columns that exist in the grounded scope
    // (value knowledge can point at out-of-scope tables; an upstream
    // result table has already applied such filters).
    intent
        .filters
        .retain(|f| ev.column_info(&f.column).is_some());

    // Data preparation: "drop nulls", "remove missing values", "clean".
    intent.dropna = lower.contains("drop null")
        || lower.contains("dropna")
        || lower.contains("missing value")
        || lower.contains("drop missing")
        || toks.iter().any(|t| t == "clean" || t == "cleaned");

    // Chart hint for visualization tasks.
    intent.chart_hint = infer_chart_hint(&toks, &intent);

    // A trend chart with no explicit x axis runs over time.
    if intent.chart_hint.as_deref() == Some("line") && intent.dimensions.is_empty() {
        if let Some(date) = ev.date_column(None) {
            intent.dimensions.push(date);
        }
    }

    intent
}

fn match_derived<'e>(phrase: &[String], ev: &'e Evidence) -> Option<&'e DerivedInfo> {
    let stems: HashSet<String> = phrase.iter().map(|w| stem(w)).collect();
    let mut best: Option<(&DerivedInfo, usize)> = None;
    for d in &ev.derived {
        // Only derived columns of tables actually in scope.
        if !ev
            .tables
            .iter()
            .any(|t| t.name.eq_ignore_ascii_case(&d.table))
        {
            continue;
        }
        let name_toks = split_ident(&d.name);
        let hits = name_toks
            .iter()
            .filter(|t| stems.contains(&stem(t)))
            .count();
        if hits == name_toks.len() && hits > 0 {
            match best {
                Some((_, bh)) if bh >= hits => {}
                _ => best = Some((d, hits)),
            }
        }
    }
    best.map(|(d, _)| d)
}

fn contains_phrase(haystack: &str, phrase: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(phrase) {
        let abs = start + pos;
        let before_ok = abs == 0 || !haystack.as_bytes()[abs - 1].is_ascii_alphanumeric();
        let end = abs + phrase.len();
        let after_ok = end >= haystack.len() || !haystack.as_bytes()[end].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return true;
        }
        start = abs + 1;
    }
    false
}

fn parse_numeric_filters(toks: &[String], ev: &Evidence, intent: &mut QueryIntent) {
    let ops: &[(&[&str], &str)] = &[
        (&["greater", "than"], ">"),
        (&["more", "than"], ">"),
        (&["higher", "than"], ">"),
        (&["larger", "than"], ">"),
        (&["above"], ">"),
        (&["over"], ">"),
        (&["at", "least"], ">="),
        (&["less", "than"], "<"),
        (&["fewer", "than"], "<"),
        (&["lower", "than"], "<"),
        (&["below"], "<"),
        (&["under"], "<"),
        (&["at", "most"], "<="),
        (&["exactly"], "="),
        (&["equal", "to"], "="),
    ];
    let mut i = 0;
    while i < toks.len() {
        let mut matched = None;
        for (pat, op) in ops {
            if toks[i..].len() > pat.len()
                && toks[i..i + pat.len()]
                    .iter()
                    .zip(pat.iter())
                    .all(|(a, b)| a == b)
            {
                if let Ok(num) = toks[i + pat.len()].parse::<f64>() {
                    matched = Some((pat.len(), *op, num));
                    break;
                }
            }
        }
        if let Some((plen, op, num)) = matched {
            // Column phrase: contiguous tokens immediately before the
            // operator, stopping at the nearest stop word (so in "by total
            // amount with cost greater than 5" only "cost" is considered).
            let start = i.saturating_sub(3);
            let mut phrase: Vec<String> = Vec::new();
            for w in toks[start..i].iter().rev() {
                if PHRASE_STOP.contains(&w.as_str()) {
                    break;
                }
                phrase.insert(0, w.clone());
            }
            let col = ev
                .best_column(&phrase, |_, info| info.is_numeric())
                .map(|(c, _)| c)
                .or_else(|| {
                    ev.all_columns()
                        .into_iter()
                        .find(|(_, info)| info.is_numeric())
                        .map(|(c, _)| c)
                });
            if let Some(column) = col {
                intent.filters.push(Filter {
                    column,
                    op: op.to_string(),
                    value: FilterValue::Num(num),
                });
            }
            i += plen + 1;
        } else {
            i += 1;
        }
    }
}

fn parse_temporal_filters(
    expanded: &str,
    toks: &[String],
    ev: &Evidence,
    intent: &mut QueryIntent,
) {
    let date_col = match ev.date_column(None) {
        Some(c) => c,
        None => return,
    };
    let lower = expanded.to_lowercase();
    let mut push_range = |from: String, to: String| {
        intent.filters.push(Filter {
            column: date_col.clone(),
            op: "between".into(),
            value: FilterValue::DateRange(from, to),
        });
    };
    // Relative references need the current date.
    if let Some(now) = &ev.current_date {
        let year: i32 = now.get(0..4).and_then(|y| y.parse().ok()).unwrap_or(2024);
        let month: u32 = now.get(5..7).and_then(|m| m.parse().ok()).unwrap_or(1);
        if lower.contains("this year") {
            push_range(format!("{year}-01-01"), format!("{year}-12-31"));
            return;
        }
        if lower.contains("last year") {
            let y = year - 1;
            push_range(format!("{y}-01-01"), format!("{y}-12-31"));
            return;
        }
        if lower.contains("this month") {
            push_range(
                format!("{year}-{month:02}-01"),
                format!("{year}-{month:02}-28"),
            );
            return;
        }
        if lower.contains("last month") {
            let (y, m) = if month == 1 {
                (year - 1, 12)
            } else {
                (year, month - 1)
            };
            push_range(format!("{y}-{m:02}-01"), format!("{y}-{m:02}-28"));
            return;
        }
    }
    // Absolute year: "in 2023".
    for (i, t) in toks.iter().enumerate() {
        if i > 0 && (toks[i - 1] == "in" || toks[i - 1] == "during" || toks[i - 1] == "of") {
            if let Ok(y) = t.parse::<i32>() {
                if (1990..=2100).contains(&y) {
                    push_range(format!("{y}-01-01"), format!("{y}-12-31"));
                    return;
                }
            }
        }
    }
    // "since YYYY-MM-DD"
    if let Some(pos) = toks.iter().position(|t| t == "since") {
        // Dates tokenize into y, m, d words; re-find in raw text instead.
        let _ = pos;
        if let Some(idx) = lower.find("since ") {
            let rest = &expanded[idx + 6..];
            let candidate: String = rest.chars().take(10).collect();
            if datalab_frame::Date::parse(&candidate).is_ok() {
                push_range(candidate, "9999-12-31".into());
            }
        }
    }
}

fn infer_chart_hint(toks: &[String], intent: &QueryIntent) -> Option<String> {
    let has = |w: &str| toks.iter().any(|t| t == w);
    // An explicit mark name wins ("bar chart of income by product line"
    // is a bar chart, despite the word "line" in the dimension).
    if has("bar") {
        return Some("bar".into());
    }
    if has("pie") || has("share") || has("proportion") || has("percentage") {
        Some("pie".into())
    } else if has("trend")
        || has("time")
        || toks.windows(2).any(|w| w[0] == "line" && w[1] == "chart")
        || intent.dimensions.iter().any(|d| {
            let toks = split_ident(&d.column);
            toks.iter().any(|t| {
                t == "date"
                    || t == "month"
                    || t == "day"
                    || t == "ftime"
                    || t == "time"
                    || t == "year"
                    || t == "week"
            })
        })
    {
        Some("line".into())
    } else if has("scatter") || has("correlation") || has("relationship") {
        Some("point".into())
    } else if has("chart") || has("plot") || has("visualize") || has("visualise") || has("graph") {
        Some("bar".into())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence() -> Evidence {
        let mut ev = Evidence::from_schema(
            "table sales: region (str), amount (int), ftime (date), cost (float)\n\
             table users: id (int), city (str)\n\
             fk sales.region = users.city\n\
             values sales.region: east, west, south\n\
             current_date 2026-07-06\n",
        );
        ev.absorb_knowledge(
            "column sales.amount: revenue income collected per order\n\
             alias revenue -> sales.amount\n\
             jargon gmv: total amount\n\
             derived sales.profit = amount - cost\n",
        );
        ev
    }

    #[test]
    fn parses_schema_lines() {
        let ev = evidence();
        assert_eq!(ev.tables.len(), 2);
        assert_eq!(ev.tables[0].columns.len(), 4);
        assert_eq!(ev.fks.len(), 1);
        assert!(ev.value_index.iter().any(|(v, _, _)| v == "east"));
        assert_eq!(ev.current_date.as_deref(), Some("2026-07-06"));
    }

    #[test]
    fn basic_sum_by_dimension() {
        let ev = evidence();
        let intent = infer_intent("What is the total amount by region?", &ev);
        assert_eq!(intent.measures.len(), 1);
        assert_eq!(intent.measures[0].agg, AggFunc::Sum);
        assert_eq!(intent.measures[0].column.as_ref().unwrap().column, "amount");
        assert_eq!(intent.dimensions.len(), 1);
        assert_eq!(intent.dimensions[0].column, "region");
    }

    #[test]
    fn count_star() {
        let ev = evidence();
        let intent = infer_intent("How many records are there per region?", &ev);
        assert_eq!(intent.measures[0].agg, AggFunc::Count);
        assert!(intent.measures[0].column.is_none());
        assert_eq!(intent.dimensions[0].column, "region");
    }

    #[test]
    fn alias_resolves_ambiguous_column() {
        let ev = evidence();
        let intent = infer_intent("Show the average revenue by region", &ev);
        assert_eq!(intent.measures[0].agg, AggFunc::Avg);
        assert_eq!(intent.measures[0].column.as_ref().unwrap().column, "amount");
    }

    #[test]
    fn without_knowledge_alias_fails() {
        let ev = Evidence::from_schema(
            "table sales: region (str), shouldincome_after (float), ftime (date)\n",
        );
        let intent = infer_intent("Show the total income by region", &ev);
        // "income" cannot be grounded without the alias — no measure column.
        assert!(intent
            .measures
            .first()
            .map(|m| m.column.is_none())
            .unwrap_or(true));
        // With an alias it works.
        let mut ev2 = ev.clone();
        ev2.absorb_knowledge("alias income -> sales.shouldincome_after\n");
        let intent2 = infer_intent("Show the total income by region", &ev2);
        assert_eq!(
            intent2.measures[0].column.as_ref().unwrap().column,
            "shouldincome_after"
        );
    }

    #[test]
    fn numeric_filter() {
        let ev = evidence();
        let intent = infer_intent("Total amount by region with cost greater than 100", &ev);
        assert!(intent.filters.iter().any(|f| f.column.column == "cost"
            && f.op == ">"
            && f.value == FilterValue::Num(100.0)));
    }

    #[test]
    fn value_filter_from_samples() {
        let ev = evidence();
        let intent = infer_intent("Average amount for east", &ev);
        assert!(intent
            .filters
            .iter()
            .any(|f| f.op == "=" && f.value == FilterValue::Str("east".into())));
    }

    #[test]
    fn temporal_this_year() {
        let ev = evidence();
        let intent = infer_intent("Total amount this year by region", &ev);
        assert!(intent.filters.iter().any(|f| matches!(
            &f.value,
            FilterValue::DateRange(a, b) if a == "2026-01-01" && b == "2026-12-31"
        )));
    }

    #[test]
    fn absolute_year_filter() {
        let ev = evidence();
        let intent = infer_intent("Total amount by region in 2023", &ev);
        assert!(intent.filters.iter().any(|f| matches!(
            &f.value,
            FilterValue::DateRange(a, _) if a == "2023-01-01"
        )));
    }

    #[test]
    fn top_n() {
        let ev = evidence();
        let intent = infer_intent("Top 3 regions by total amount", &ev);
        assert_eq!(intent.limit, Some(3));
        assert_eq!(intent.order_desc, Some(true));
    }

    #[test]
    fn derived_measure_via_knowledge() {
        let ev = evidence();
        let intent = infer_intent("What is the total profit by region?", &ev);
        assert_eq!(
            intent.measures[0].derived_expr.as_deref(),
            Some("amount - cost")
        );
    }

    #[test]
    fn jargon_expansion() {
        let ev = evidence();
        let intent = infer_intent("Show gmv by region", &ev);
        // gmv expands to "total amount".
        assert_eq!(intent.measures[0].agg, AggFunc::Sum);
        assert_eq!(intent.measures[0].column.as_ref().unwrap().column, "amount");
    }

    #[test]
    fn join_path_found() {
        let ev = evidence();
        let path = ev.join_path("sales", "users").unwrap();
        assert_eq!(path.len(), 1);
        assert!(ev.join_path("sales", "nowhere").is_none());
        assert!(ev.join_path("sales", "sales").unwrap().is_empty());
    }

    #[test]
    fn chart_hint_detection() {
        let ev = evidence();
        let i1 = infer_intent("Draw a pie chart of the share of amount by region", &ev);
        assert_eq!(i1.chart_hint.as_deref(), Some("pie"));
        let i2 = infer_intent("Plot the trend of total amount by ftime", &ev);
        assert_eq!(i2.chart_hint.as_deref(), Some("line"));
        let i3 = infer_intent("Bar chart of total amount by region", &ev);
        assert_eq!(i3.chart_hint.as_deref(), Some("bar"));
    }
}
