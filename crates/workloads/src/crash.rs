//! Crash-recovery harness: run the deterministic serving corpus with
//! write-through durability, kill the "process" mid-append (modelled as
//! a torn or bit-flipped WAL tail), reboot, and prove the recovered
//! fleet is indistinguishable from the pre-crash one.
//!
//! Two gates, depending on the snapshot cadence:
//!
//! - **Full replay** (`snapshot_every == 0`): every query lives in the
//!   WAL, so replaying it re-executes the exact pre-crash run. The
//!   recovered sessions' [`FleetReport`] must equal the pre-crash one
//!   under `FleetReport::comparable()` — the same obsdiff-clean
//!   criterion CI applies to fleet baselines.
//! - **Snapshot + tail replay** (`snapshot_every > 0`): queries folded
//!   into a snapshot are restored, not re-run, so no run records exist
//!   for them. The gate is state equality instead: every tenant's
//!   durable state (tables, knowledge, notebook, history) must match
//!   the pre-crash session exactly, and a probe query fired at both
//!   sessions must produce identical responses.
//!
//! The injected damage models a `SIGKILL` between `write(2)` and
//! `fdatasync(2)`: the interrupted record was never acknowledged
//! (phase A completed all its requests), so recovery must *drop* it —
//! detected as a torn or corrupt tail, never mis-parsed — and lose
//! nothing else.

use crate::corpus::{request_corpus, RequestCorpus};
use datalab_core::{DataLab, DataLabConfig, DataLabResponse, FleetReport};
use datalab_store::{
    encode_frame, DurabilityConfig, DurableStore, FsyncPolicy, SessionRecord, SessionRecordRef,
    SessionState,
};
use datalab_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// What the simulated crash does to each tenant's WAL tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashInjection {
    /// Clean kill: every appended frame is intact.
    None,
    /// The last append was cut mid-frame (torn write).
    TornTail,
    /// The last append landed in full but a payload byte flipped
    /// (media corruption); the CRC must catch it.
    BitFlip,
}

impl CrashInjection {
    /// Stable name for reports and CLI flags.
    pub fn as_str(&self) -> &'static str {
        match self {
            CrashInjection::None => "clean",
            CrashInjection::TornTail => "torn",
            CrashInjection::BitFlip => "bitflip",
        }
    }

    /// Parses [`CrashInjection::as_str`] back.
    pub fn parse(raw: &str) -> Option<CrashInjection> {
        match raw {
            "clean" => Some(CrashInjection::None),
            "torn" => Some(CrashInjection::TornTail),
            "bitflip" => Some(CrashInjection::BitFlip),
            _ => None,
        }
    }
}

/// Crash-harness parameters.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Corpus seed (same generators as the fleet and loadgen).
    pub seed: u64,
    /// Tasks sampled per workload family.
    pub tasks_per_workload: usize,
    /// Snapshot cadence for the durable store (0 = WAL-only, which
    /// enables the full-replay report gate).
    pub snapshot_every: u64,
    /// The damage the crash inflicts on each tenant's WAL tail.
    pub injection: CrashInjection,
}

impl Default for CrashConfig {
    fn default() -> CrashConfig {
        CrashConfig {
            seed: 7,
            tasks_per_workload: 2,
            snapshot_every: 0,
            injection: CrashInjection::TornTail,
        }
    }
}

/// Outcome of one crash-recovery run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashReport {
    /// Corpus seed.
    pub seed: u64,
    /// Tasks per workload family.
    pub tasks_per_workload: u64,
    /// Snapshot cadence used (0 = WAL-only).
    pub snapshot_every: u64,
    /// Injection name (`clean` / `torn` / `bitflip`).
    pub injection: String,
    /// Tenants exercised.
    pub tenants: u64,
    /// WAL records appended in phase A.
    pub records_appended: u64,
    /// Tenants whose recovery observed a torn tail.
    pub torn_tenants: u64,
    /// Tenants whose recovery observed a corrupt (CRC-failed) tail.
    pub corrupt_tenants: u64,
    /// WAL records replayed across all tenants on recovery.
    pub replayed_records: u64,
    /// Whether the full-replay report gate ran (only in WAL-only mode).
    pub report_checked: bool,
    /// Full-replay gate: recovered fleet report equals the pre-crash
    /// one under `comparable()`. Vacuously true when unchecked.
    pub report_match: bool,
    /// State gate: every tenant's durable state and probe response
    /// matched the pre-crash session.
    pub state_match: bool,
    /// Human-readable gate violations (empty = clean pass).
    pub failures: Vec<String>,
}

impl CrashReport {
    /// Whether every gate passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.report_match && self.state_match
    }

    /// Serialises the report to JSON for the bench artifact writer.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// The pre-crash truth captured for one tenant, compared against its
/// recovered twin.
struct TenantTruth {
    lab: DataLab,
    state: SessionState,
}

/// The probe question fired at both the pre-crash and recovered session
/// of every tenant. It intentionally ignores tenant schemas: identical
/// *failure* is as strong an equivalence signal as identical success.
const PROBE: &str = "What is the total by the first column?";

fn probe_fingerprint(r: &DataLabResponse) -> String {
    format!(
        "success={} degraded={} rewritten={} plan={:?} rows={:?} answer={}",
        r.success,
        r.degraded,
        r.rewritten_query,
        r.plan,
        r.frame.as_ref().map(|df| df.n_rows()),
        r.answer
    )
}

/// Extracts the durable state of a live session (the same capture the
/// serving layer snapshots).
fn capture_state(lab: &DataLab) -> SessionState {
    SessionState {
        tables: lab.export_tables(),
        knowledge_json: lab.export_knowledge().unwrap_or_default(),
        notebook_json: lab.export_notebook(),
        history: lab.history().to_vec(),
        ingest_keys: lab.export_ingest_keys(),
    }
}

/// Applies one replayed WAL record to a session being rebuilt —
/// mirrors the serving layer's recovery replay.
fn apply_record(lab: &mut DataLab, record: &SessionRecordRef<'_>) {
    match record {
        SessionRecordRef::RegisterCsv { name, csv } => {
            let _ = lab.register_csv(name, csv);
        }
        SessionRecordRef::Query { workload, question } => {
            let _ = lab.query_as(workload, question);
        }
        SessionRecordRef::AddJargon { term, expansion } => {
            lab.add_jargon(term, expansion);
        }
        SessionRecordRef::AddValueAlias {
            term,
            table,
            column,
            value,
        } => {
            lab.add_value_alias(term, table, column, value);
        }
        SessionRecordRef::ImportKnowledge { json } => {
            let _ = lab.import_knowledge(json);
        }
        SessionRecordRef::ImportNotebook { json } => {
            let _ = lab.import_notebook(json);
        }
        SessionRecordRef::IngestBatch {
            table,
            rows_csv,
            key_column,
            idempotency_key,
        } => {
            let _ = lab.ingest_rows(table, rows_csv, *key_column, idempotency_key);
        }
    }
}

/// Phase A: run the corpus with write-through durability, exactly the
/// way the serving layer does (append under the session's execution
/// order, snapshot on cadence). Returns the per-tenant truth and the
/// number of records appended.
fn run_live(
    corpus: &RequestCorpus,
    store: &Arc<DurableStore>,
) -> io::Result<(BTreeMap<String, TenantTruth>, u64)> {
    let config = DataLabConfig::default();
    let mut labs: BTreeMap<String, DataLab> = BTreeMap::new();
    let mut appended = 0u64;

    let write_through =
        |store: &Arc<DurableStore>, tenant: &str, lab: &mut DataLab, record: SessionRecord| {
            let receipt = store.append(tenant, &record)?;
            if receipt.snapshot_due {
                store.snapshot(tenant, &capture_state(lab))?;
            }
            io::Result::Ok(())
        };

    for table in &corpus.tables {
        let lab = labs
            .entry(table.tenant.clone())
            .or_insert_with(|| DataLab::new(config.clone()));
        if lab.register_csv(&table.name, &table.csv).is_ok() {
            write_through(
                store,
                &table.tenant,
                lab,
                SessionRecord::RegisterCsv {
                    name: table.name.clone(),
                    csv: table.csv.clone(),
                },
            )?;
            appended += 1;
        }
    }
    for request in &corpus.requests {
        let lab = labs
            .entry(request.tenant.clone())
            .or_insert_with(|| DataLab::new(config.clone()));
        lab.query_as(&request.workload, &request.question);
        write_through(
            store,
            &request.tenant,
            lab,
            SessionRecord::Query {
                workload: request.workload.clone(),
                question: request.question.clone(),
            },
        )?;
        appended += 1;
    }

    let truths = labs
        .into_iter()
        .map(|(tenant, lab)| {
            let state = capture_state(&lab);
            (tenant, TenantTruth { lab, state })
        })
        .collect();
    Ok((truths, appended))
}

/// The crash itself: appends the frame of a record that was being
/// written when the process died, damaged per the injection. The record
/// was never acknowledged, so recovery must drop it cleanly.
fn damage_wal(path: &Path, injection: CrashInjection) -> io::Result<()> {
    if injection == CrashInjection::None {
        return Ok(());
    }
    let interrupted = SessionRecord::Query {
        workload: "crash".to_string(),
        question: "query interrupted by the crash".to_string(),
    };
    let mut frame = encode_frame(u64::MAX, &interrupted);
    let tail: &[u8] = match injection {
        CrashInjection::TornTail => &frame[..frame.len() / 2],
        CrashInjection::BitFlip => {
            let at = frame.len() - 3;
            frame[at] ^= 0x10;
            &frame
        }
        CrashInjection::None => unreachable!(),
    };
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    file.write_all(tail)?;
    file.sync_data()?;
    Ok(())
}

/// Runs the full crash-recovery cycle in `data_dir` (which must be
/// empty or absent) and reports every gate outcome.
pub fn run_crash_recovery(config: &CrashConfig, data_dir: &Path) -> io::Result<CrashReport> {
    let corpus = request_corpus(config.seed, config.tasks_per_workload);
    let durability = DurabilityConfig {
        // The harness syncs explicitly at the kill point; request-path
        // fsync would only slow the corpus run down.
        fsync: FsyncPolicy::Never,
        snapshot_every: config.snapshot_every,
    };

    // Phase A: live run with write-through durability.
    let store = DurableStore::open(data_dir, durability.clone(), Telemetry::new())?;
    let (mut truths, records_appended) = run_live(&corpus, &store)?;
    // The kill point: everything acknowledged reaches disk (the real
    // server's eviction/interval flusher guarantees the same), then the
    // in-flight append is torn.
    store.flush_all();
    let tenants: Vec<String> = truths.keys().cloned().collect();
    let wal_paths: Vec<std::path::PathBuf> = tenants.iter().map(|t| store.wal_path(t)).collect();
    drop(store);
    for path in &wal_paths {
        damage_wal(path, config.injection)?;
    }

    // Phase B: reboot. A fresh store recovers each tenant from its
    // snapshot + WAL tail, exactly as the serving layer does on a miss.
    let store = DurableStore::open(data_dir, durability, Telemetry::new())?;
    let mut failures = Vec::new();
    let mut torn_tenants = 0u64;
    let mut corrupt_tenants = 0u64;
    let mut replayed_records = 0u64;
    let mut recovered_labs: BTreeMap<String, DataLab> = BTreeMap::new();

    for tenant in &tenants {
        let lab_config = DataLabConfig::default();
        let outcome = store.recover_with(tenant, |outcome| {
            let mut lab = DataLab::new(lab_config.clone());
            if let Some(snap) = &outcome.snapshot {
                for (name, csv) in &snap.tables {
                    let _ = lab.register_csv(name, csv);
                }
                if !snap.knowledge_json.is_empty() {
                    let _ = lab.import_knowledge(snap.knowledge_json);
                }
                if !snap.notebook_json.is_empty() {
                    let _ = lab.import_notebook(snap.notebook_json);
                }
                lab.restore_history(snap.history.iter().map(|h| h.to_string()).collect());
                lab.restore_ingest_keys(snap.ingest_keys.iter().map(|k| k.to_string()).collect());
            }
            for (_, record) in &outcome.records {
                apply_record(&mut lab, record);
            }
            (
                lab,
                outcome.torn_tail,
                outcome.corrupt_tail,
                outcome.records.len() as u64,
            )
        })?;
        let Some((lab, torn, corrupt, replayed)) = outcome else {
            failures.push(format!("tenant {tenant}: no durable state found"));
            continue;
        };
        torn_tenants += u64::from(torn);
        corrupt_tenants += u64::from(corrupt);
        replayed_records += replayed;
        match config.injection {
            CrashInjection::TornTail if !torn => {
                failures.push(format!("tenant {tenant}: torn tail not detected"));
            }
            CrashInjection::BitFlip if !corrupt => {
                failures.push(format!("tenant {tenant}: corrupt frame not detected"));
            }
            CrashInjection::None if torn || corrupt => {
                failures.push(format!("tenant {tenant}: clean WAL reported damage"));
            }
            _ => {}
        }
        recovered_labs.insert(tenant.clone(), lab);
    }

    // Gate 1 (WAL-only mode): recovered run records reproduce the
    // pre-crash fleet report bit-for-bit modulo wall clock.
    let report_checked = config.snapshot_every == 0;
    let report_match = if report_checked {
        let collect = |labs: &mut BTreeMap<String, DataLab>| {
            let mut records = Vec::new();
            for lab in labs.values_mut() {
                records.extend(lab.take_run_records());
            }
            FleetReport::from_records(&records)
        };
        let mut pre_labs: BTreeMap<String, DataLab> = truths
            .iter_mut()
            .map(|(t, truth)| {
                (
                    t.clone(),
                    std::mem::replace(&mut truth.lab, DataLab::new(DataLabConfig::default())),
                )
            })
            .collect();
        let pre = collect(&mut pre_labs);
        // Put the labs back for the probe comparison below.
        for (tenant, lab) in pre_labs {
            truths.get_mut(&tenant).expect("tenant exists").lab = lab;
        }
        let post = collect(&mut recovered_labs);
        let matched = pre.comparable() == post.comparable();
        if !matched {
            failures.push(format!(
                "fleet report diverged after recovery: pre {}/{} passed, post {}/{} passed",
                pre.passed, pre.runs, post.passed, post.runs
            ));
        }
        matched
    } else {
        true
    };

    // Gate 2: durable state and probe equivalence per tenant.
    let mut state_match = true;
    for (tenant, truth) in truths.iter_mut() {
        let Some(recovered) = recovered_labs.get_mut(tenant) else {
            state_match = false;
            continue;
        };
        let recovered_state = capture_state(recovered);
        if recovered_state != truth.state {
            state_match = false;
            let what = [
                ("tables", recovered_state.tables == truth.state.tables),
                (
                    "knowledge",
                    recovered_state.knowledge_json == truth.state.knowledge_json,
                ),
                (
                    "notebook",
                    recovered_state.notebook_json == truth.state.notebook_json,
                ),
                ("history", recovered_state.history == truth.state.history),
                (
                    "ingest_keys",
                    recovered_state.ingest_keys == truth.state.ingest_keys,
                ),
            ]
            .iter()
            .filter(|(_, same)| !same)
            .map(|(name, _)| *name)
            .collect::<Vec<_>>()
            .join(",");
            failures.push(format!(
                "tenant {tenant}: recovered state diverged ({what})"
            ));
            continue;
        }
        let pre_probe = probe_fingerprint(&truth.lab.query_as("probe", PROBE));
        let post_probe = probe_fingerprint(&recovered.query_as("probe", PROBE));
        if pre_probe != post_probe {
            state_match = false;
            failures.push(format!(
                "tenant {tenant}: probe diverged\n  pre:  {pre_probe}\n  post: {post_probe}"
            ));
        }
    }

    Ok(CrashReport {
        seed: config.seed,
        tasks_per_workload: config.tasks_per_workload as u64,
        snapshot_every: config.snapshot_every,
        injection: config.injection.as_str().to_string(),
        tenants: tenants.len() as u64,
        records_appended,
        torn_tenants,
        corrupt_tenants,
        replayed_records,
        report_checked,
        report_match,
        state_match,
        failures,
    })
}

/// One-line summary per scenario for terminal output.
pub fn render_crash_report(report: &CrashReport) -> String {
    format!(
        "{:<8} snapshot_every={:<3} tenants={:<3} appended={:<4} replayed={:<4} \
         torn={:<3} corrupt={:<3} report_match={:<5} state_match={:<5} {}",
        report.injection,
        report.snapshot_every,
        report.tenants,
        report.records_appended,
        report.replayed_records,
        report.torn_tenants,
        report.corrupt_tenants,
        report.report_match,
        report.state_match,
        if report.ok() { "OK" } else { "FAILED" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "datalab-crash-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run(tag: &str, config: &CrashConfig) -> CrashReport {
        let dir = temp_dir(tag);
        let report = run_crash_recovery(config, &dir).expect("harness runs");
        let _ = std::fs::remove_dir_all(&dir);
        report
    }

    #[test]
    fn torn_tail_recovery_reproduces_the_fleet_report() {
        let report = run(
            "torn",
            &CrashConfig {
                tasks_per_workload: 1,
                injection: CrashInjection::TornTail,
                snapshot_every: 0,
                ..CrashConfig::default()
            },
        );
        assert!(report.ok(), "{:?}", report.failures);
        assert!(report.report_checked);
        assert_eq!(report.torn_tenants, report.tenants);
        assert_eq!(report.corrupt_tenants, 0);
        assert_eq!(report.replayed_records, report.records_appended);
    }

    #[test]
    fn bit_flip_recovery_drops_the_frame_and_matches() {
        let report = run(
            "flip",
            &CrashConfig {
                tasks_per_workload: 1,
                injection: CrashInjection::BitFlip,
                snapshot_every: 0,
                ..CrashConfig::default()
            },
        );
        assert!(report.ok(), "{:?}", report.failures);
        assert_eq!(report.corrupt_tenants, report.tenants);
        assert_eq!(report.torn_tenants, 0);
    }

    #[test]
    fn snapshot_path_recovers_state_and_probe_equivalence() {
        let report = run(
            "snap",
            &CrashConfig {
                tasks_per_workload: 2,
                injection: CrashInjection::None,
                snapshot_every: 2,
                ..CrashConfig::default()
            },
        );
        assert!(report.ok(), "{:?}", report.failures);
        assert!(!report.report_checked, "snapshots fold away run records");
        assert!(report.state_match);
        // The cadence actually fired: fewer records replayed than appended.
        assert!(
            report.replayed_records < report.records_appended,
            "{report:?}"
        );
    }

    #[test]
    fn report_serializes_for_the_artifact_writer() {
        let report = run(
            "serde",
            &CrashConfig {
                tasks_per_workload: 1,
                ..CrashConfig::default()
            },
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: CrashReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(render_crash_report(&report).contains("OK"));
    }
}
