//! # datalab-workloads
//!
//! Synthetic benchmark generators and evaluation metrics reproducing the
//! experimental setup of the DataLab paper (see DESIGN.md for the
//! substitution rationale): Spider/BIRD-like NL2SQL, DS-1000/DSEval-like
//! NL2DSCode, nvBench/VisEval-like NL2VIS, DABench/InsightBench-like
//! NL2Insight, the Tencent-like enterprise corpus (knowledge generation,
//! schema linking, NL2DSL, multi-agent questions), and the notebook
//! corpus (DAG construction, context management).

#![warn(missing_docs)]

pub mod ablations;
pub mod chaos;
pub mod corpus;
pub mod crash;
pub mod data;
pub mod enterprise;
pub mod fleet;
pub mod insight;
pub mod metrics;
pub mod nl2code;
pub mod nl2sql;
pub mod nl2vis;
pub mod notebooks;
pub mod parallel;
pub mod write_chaos;

pub use chaos::{render_sweep, run_chaos_sweep, ChaosPoint};
pub use corpus::{request_corpus, CorpusRequest, CorpusTable, RequestCorpus};
pub use crash::{
    render_crash_report, run_crash_recovery, CrashConfig, CrashInjection, CrashReport,
};
pub use data::{build_domain, ColumnRole, Domain, TableSpec};
pub use fleet::{run_fleet, run_fleet_with_records, FleetConfig};
pub use write_chaos::{
    default_schedules, render_write_chaos_report, run_write_chaos, run_write_chaos_with,
    ScheduleOutcome, WriteChaosConfig, WriteChaosReport,
};
