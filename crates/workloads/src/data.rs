//! Synthetic data domains: seeded table generators with the semantic
//! metadata (natural-language names, sample values, foreign keys) the
//! benchmark generators template questions from.

use datalab_frame::{DataFrame, DataType, Date, Value};
use datalab_sql::Database;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// A column with both its physical name (what the table stores) and its
/// natural name (what users say). Clean benchmarks keep them equal; dirty
/// (BIRD-like / enterprise) benchmarks abbreviate the physical name.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRole {
    /// Physical column name.
    pub physical: String,
    /// Natural-language name used in questions.
    pub natural: String,
}

impl ColumnRole {
    /// Creates a role.
    pub fn new(physical: &str, natural: &str) -> Self {
        ColumnRole {
            physical: physical.into(),
            natural: natural.into(),
        }
    }
}

/// Semantic description of one generated table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Numeric measure columns.
    pub measures: Vec<ColumnRole>,
    /// Categorical dimension columns.
    pub dims: Vec<ColumnRole>,
    /// Date column, when present.
    pub date: Option<ColumnRole>,
    /// Values per physical dimension column.
    pub values: HashMap<String, Vec<String>>,
    /// Rows generated.
    pub n_rows: usize,
}

/// A generated domain: database plus semantic metadata.
#[derive(Debug, Clone)]
pub struct Domain {
    /// The database with data loaded.
    pub db: Database,
    /// Table specs (main fact table first).
    pub tables: Vec<TableSpec>,
    /// Foreign keys as `(table, column, table, column)`.
    pub fks: Vec<(String, String, String, String)>,
}

impl Domain {
    /// The schema prompt section: `table`, `fk` lines (no samples — those
    /// come from profiling).
    pub fn schema_section(&self) -> String {
        let mut s = String::new();
        for t in &self.tables {
            let df = self.db.get(&t.name).expect("generated table exists");
            let cols: Vec<String> = df
                .schema()
                .fields()
                .iter()
                .map(|f| format!("{} ({})", f.name, f.dtype))
                .collect();
            s.push_str(&format!("table {}: {}\n", t.name, cols.join(", ")));
        }
        for (t1, c1, t2, c2) in &self.fks {
            s.push_str(&format!("fk {t1}.{c1} = {t2}.{c2}\n"));
        }
        s
    }

    /// The main fact table.
    pub fn fact(&self) -> &TableSpec {
        &self.tables[0]
    }
}

/// The three synthetic business domains:
/// (fact table name, measures (phys, natural), dims (phys, natural, values), date).
type DomainSpec = (
    &'static str,
    &'static [(&'static str, &'static str)],
    &'static [(&'static str, &'static str, &'static [&'static str])],
    (&'static str, &'static str),
);

const DOMAINS: &[DomainSpec] = &[
    // (fact table name, measures (phys, natural), dims (phys, natural, values), date)
    (
        "orders",
        &[
            ("amount", "amount"),
            ("cost", "cost"),
            ("quantity", "quantity"),
        ],
        &[
            ("region", "region", &["east", "west", "south", "north"]),
            (
                "product",
                "product",
                &["laptop", "phone", "tablet", "monitor", "camera"],
            ),
        ],
        ("order_date", "order date"),
    ),
    (
        "sessions",
        &[("revenue", "revenue"), ("playtime", "playtime")],
        &[
            (
                "game",
                "game",
                &["chess", "racer", "puzzle", "saga", "arena"],
            ),
            (
                "country",
                "country",
                &["china", "japan", "brazil", "france"],
            ),
        ],
        ("session_date", "session date"),
    ),
    (
        "usage",
        &[("spend", "spend"), ("hours", "hours")],
        &[
            (
                "service",
                "service",
                &["compute", "storage", "network", "database"],
            ),
            ("tier", "tier", &["premium", "standard", "basic"]),
        ],
        ("usage_date", "usage date"),
    ),
];

/// Dirty-name mapping for BIRD-like / enterprise schemas.
fn dirty_name(clean: &str) -> String {
    match clean {
        "amount" => "amt_val".into(),
        "cost" => "cst_cny".into(),
        "quantity" => "qty_n".into(),
        "revenue" => "shouldincome_after".into(),
        "playtime" => "pt_sec".into(),
        "spend" => "spnd_usd".into(),
        "hours" => "hrs_used".into(),
        "region" => "rgn_cd".into(),
        "product" => "prod_class4_name".into(),
        "game" => "gm_key".into(),
        "country" => "ctry_iso".into(),
        "service" => "svc_nm".into(),
        "tier" => "tier_cd".into(),
        "order_date" => "ftime".into(),
        "session_date" => "ftime".into(),
        "usage_date" => "ftime".into(),
        other => format!("{other}_fld"),
    }
}

/// Builds one domain with seeded data.
///
/// `dirty` switches the physical column names to enterprise-style
/// abbreviations while questions keep using natural names — the central
/// difficulty axis between Spider-like and BIRD-like workloads.
pub fn build_domain(rng: &mut StdRng, domain_idx: usize, dirty: bool, n_rows: usize) -> Domain {
    let (fact_name, measures, dims, (date_phys, date_nat)) = DOMAINS[domain_idx % DOMAINS.len()];
    let phys = |clean: &str| {
        if dirty {
            dirty_name(clean)
        } else {
            clean.to_string()
        }
    };

    let mut spec = TableSpec {
        name: fact_name.to_string(),
        measures: measures
            .iter()
            .map(|(p, n)| ColumnRole::new(&phys(p), n))
            .collect(),
        dims: dims
            .iter()
            .map(|(p, n, _)| ColumnRole::new(&phys(p), n))
            .collect(),
        date: Some(ColumnRole::new(&phys(date_phys), date_nat)),
        values: HashMap::new(),
        n_rows,
    };
    for (p, _, vals) in dims {
        spec.values
            .insert(phys(p), vals.iter().map(|v| v.to_string()).collect());
    }

    // Generate rows.
    let base = Date::new(2023, 1, 1).expect("valid date");
    let mut columns: Vec<(String, DataType, Vec<Value>)> = Vec::new();
    for d in &spec.dims {
        let vals = &spec.values[&d.physical];
        let col: Vec<Value> = (0..n_rows)
            .map(|_| Value::Str(vals[rng.gen_range(0..vals.len())].clone()))
            .collect();
        columns.push((d.physical.clone(), DataType::Str, col));
    }
    for (i, m) in spec.measures.iter().enumerate() {
        let col: Vec<Value> = (0..n_rows)
            .map(|r| {
                // A gentle upward trend plus noise keeps trends/forecasts
                // meaningful.
                let base_v = 20.0 + 3.0 * i as f64 + 0.08 * r as f64;
                let noise = rng.gen_range(-8.0..8.0);
                if i % 2 == 0 {
                    Value::Int((base_v + noise).max(1.0) as i64)
                } else {
                    Value::Float(((base_v + noise) * 10.0).round() / 10.0)
                }
            })
            .collect();
        let dtype = if i % 2 == 0 {
            DataType::Int
        } else {
            DataType::Float
        };
        columns.push((m.physical.clone(), dtype, col));
    }
    if let Some(date) = &spec.date {
        let col: Vec<Value> = (0..n_rows)
            .map(|r| Value::Date(base.add_days((r as i64 * 640) % 700)))
            .collect();
        columns.push((date.physical.clone(), DataType::Date, col));
    }
    let refs: Vec<(&str, DataType, Vec<Value>)> = columns
        .iter()
        .map(|(n, t, v)| (n.as_str(), *t, v.clone()))
        .collect();
    let df = DataFrame::from_columns(refs).expect("generated schema is valid");

    let mut db = Database::new();
    db.insert(fact_name, df);

    // A small dimension table joined through the first dim.
    let join_dim = &spec.dims[0];
    let dim_values = spec.values[&join_dim.physical].clone();
    let lookup_name = format!("{fact_name}_dim");
    let key_col = phys("key_name");
    let label_col = phys("group_label");
    let labels = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let lookup = DataFrame::from_columns(vec![
        (
            key_col.as_str(),
            DataType::Str,
            dim_values.iter().map(|v| Value::Str(v.clone())).collect(),
        ),
        (
            label_col.as_str(),
            DataType::Str,
            dim_values
                .iter()
                .enumerate()
                .map(|(i, _)| Value::Str(labels[i % labels.len()].to_string()))
                .collect(),
        ),
    ])
    .expect("lookup schema valid");
    db.insert(lookup_name.clone(), lookup);
    let mut lookup_values = HashMap::new();
    lookup_values.insert(key_col.clone(), dim_values.clone());
    lookup_values.insert(
        label_col.clone(),
        labels
            .iter()
            .take(dim_values.len())
            .map(|s| s.to_string())
            .collect(),
    );
    let lookup_spec = TableSpec {
        name: lookup_name.clone(),
        measures: vec![],
        dims: vec![
            ColumnRole::new(&key_col, "key name"),
            ColumnRole::new(&label_col, "group label"),
        ],
        date: None,
        values: lookup_values,
        n_rows: dim_values.len(),
    };

    Domain {
        db,
        fks: vec![(
            fact_name.to_string(),
            join_dim.physical.clone(),
            lookup_name,
            key_col,
        )],
        tables: vec![spec, lookup_spec],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn builds_all_domains_clean_and_dirty() {
        for idx in 0..3 {
            for dirty in [false, true] {
                let mut rng = StdRng::seed_from_u64(7);
                let d = build_domain(&mut rng, idx, dirty, 60);
                assert_eq!(d.db.len(), 2);
                let fact = d.db.get(&d.fact().name).unwrap();
                assert_eq!(fact.n_rows(), 60);
                let section = d.schema_section();
                assert!(section.contains("fk "), "{section}");
                if dirty {
                    assert!(section.contains("ftime"), "{section}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let da = build_domain(&mut a, 0, false, 30);
        let db_ = build_domain(&mut b, 0, false, 30);
        assert_eq!(da.db.get("orders").unwrap(), db_.db.get("orders").unwrap());
    }

    #[test]
    fn fks_join_successfully() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = build_domain(&mut rng, 0, false, 40);
        let (t1, c1, t2, c2) = &d.fks[0];
        let sql = format!("SELECT COUNT(*) AS n FROM {t1} JOIN {t2} ON {t1}.{c1} = {t2}.{c2}");
        let out = datalab_sql::run_sql(&sql, &d.db).unwrap();
        assert_eq!(out.column("n").unwrap()[0], Value::Int(40));
    }
}
