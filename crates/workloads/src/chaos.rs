//! Chaos fleet sweeps: the same deterministic workload fleet executed at
//! increasing transport fault-injection rates, summarised as resilience
//! outcomes (success rate, degraded rate, retries, breaker trips) per
//! injected rate.
//!
//! The sweep is the engine behind the `chaos_report` binary and the CI
//! chaos smoke step: rate `0.0` must reproduce the no-chaos baseline
//! bit-for-bit (modulo wall clock, see `FleetReport::comparable`), and
//! every elevated rate must complete without panics while recording the
//! resilience machinery at work.

use crate::fleet::{run_fleet, FleetConfig};
use datalab_core::FleetReport;
use serde::{Deserialize, Serialize};

/// Resilience outcome of one fleet run at one injected fault rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Total injected fault rate (split uniformly across fault kinds).
    pub fault_rate: f64,
    /// Queries run.
    pub runs: u64,
    /// Fully-successful queries (including degraded-but-answered ones).
    pub passed: u64,
    /// Fraction of queries that succeeded, `0.0` when nothing ran.
    pub success_rate: f64,
    /// Queries answered by a rule-based degradation path.
    pub degraded: u64,
    /// Fraction of queries that degraded.
    pub degraded_rate: f64,
    /// Transport faults observed (injected and real).
    pub faults: u64,
    /// Retries the resilient transport attempted.
    pub transport_retries: u64,
    /// Circuit-breaker trips across all sessions.
    pub breaker_trips: u64,
}

impl ChaosPoint {
    /// Summarises one fleet report taken at `fault_rate`.
    pub fn from_report(fault_rate: f64, report: &FleetReport) -> ChaosPoint {
        let frac = |n: u64| {
            if report.runs == 0 {
                0.0
            } else {
                n as f64 / report.runs as f64
            }
        };
        ChaosPoint {
            fault_rate,
            runs: report.runs,
            passed: report.passed,
            success_rate: frac(report.passed),
            degraded: report.resilience.degraded,
            degraded_rate: frac(report.resilience.degraded),
            faults: report.resilience.faults,
            transport_retries: report.resilience.transport_retries,
            breaker_trips: report.resilience.breaker_trips,
        }
    }
}

/// Runs the fleet once per rate in `rates` (everything else taken from
/// `base`) and returns each rate's resilience summary alongside its full
/// report, in input order.
pub fn run_chaos_sweep(base: &FleetConfig, rates: &[f64]) -> Vec<(ChaosPoint, FleetReport)> {
    rates
        .iter()
        .map(|&rate| {
            let config = FleetConfig {
                chaos_rate: rate,
                ..base.clone()
            };
            let report = run_fleet(&config);
            (ChaosPoint::from_report(rate, &report), report)
        })
        .collect()
}

/// Text table over sweep points: one row per injected rate.
pub fn render_sweep(points: &[ChaosPoint]) -> String {
    let mut out = format!(
        "{:>6} {:>5} {:>7} {:>9} {:>9} {:>7} {:>8} {:>6}\n",
        "rate", "runs", "passed", "success%", "degraded%", "faults", "retries", "trips"
    );
    for p in points {
        out.push_str(&format!(
            "{:>6.2} {:>5} {:>7} {:>9.1} {:>9.1} {:>7} {:>8} {:>6}\n",
            p.fault_rate,
            p.runs,
            p.passed,
            p.success_rate * 100.0,
            p.degraded_rate * 100.0,
            p.faults,
            p.transport_retries,
            p.breaker_trips,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FleetConfig {
        FleetConfig {
            tasks_per_workload: 1,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn sweep_rate_zero_reproduces_the_plain_fleet() {
        let plain = run_fleet(&base());
        let sweep = run_chaos_sweep(&base(), &[0.0]);
        assert_eq!(sweep.len(), 1);
        let (point, report) = &sweep[0];
        assert_eq!(report.comparable(), plain.comparable());
        assert_eq!(point.faults, 0);
        assert_eq!(point.breaker_trips, 0);
        assert_eq!(point.degraded, 0);
        assert_eq!(point.runs, 4);
    }

    #[test]
    fn elevated_rates_record_resilience_activity_without_panics() {
        let sweep = run_chaos_sweep(&base(), &[0.2]);
        let (point, report) = &sweep[0];
        assert_eq!(point.runs, 4);
        assert!(point.faults > 0, "{point:?}");
        assert!(point.transport_retries > 0, "{point:?}");
        // Every failed query carries a structured error marker in the
        // fleet taxonomy; successes may be degraded but never poisoned.
        assert_eq!(report.passed + report.failed, report.runs);
        if report.failed > 0 {
            assert!(!report.errors.is_empty(), "{:?}", report.errors);
        }
        let text = render_sweep(std::slice::from_ref(point));
        assert!(text.contains("0.20"), "{text}");
    }

    #[test]
    fn points_serialize_for_the_report_writer() {
        let point = ChaosPoint::from_report(0.25, &run_fleet(&base()));
        let json = serde_json::to_string(&point).unwrap();
        let back: ChaosPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, point);
        assert_eq!(back.success_rate, 1.0);
    }
}
