//! Ablation evaluators for the paper's module studies:
//!
//! - Table II — Domain Knowledge Incorporation (S1 no knowledge / S2
//!   partial / S3 full) on Schema Linking (Recall@5) and NL2DSL
//!   (Accuracy),
//! - Table III — Inter-Agent Communication (S1 no FSM / S2 no structured
//!   format / S3 both) on multi-agent questions (Success Rate, Accuracy).

use crate::enterprise::{DslTask, EnterpriseCorpus, GeneratedKnowledge, LinkingTask};
use crate::metrics::recall_at_k;
use datalab_agents::{CommunicationConfig, ProxyAgent, SharedBuffer};
use datalab_knowledge::{
    incorporate, render_knowledge, retrieve, IncorporateConfig, IndexTask, KnowledgeIndex,
    KnowledgeSetting, RetrievalConfig,
};
use datalab_llm::intent::Evidence;
use datalab_llm::{LanguageModel, Prompt};
use datalab_sql::{ex_equal, run_sql};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CURRENT_DATE: &str = "2026-07-06";

/// Filters rendered knowledge lines per the Table II setting (same rule
/// as `datalab_knowledge::utilization`).
fn filter_lines(lines: &str, setting: KnowledgeSetting) -> String {
    match setting {
        KnowledgeSetting::None => String::new(),
        KnowledgeSetting::Partial => lines
            .lines()
            .filter(|l| {
                !(l.starts_with("derived ")
                    || l.starts_with("value ")
                    || (l.starts_with("alias ") && l.contains("-> value")))
            })
            .collect::<Vec<_>>()
            .join("\n"),
        KnowledgeSetting::Full => lines.to_string(),
    }
}

/// Table II, row 1: Schema Linking Recall@5 (%) under a knowledge setting.
pub fn eval_schema_linking(
    corpus: &EnterpriseCorpus,
    gk: &GeneratedKnowledge,
    tasks: &[LinkingTask],
    setting: KnowledgeSetting,
    llm: &dyn LanguageModel,
) -> f64 {
    eval_schema_linking_with(corpus, gk, tasks, setting, llm, &RetrievalConfig::default())
}

/// [`eval_schema_linking`] with explicit retrieval parameters — the
/// design-choice ablation over Algorithm 2's three scoring stages.
pub fn eval_schema_linking_with(
    corpus: &EnterpriseCorpus,
    gk: &GeneratedKnowledge,
    tasks: &[LinkingTask],
    setting: KnowledgeSetting,
    llm: &dyn LanguageModel,
    retrieval_cfg: &RetrievalConfig,
) -> f64 {
    let index = KnowledgeIndex::build(&gk.graph, IndexTask::SchemaLinking);
    let schema = corpus.schema_section();
    let mut recalls = Vec::with_capacity(tasks.len());
    for task in tasks {
        let knowledge = if setting == KnowledgeSetting::None {
            String::new()
        } else {
            let retrieved = retrieve(llm, &gk.graph, &index, &task.question, retrieval_cfg);
            filter_lines(&render_knowledge(&gk.graph, &retrieved), setting)
        };
        let out = llm.complete(
            &Prompt::new("schema_linking")
                .section("schema", schema.clone())
                .section("knowledge", knowledge)
                .section("question", task.question.clone())
                .render(),
        );
        let ranked: Vec<String> = out
            .lines()
            .filter_map(|l| l.split_whitespace().next().map(String::from))
            .collect();
        recalls.push(recall_at_k(&task.gold, &ranked, 5));
    }
    100.0 * crate::metrics::mean(&recalls)
}

/// Table II, row 2: NL2DSL Accuracy (%) under a knowledge setting —
/// execution equivalence of the compiled DSL against the gold SQL.
pub fn eval_nl2dsl(
    corpus: &EnterpriseCorpus,
    gk: &GeneratedKnowledge,
    tasks: &[DslTask],
    setting: KnowledgeSetting,
    llm: &dyn LanguageModel,
) -> f64 {
    let config = IncorporateConfig {
        setting,
        ..Default::default()
    };
    eval_nl2dsl_with(corpus, gk, tasks, llm, &config)
}

/// [`eval_nl2dsl`] with an explicit incorporate configuration — the
/// design-choice ablation over validation retries and retrieval weights.
pub fn eval_nl2dsl_with(
    corpus: &EnterpriseCorpus,
    gk: &GeneratedKnowledge,
    tasks: &[DslTask],
    llm: &dyn LanguageModel,
    config: &IncorporateConfig,
) -> f64 {
    let index = KnowledgeIndex::build(&gk.graph, IndexTask::Nl2Dsl);
    let mut hits = 0usize;
    for task in tasks {
        // BI sessions are table-scoped: the DSL translator sees the
        // current table's schema.
        let schema = corpus.table_schema_section(&task.table);
        let ctx = incorporate(
            llm,
            &gk.graph,
            &index,
            &schema,
            &task.question,
            &[],
            CURRENT_DATE,
            config,
        );
        let Some(dsl) = ctx.dsl else { continue };
        let ev = Evidence::from_schema(&schema);
        let sql = dsl.to_sql(Some(&ev));
        let gold = run_sql(&task.gold_sql, &corpus.db).expect("gold runs");
        if let Ok(result) = run_sql(&sql, &corpus.db) {
            if ex_equal(&result, &gold, false) {
                hits += 1;
            }
        }
    }
    100.0 * hits as f64 / tasks.len().max(1) as f64
}

/// A correctness check against a multi-agent outcome.
#[derive(Debug, Clone)]
pub enum Check {
    /// The synthesised answer (or any buffer unit) must contain the text.
    AnswerContains(String),
    /// A chart with this mark must have been rendered.
    ChartMark(String),
    /// At least one of the given strings must appear in the answer.
    AnyOf(Vec<String>),
    /// The rendered chart's largest value must match (±1%) — verifies the
    /// chart drew the *right* (e.g. filtered) data, not just any data.
    ChartTopValue(f64),
}

/// One Table III question.
#[derive(Debug, Clone)]
pub struct MultiAgentTask {
    /// The table the question targets.
    pub table: String,
    /// The compound question.
    pub question: String,
    /// Correctness checks.
    pub checks: Vec<Check>,
}

/// Builds the Table III question set: `per_table` compound questions per
/// corpus table, each requiring multi-step reasoning across agents.
pub fn multiagent_tasks(
    corpus: &EnterpriseCorpus,
    seed: u64,
    per_table: usize,
) -> Vec<MultiAgentTask> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let mut tasks = Vec::new();
    for t in &corpus.tables {
        let name = &t.spec.name;
        for q in 0..per_table {
            let m = &t.spec.measures[rng.gen_range(0..t.spec.measures.len())];
            let d = &t.spec.dims[rng.gen_range(0..t.spec.dims.len())];
            // Expected top category computed from the real data.
            let top_sql = format!(
                "SELECT {d0}, SUM({m0}) AS v FROM {name} GROUP BY {d0} ORDER BY v DESC LIMIT 1",
                d0 = d.physical,
                m0 = m.physical
            );
            let top = run_sql(&top_sql, &corpus.db)
                .ok()
                .and_then(|f| f.column_at(0).first().cloned())
                .map(|v| v.render())
                .unwrap_or_default();
            let task = match q % 5 {
                0 => {
                    // Downstream-consumption task: the chart must draw the
                    // *extracted* subset, which only flows to the vis
                    // agent through the structured protocol.
                    let d2 = &t.spec.dims[(t
                        .spec
                        .dims
                        .iter()
                        .position(|x| x.physical == d.physical)
                        .unwrap_or(0)
                        + 1)
                        % t.spec.dims.len()];
                    let vals2 = &t.spec.values[&d2.physical];
                    let v2 = &vals2[rng.gen_range(0..vals2.len())];
                    let top_val_sql = format!(
                        "SELECT SUM({m0}) AS v FROM {name} WHERE {d20} = '{v2}' GROUP BY {d0} ORDER BY v DESC LIMIT 1",
                        m0 = m.physical,
                        d0 = d.physical,
                        d20 = d2.physical
                    );
                    let top_val = run_sql(&top_val_sql, &corpus.db)
                        .ok()
                        .and_then(|f| f.column_at(0).first().and_then(|v| v.as_f64()))
                        .unwrap_or(0.0);
                    MultiAgentTask {
                        table: name.clone(),
                        question: format!(
                            "From {name}, extract the rows for {v2} with a query, then draw a bar chart of the total {} by {} of the extracted result.",
                            m.natural, d.natural
                        ),
                        checks: vec![
                            Check::ChartMark("bar".into()),
                            Check::ChartTopValue(top_val),
                        ],
                    }
                }
                1 => MultiAgentTask {
                    table: name.clone(),
                    question: format!(
                        "Query the {} data from {name}. Are there anomalies in the {}? Then forecast it for next quarter.",
                        m.natural, m.natural
                    ),
                    checks: vec![Check::AnyOf(vec![
                        "upward".into(),
                        "downward".into(),
                        "forecast".into(),
                    ])],
                },
                2 => MultiAgentTask {
                    table: name.clone(),
                    question: format!(
                        "Analyze the key insights of {} by {} in {name}, then plot the trend of total {} over date.",
                        m.natural, d.natural, m.natural
                    ),
                    checks: vec![
                        Check::AnswerContains(top.clone()),
                        Check::ChartMark("line".into()),
                    ],
                },
                3 => MultiAgentTask {
                    table: name.clone(),
                    question: format!(
                        "Show the total {} by {} from {name}, then explain what drives {} in the data.",
                        m.natural, d.natural, m.natural
                    ),
                    checks: vec![Check::AnyOf(vec!["driver".into(), "correlation".into()])],
                },
                _ => {
                    let top_val_sql = format!(
                        "SELECT SUM({m0}) AS v FROM {name} GROUP BY {d0} ORDER BY v DESC LIMIT 1",
                        m0 = m.physical,
                        d0 = d.physical
                    );
                    let top_val = run_sql(&top_val_sql, &corpus.db)
                        .ok()
                        .and_then(|f| f.column_at(0).first().and_then(|v| v.as_f64()))
                        .unwrap_or(0.0);
                    MultiAgentTask {
                        table: name.clone(),
                        question: format!(
                            "Get the total {} by {} from {name}, then draw a pie chart of the share of the result.",
                            m.natural, d.natural
                        ),
                        checks: vec![
                            Check::ChartMark("pie".into()),
                            Check::ChartTopValue(top_val),
                        ],
                    }
                }
            };
            tasks.push(task);
        }
    }
    tasks
}

/// Table III scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiAgentScores {
    /// Success Rate (%): questions solved within ≤5 calls/agent.
    pub success_rate: f64,
    /// Accuracy (%): questions whose checks all pass.
    pub accuracy: f64,
}

/// Evaluates the communication protocol on the Table III question set.
/// The shared buffer persists across a table's session (questions about
/// the same table run in sequence), which is what makes unselective
/// retrieval drown agents in stale context.
pub fn eval_multiagent(
    corpus: &EnterpriseCorpus,
    gk: &GeneratedKnowledge,
    tasks: &[MultiAgentTask],
    config: &CommunicationConfig,
    llm: &dyn LanguageModel,
) -> MultiAgentScores {
    let index = KnowledgeIndex::build(&gk.graph, IndexTask::Nl2Dsl);
    let proxy = ProxyAgent::new(llm, config.clone());
    let mut successes = 0usize;
    let mut correct = 0usize;
    let mut session_buffer = SharedBuffer::default();
    let mut session_table = String::new();
    for task in tasks {
        if task.table != session_table {
            // A new table starts a new session (fresh buffer).
            session_buffer = SharedBuffer::default();
            session_table = task.table.clone();
        }
        let schema = corpus.table_schema_section(&task.table);
        // Sample values (profiling-grade grounding) for this table.
        let t = corpus
            .tables
            .iter()
            .find(|t| t.spec.name == task.table)
            .expect("known");
        let mut schema_plus = schema.clone();
        for (col, vals) in &t.spec.values {
            schema_plus.push_str(&format!(
                "values {}.{col}: {}\n",
                t.spec.name,
                vals.join(", ")
            ));
        }
        let retrieved = retrieve(
            llm,
            &gk.graph,
            &index,
            &task.question,
            &RetrievalConfig::default(),
        );
        let knowledge = render_knowledge(&gk.graph, &retrieved);
        let out = proxy.run_query_with_buffer(
            &corpus.db,
            &schema_plus,
            &knowledge,
            &task.question,
            CURRENT_DATE,
            &session_buffer,
        );
        if out.success {
            successes += 1;
        }
        // Correctness is judged on what the platform reports to the user:
        // the synthesised answer (which the communication protocol shapes)
        // plus the rendered chart.
        let haystack = out.answer.to_lowercase();
        let check_ok = task.checks.iter().all(|c| match c {
            Check::AnswerContains(s) => !s.is_empty() && haystack.contains(&s.to_lowercase()),
            Check::AnyOf(opts) => opts.iter().any(|s| haystack.contains(&s.to_lowercase())),
            Check::ChartMark(mark) => out
                .chart
                .as_ref()
                .map(|ch| ch.mark.name() == mark)
                .unwrap_or(false),
            Check::ChartTopValue(expected) => out
                .chart
                .as_ref()
                .map(|ch| {
                    ch.points
                        .iter()
                        .filter_map(|(_, _, v)| v.as_f64())
                        .any(|v| {
                            let scale = expected.abs().max(1.0);
                            (v - expected).abs() <= 0.01 * scale
                        })
                })
                .unwrap_or(false),
        });
        if out.success && check_ok {
            correct += 1;
        }
    }
    let n = tasks.len().max(1) as f64;
    MultiAgentScores {
        success_rate: 100.0 * successes as f64 / n,
        accuracy: 100.0 * correct as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enterprise::{downstream_tasks, enterprise_corpus, generate_corpus_knowledge};
    use datalab_llm::SimLlm;

    #[test]
    fn knowledge_settings_are_monotone() {
        let corpus = enterprise_corpus(31, 5);
        let llm = SimLlm::gpt4();
        let gk = generate_corpus_knowledge(&corpus, &llm);
        let (linking, dsl) = downstream_tasks(&corpus, 31, 24, 24);
        let s1l = eval_schema_linking(&corpus, &gk, &linking, KnowledgeSetting::None, &llm);
        let s3l = eval_schema_linking(&corpus, &gk, &linking, KnowledgeSetting::Full, &llm);
        assert!(s3l > s1l + 10.0, "linking s1={s1l} s3={s3l}");
        let s1d = eval_nl2dsl(&corpus, &gk, &dsl, KnowledgeSetting::None, &llm);
        let s2d = eval_nl2dsl(&corpus, &gk, &dsl, KnowledgeSetting::Partial, &llm);
        let s3d = eval_nl2dsl(&corpus, &gk, &dsl, KnowledgeSetting::Full, &llm);
        assert!(s2d > s1d, "dsl s1={s1d} s2={s2d}");
        assert!(s3d > s2d, "dsl s2={s2d} s3={s3d}");
    }

    #[test]
    fn communication_ablation_shapes() {
        let corpus = enterprise_corpus(33, 4);
        let llm = SimLlm::gpt4();
        let gk = generate_corpus_knowledge(&corpus, &llm);
        let tasks = multiagent_tasks(&corpus, 33, 5);
        let full = eval_multiagent(&corpus, &gk, &tasks, &CommunicationConfig::default(), &llm);
        let no_fsm = eval_multiagent(
            &corpus,
            &gk,
            &tasks,
            &CommunicationConfig {
                use_fsm: false,
                ..Default::default()
            },
            &llm,
        );
        assert!(
            full.accuracy >= no_fsm.accuracy,
            "full={full:?} no_fsm={no_fsm:?}"
        );
        assert!(full.accuracy > 40.0, "{full:?}");
    }
}
