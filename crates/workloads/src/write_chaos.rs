//! Write-path chaos harness: stream ingest batches through the durable
//! store while a seeded [`FaultDisk`] injects EIO, ENOSPC, short
//! writes, fsync failures, and write latency — then SIGKILL-reboot and
//! prove the transactional guarantees held.
//!
//! Per fault schedule, four gates:
//!
//! - **Atomicity**: after reboot, every table must equal the fold of
//!   exactly the batches the recovered store claims applied (its
//!   idempotency-key set), bit for bit. A half-applied batch — rows
//!   present without the key, or vice versa — fails the gate.
//! - **Durability**: every batch acknowledged during the live phase
//!   must be in the recovered key set. Unacknowledged batches may be
//!   present (a frame that reached the WAL before its fsync failed) or
//!   absent (a torn frame) — both are legal, half-applied is not.
//! - **Exactly-once convergence**: retrying *every* batch against the
//!   recovered store (faults cleared) must converge to each key applied
//!   exactly once — already-applied batches deduplicate, lost batches
//!   apply — and the final state must equal an oracle that replays the
//!   actual application order.
//! - **Control equivalence**: the zero-rate schedule must reproduce an
//!   uninterrupted in-memory run exactly, with no failures, no
//!   rejections, and no read-only trips.
//!
//! The "SIGKILL" is a store drop without graceful flush: everything the
//! writer handed to the kernel survives (the harness cannot drop the
//! page cache), while short-write faults plant genuine torn frames for
//! recovery to detect and drop.

use crate::corpus::{request_corpus, CorpusTable};
use datalab_core::{DataLab, DataLabConfig};
use datalab_store::{
    DurabilityConfig, DurableStore, FaultDisk, FaultDiskConfig, FsyncPolicy, SessionRecord,
    SessionRecordRef, SessionState,
};
use datalab_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Write-chaos harness parameters.
#[derive(Debug, Clone)]
pub struct WriteChaosConfig {
    /// Corpus and fault-injection seed.
    pub seed: u64,
    /// Tasks per workload family handed to the corpus generator (the
    /// harness only uses its tables).
    pub tasks_per_workload: usize,
    /// Snapshot cadence for the durable store (records per snapshot;
    /// 0 disables cadence snapshots).
    pub snapshot_every: u64,
    /// Ingest batches generated per table.
    pub batches_per_table: usize,
    /// Rows per generated batch.
    pub rows_per_batch: usize,
    /// Most tables exercised (bounds runtime).
    pub max_tables: usize,
}

impl Default for WriteChaosConfig {
    fn default() -> WriteChaosConfig {
        WriteChaosConfig {
            seed: 7,
            tasks_per_workload: 1,
            snapshot_every: 3,
            batches_per_table: 4,
            rows_per_batch: 2,
            max_tables: 6,
        }
    }
}

/// The fault schedules swept by default: one schedule per fault kind at
/// a rate that reliably fires, a mixed run, a total blackout (which
/// must trip read-only mode), and the zero-rate control.
pub fn default_schedules(seed: u64) -> Vec<(String, FaultDiskConfig)> {
    let base = FaultDiskConfig::disabled(seed);
    vec![
        ("control".to_string(), base.clone()),
        (
            "eio".to_string(),
            FaultDiskConfig {
                eio_rate: 0.15,
                ..base.clone()
            },
        ),
        (
            "enospc".to_string(),
            FaultDiskConfig {
                enospc_rate: 0.15,
                ..base.clone()
            },
        ),
        (
            "short".to_string(),
            FaultDiskConfig {
                short_write_rate: 0.15,
                ..base.clone()
            },
        ),
        (
            "fsync".to_string(),
            FaultDiskConfig {
                fsync_fail_rate: 0.2,
                ..base.clone()
            },
        ),
        (
            "latency".to_string(),
            FaultDiskConfig {
                latency_rate: 0.3,
                latency: Duration::from_millis(1),
                ..base.clone()
            },
        ),
        ("mixed".to_string(), FaultDiskConfig::uniform(seed, 0.2)),
        (
            "blackout".to_string(),
            FaultDiskConfig {
                eio_rate: 1.0,
                ..base
            },
        ),
    ]
}

/// One generated ingest batch.
#[derive(Debug, Clone)]
struct Batch {
    tenant: String,
    table: String,
    csv: String,
    key_column: Option<String>,
    key: String,
}

/// How the live phase left one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchFate {
    /// Appended, fsynced, applied — acknowledged.
    Applied,
    /// The WAL append (or its fsync) failed; nothing applied in memory.
    AppendFailed,
    /// Rejected up front because the store was read-only.
    RejectedReadOnly,
}

/// Outcome of one fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Schedule name (`control`, `eio`, ...).
    pub name: String,
    /// Batches generated (all of them are retried after reboot).
    pub batches: u64,
    /// Batches acknowledged during the live phase.
    pub applied: u64,
    /// Live-phase appends that failed under injected faults.
    pub append_failures: u64,
    /// Live-phase batches shed by the read-only gate.
    pub rejected_read_only: u64,
    /// Retries answered by idempotency-key dedup after reboot.
    pub deduplicated_retries: u64,
    /// Faults the disk actually injected across the schedule.
    pub faults_injected: u64,
    /// Whether the store degraded to read-only at any point.
    pub read_only_tripped: bool,
    /// Torn WAL tails observed during recovery.
    pub torn_tails: u64,
    /// Gate: recovered tables equal the fold of the recovered key set.
    pub atomicity_ok: bool,
    /// Gate: every acknowledged batch survived the reboot.
    pub durability_ok: bool,
    /// Gate: post-retry state is exactly-once for every key.
    pub converged: bool,
    /// Human-readable gate violations (empty = clean pass).
    pub failures: Vec<String>,
}

impl ScheduleOutcome {
    /// Whether every gate passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.atomicity_ok && self.durability_ok && self.converged
    }
}

/// Outcome of the full schedule sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteChaosReport {
    /// Corpus / fault seed.
    pub seed: u64,
    /// Snapshot cadence used.
    pub snapshot_every: u64,
    /// Per-schedule outcomes, in sweep order.
    pub schedules: Vec<ScheduleOutcome>,
    /// Whether the zero-rate schedule matched the in-memory control run.
    pub control_matches: bool,
    /// Sweep-level violations (empty = clean pass).
    pub failures: Vec<String>,
}

impl WriteChaosReport {
    /// Whether every schedule and the control comparison passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.control_matches && self.schedules.iter().all(|s| s.ok())
    }

    /// Serialises the report to JSON for the bench artifact writer.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// One-line summary per schedule for terminal output.
pub fn render_write_chaos_report(report: &WriteChaosReport) -> String {
    let mut out = String::new();
    for s in &report.schedules {
        out.push_str(&format!(
            "{:<9} batches={:<3} applied={:<3} failed={:<3} shed={:<3} dedup={:<3} \
             faults={:<4} read_only={:<5} torn={:<2} atomic={:<5} durable={:<5} \
             converged={:<5} {}\n",
            s.name,
            s.batches,
            s.applied,
            s.append_failures,
            s.rejected_read_only,
            s.deduplicated_retries,
            s.faults_injected,
            s.read_only_tripped,
            s.torn_tails,
            s.atomicity_ok,
            s.durability_ok,
            s.converged,
            if s.ok() { "OK" } else { "FAILED" }
        ));
    }
    out.push_str(&format!(
        "control_matches={} overall={}\n",
        report.control_matches,
        if report.ok() { "OK" } else { "FAILED" }
    ));
    out
}

/// The durable capture the serving layer snapshots (same fields).
fn capture_state(lab: &DataLab) -> SessionState {
    SessionState {
        tables: lab.export_tables(),
        knowledge_json: lab.export_knowledge().unwrap_or_default(),
        notebook_json: lab.export_notebook(),
        history: lab.history().to_vec(),
        ingest_keys: lab.export_ingest_keys(),
    }
}

/// Deterministic ingest batches for one table: rows recycled from the
/// table's own CSV (so they always fit the schema), every third batch
/// an upsert on the first column.
fn batches_for(table: &CorpusTable, config: &WriteChaosConfig) -> Vec<Batch> {
    let mut lines = table.csv.lines();
    let Some(header) = lines.next() else {
        return Vec::new();
    };
    let data: Vec<&str> = lines.filter(|l| !l.trim().is_empty()).collect();
    if data.is_empty() {
        return Vec::new();
    }
    let first_column = header
        .split(',')
        .next()
        .unwrap_or_default()
        .trim()
        .to_string();
    (0..config.batches_per_table)
        .map(|b| {
            let mut csv = String::from(header);
            csv.push('\n');
            for i in 0..config.rows_per_batch.max(1) {
                csv.push_str(data[(b + i) % data.len()]);
                csv.push('\n');
            }
            Batch {
                tenant: table.tenant.clone(),
                table: table.name.clone(),
                csv,
                key_column: (b % 3 == 2).then(|| first_column.clone()),
                key: format!("wc-{}-{}", table.name, b),
            }
        })
        .collect()
}

/// Mirrors the serving layer's ingest ordering against one session:
/// dedup → validate → read-only gate → WAL append → in-memory apply →
/// cadence snapshot. Returns the batch's fate (validation failures are
/// impossible for generated batches and surface as an error).
fn ingest_through(
    store: &Arc<DurableStore>,
    tenant: &str,
    lab: &mut DataLab,
    batch: &Batch,
) -> io::Result<Option<BatchFate>> {
    if lab.ingest_seen(&batch.key) {
        return Ok(None);
    }
    lab.validate_ingest(&batch.table, &batch.csv, batch.key_column.as_deref())
        .map_err(|e| io::Error::other(format!("generated batch failed validation: {e}")))?;
    if !store.write_allowed() {
        return Ok(Some(BatchFate::RejectedReadOnly));
    }
    let record = SessionRecord::IngestBatch {
        table: batch.table.clone(),
        rows_csv: batch.csv.clone(),
        key_column: batch.key_column.clone(),
        idempotency_key: batch.key.clone(),
    };
    let receipt = match store.append(tenant, &record) {
        Ok(receipt) => receipt,
        Err(_) => return Ok(Some(BatchFate::AppendFailed)),
    };
    lab.ingest_rows(
        &batch.table,
        &batch.csv,
        batch.key_column.as_deref(),
        &batch.key,
    )
    .map_err(|e| io::Error::other(format!("validated batch failed to apply: {e}")))?;
    if receipt.snapshot_due {
        // Snapshot failures are non-fatal live (the WAL holds every
        // record); the fault injector exercises this path too.
        let _ = store.snapshot(tenant, &capture_state(lab));
    }
    Ok(Some(BatchFate::Applied))
}

/// Rebuilds one tenant from durable state, the way the serving layer
/// does on a session miss. Returns `(lab, torn_tail)`.
fn recover_tenant(store: &Arc<DurableStore>, tenant: &str) -> io::Result<Option<(DataLab, bool)>> {
    store.recover_with(tenant, |outcome| {
        let mut lab = DataLab::new(DataLabConfig::default());
        if let Some(snap) = &outcome.snapshot {
            for (name, csv) in &snap.tables {
                let _ = lab.register_csv(name, csv);
            }
            if !snap.knowledge_json.is_empty() {
                let _ = lab.import_knowledge(snap.knowledge_json);
            }
            if !snap.notebook_json.is_empty() {
                let _ = lab.import_notebook(snap.notebook_json);
            }
            lab.restore_history(snap.history.iter().map(|h| h.to_string()).collect());
            lab.restore_ingest_keys(snap.ingest_keys.iter().map(|k| k.to_string()).collect());
        }
        for (_, record) in &outcome.records {
            if let SessionRecordRef::IngestBatch {
                table,
                rows_csv,
                key_column,
                idempotency_key,
            } = record
            {
                let _ = lab.ingest_rows(table, rows_csv, *key_column, idempotency_key);
            } else if let SessionRecordRef::RegisterCsv { name, csv } = record {
                let _ = lab.register_csv(name, csv);
            }
        }
        (lab, outcome.torn_tail)
    })
}

/// A fresh oracle session for one tenant: base tables registered, then
/// the given batches applied in order.
fn oracle_for<'a>(
    tables: &[&CorpusTable],
    batches: impl Iterator<Item = &'a Batch>,
) -> io::Result<DataLab> {
    let mut lab = DataLab::new(DataLabConfig::default());
    for table in tables {
        lab.register_csv(&table.name, &table.csv)
            .map_err(|e| io::Error::other(format!("oracle registration: {e}")))?;
    }
    for batch in batches {
        lab.ingest_rows(
            &batch.table,
            &batch.csv,
            batch.key_column.as_deref(),
            &batch.key,
        )
        .map_err(|e| io::Error::other(format!("oracle apply: {e}")))?;
    }
    Ok(lab)
}

/// Runs the full sweep in `root` (one subdirectory per schedule; must
/// be empty or absent) with the default schedules.
pub fn run_write_chaos(config: &WriteChaosConfig, root: &Path) -> io::Result<WriteChaosReport> {
    run_write_chaos_with(config, root, &default_schedules(config.seed))
}

/// [`run_write_chaos`] over an explicit schedule list.
pub fn run_write_chaos_with(
    config: &WriteChaosConfig,
    root: &Path,
    schedules: &[(String, FaultDiskConfig)],
) -> io::Result<WriteChaosReport> {
    let corpus = request_corpus(config.seed, config.tasks_per_workload);
    let tables: Vec<&CorpusTable> = corpus
        .tables
        .iter()
        .take(config.max_tables.max(1))
        .collect();
    let mut by_tenant: BTreeMap<String, Vec<&CorpusTable>> = BTreeMap::new();
    for table in &tables {
        by_tenant
            .entry(table.tenant.clone())
            .or_default()
            .push(table);
    }
    // Global batch order: round-robin across tables so faults spread.
    let per_table: Vec<Vec<Batch>> = tables.iter().map(|t| batches_for(t, config)).collect();
    let mut order: Vec<Batch> = Vec::new();
    for b in 0..config.batches_per_table {
        for batches in &per_table {
            if let Some(batch) = batches.get(b) {
                order.push(batch.clone());
            }
        }
    }

    // The uninterrupted control run: every batch applied once, no store.
    let mut control: BTreeMap<String, DataLab> = BTreeMap::new();
    for (tenant, tenant_tables) in &by_tenant {
        let lab = oracle_for(tenant_tables, order.iter().filter(|b| &b.tenant == tenant))?;
        control.insert(tenant.clone(), lab);
    }

    let durability = DurabilityConfig {
        // Sync on the request path: an acknowledgement means the batch
        // is on stable storage, so fsync faults surface as 503s, not as
        // silent post-crash loss.
        fsync: FsyncPolicy::Always,
        snapshot_every: config.snapshot_every,
    };
    let mut report = WriteChaosReport {
        seed: config.seed,
        snapshot_every: config.snapshot_every,
        schedules: Vec::new(),
        control_matches: true,
        failures: Vec::new(),
    };

    for (name, fault_config) in schedules {
        let dir = root.join(name);
        let faults = Arc::new(FaultDisk::new(FaultDiskConfig::disabled(config.seed)));
        let store = DurableStore::open_with_faults(
            dir.clone(),
            durability.clone(),
            Telemetry::new(),
            Some(Arc::clone(&faults)),
        )?;

        // Registration on a healthy disk: the schedule targets the
        // streaming write path, not the initial load.
        let mut labs: BTreeMap<String, DataLab> = BTreeMap::new();
        for (tenant, tenant_tables) in &by_tenant {
            let mut lab = DataLab::new(DataLabConfig::default());
            for table in tenant_tables {
                lab.register_csv(&table.name, &table.csv)
                    .map_err(|e| io::Error::other(format!("registration: {e}")))?;
                store.append(
                    tenant,
                    &SessionRecord::RegisterCsv {
                        name: table.name.clone(),
                        csv: table.csv.clone(),
                    },
                )?;
            }
            labs.insert(tenant.clone(), lab);
        }

        // Live phase under the schedule's faults.
        faults.set_config(fault_config.clone());
        let mut fates: Vec<BatchFate> = Vec::with_capacity(order.len());
        let mut read_only_tripped = false;
        for batch in &order {
            let lab = labs.get_mut(&batch.tenant).expect("tenant registered");
            let fate = ingest_through(&store, &batch.tenant, lab, batch)?
                .expect("fresh keys never dedup live");
            read_only_tripped |= store.read_only();
            fates.push(fate);
        }
        let mut outcome = ScheduleOutcome {
            name: name.clone(),
            batches: order.len() as u64,
            applied: fates.iter().filter(|f| **f == BatchFate::Applied).count() as u64,
            append_failures: fates
                .iter()
                .filter(|f| **f == BatchFate::AppendFailed)
                .count() as u64,
            rejected_read_only: fates
                .iter()
                .filter(|f| **f == BatchFate::RejectedReadOnly)
                .count() as u64,
            deduplicated_retries: 0,
            faults_injected: faults.injected(),
            read_only_tripped,
            torn_tails: 0,
            atomicity_ok: true,
            durability_ok: true,
            converged: true,
            failures: Vec::new(),
        };
        let acked: BTreeMap<String, BTreeSet<String>> = by_tenant
            .keys()
            .map(|tenant| {
                let keys = order
                    .iter()
                    .zip(&fates)
                    .filter(|(b, f)| &b.tenant == tenant && **f == BatchFate::Applied)
                    .map(|(b, _)| b.key.clone())
                    .collect();
                (tenant.clone(), keys)
            })
            .collect();

        // SIGKILL: drop the store with no graceful flush, heal the
        // disk, reboot, and recover every tenant.
        drop(store);
        faults.clear();
        let store =
            DurableStore::open_with_faults(dir, durability.clone(), Telemetry::new(), None)?;
        let mut recovered: BTreeMap<String, DataLab> = BTreeMap::new();
        for tenant in by_tenant.keys() {
            match recover_tenant(&store, tenant)? {
                Some((lab, torn)) => {
                    outcome.torn_tails += u64::from(torn);
                    recovered.insert(tenant.clone(), lab);
                }
                None => {
                    outcome
                        .failures
                        .push(format!("tenant {tenant}: no durable state after reboot"));
                }
            }
        }

        let mut keys_at_reboot: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (tenant, tenant_tables) in &by_tenant {
            let Some(lab) = recovered.get(tenant) else {
                outcome.durability_ok = false;
                continue;
            };
            let keys: BTreeSet<String> = lab.export_ingest_keys().into_iter().collect();
            keys_at_reboot.insert(tenant.clone(), keys.clone());
            // Durability: every acknowledged batch survived.
            for key in &acked[tenant] {
                if !keys.contains(key) {
                    outcome.durability_ok = false;
                    outcome
                        .failures
                        .push(format!("tenant {tenant}: acknowledged batch {key} lost"));
                }
            }
            // Atomicity: the recovered tables equal the fold of exactly
            // the batches the recovered key set claims, bit for bit.
            let oracle = oracle_for(
                tenant_tables,
                order
                    .iter()
                    .filter(|b| &b.tenant == tenant && keys.contains(&b.key)),
            )?;
            if oracle.export_tables() != lab.export_tables() {
                outcome.atomicity_ok = false;
                outcome.failures.push(format!(
                    "tenant {tenant}: recovered tables diverge from the fold of {} applied keys",
                    keys.len()
                ));
            }
        }

        // Retry every batch (the client's crash-recovery behaviour):
        // applied ones must dedup, lost ones must apply, and the result
        // must be exactly-once against the actual-order oracle.
        for batch in &order {
            let Some(lab) = recovered.get_mut(&batch.tenant) else {
                continue; // already reported as a durability failure
            };
            match ingest_through(&store, &batch.tenant, lab, batch)? {
                None => outcome.deduplicated_retries += 1,
                Some(BatchFate::Applied) => {}
                Some(fate) => outcome.failures.push(format!(
                    "tenant {}: retry of {} did not apply ({fate:?}) on a healthy disk",
                    batch.tenant, batch.key
                )),
            }
        }
        for (tenant, tenant_tables) in &by_tenant {
            let Some(lab) = recovered.get(tenant) else {
                outcome.converged = false;
                continue;
            };
            let keys: BTreeSet<String> = lab.export_ingest_keys().into_iter().collect();
            let expected: BTreeSet<String> = order
                .iter()
                .filter(|b| &b.tenant == tenant)
                .map(|b| b.key.clone())
                .collect();
            if keys != expected {
                outcome.converged = false;
                outcome.failures.push(format!(
                    "tenant {tenant}: {} keys applied after retries, expected {}",
                    keys.len(),
                    expected.len()
                ));
                continue;
            }
            // Actual application order: the batches present at reboot
            // in attempt order, then the retried remainder in order.
            let at_reboot = keys_at_reboot.get(tenant).cloned().unwrap_or_default();
            let survivors = order
                .iter()
                .filter(|b| &b.tenant == tenant && at_reboot.contains(&b.key));
            let retried = order
                .iter()
                .filter(|b| &b.tenant == tenant && !at_reboot.contains(&b.key));
            let oracle = oracle_for(tenant_tables, survivors.chain(retried))?;
            if oracle.export_tables() != lab.export_tables() {
                outcome.converged = false;
                outcome.failures.push(format!(
                    "tenant {tenant}: post-retry state is not exactly-once"
                ));
            }
        }

        // Control equivalence for the zero-rate schedule.
        if outcome.faults_injected == 0 {
            if outcome.append_failures != 0
                || outcome.rejected_read_only != 0
                || outcome.read_only_tripped
                || outcome.torn_tails != 0
            {
                report.control_matches = false;
                report.failures.push(format!(
                    "schedule {name}: zero faults injected but anomalies recorded"
                ));
            }
            for (tenant, lab) in &recovered {
                if lab.export_tables() != control[tenant].export_tables() {
                    report.control_matches = false;
                    report.failures.push(format!(
                        "schedule {name}: tenant {tenant} diverges from the control run"
                    ));
                }
            }
        }

        report.schedules.push(outcome);
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "datalab-write-chaos-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn the_default_sweep_passes_every_gate() {
        let root = temp_root("sweep");
        let report = run_write_chaos(&WriteChaosConfig::default(), &root).expect("harness runs");
        let _ = std::fs::remove_dir_all(&root);
        assert!(report.ok(), "{}", render_write_chaos_report(&report));
        // The sweep actually exercised the machinery it claims to.
        assert!(report.schedules.iter().any(|s| s.append_failures > 0));
        assert!(report.schedules.iter().any(|s| s.read_only_tripped));
        assert!(report.schedules.iter().any(|s| s.deduplicated_retries > 0));
        let control = &report.schedules[0];
        assert_eq!(control.name, "control");
        assert_eq!(control.append_failures + control.rejected_read_only, 0);
        assert_eq!(control.applied, control.batches);
    }

    #[test]
    fn the_report_serializes_for_the_artifact_writer() {
        let root = temp_root("serde");
        let config = WriteChaosConfig {
            batches_per_table: 2,
            max_tables: 2,
            ..WriteChaosConfig::default()
        };
        let schedules = vec![(
            "control".to_string(),
            FaultDiskConfig::disabled(config.seed),
        )];
        let report = run_write_chaos_with(&config, &root, &schedules).expect("harness runs");
        let _ = std::fs::remove_dir_all(&root);
        assert!(report.ok(), "{}", render_write_chaos_report(&report));
        let json = report.to_json();
        let back: WriteChaosReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
