//! Workload-driven fleet runs: drive sampled tasks from each benchmark
//! family through a full [`DataLab`] platform and fold every query's run
//! record into one [`FleetReport`].
//!
//! This is the report generator behind the CI regression gate: `obsdiff`
//! compares the JSON this module produces against a checked-in baseline.

use crate::data::Domain;
use crate::insight::dabench_like;
use crate::nl2code::ds1000_like;
use crate::nl2sql::spider_like;
use crate::nl2vis::nvbench_like;
use datalab_core::{DataLab, DataLabConfig, FleetReport, RunRecorder};
use std::collections::BTreeMap;

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Workload generator seed (kept fixed in CI so reports are
    /// comparable across runs).
    pub seed: u64,
    /// Tasks sampled from each of the four workload families.
    pub tasks_per_workload: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 7,
            tasks_per_workload: 3,
        }
    }
}

fn lab_for_domain(domain: &Domain) -> DataLab {
    let mut lab = DataLab::new(DataLabConfig::default());
    for name in domain.db.table_names() {
        if let Ok(df) = domain.db.get(name) {
            let _ = lab.register_table(name, df.clone());
        }
    }
    lab
}

fn run_tasks(
    recorder: &mut RunRecorder,
    workload: &str,
    domains: &[Domain],
    tasks: impl IntoIterator<Item = (usize, String)>,
) {
    // One platform per domain, shared by that domain's tasks so notebook
    // context and history accumulate the way a real session would.
    let mut labs: BTreeMap<usize, DataLab> = BTreeMap::new();
    for (domain_idx, question) in tasks {
        let Some(domain) = domains.get(domain_idx) else {
            continue;
        };
        let lab = labs
            .entry(domain_idx)
            .or_insert_with(|| lab_for_domain(domain));
        lab.query_as(workload, &question);
    }
    for (_, mut lab) in labs {
        recorder.absorb(lab.take_run_records());
    }
}

/// Runs sampled nl2sql / nl2code / nl2vis / insight tasks through the
/// platform (one run record per task) and returns the fleet report.
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    let mut recorder = RunRecorder::new();

    let sql = spider_like(config.seed, config.tasks_per_workload);
    run_tasks(
        &mut recorder,
        "nl2sql",
        &sql.domains,
        sql.tasks.iter().map(|t| (t.domain, t.question.clone())),
    );

    let code = ds1000_like(config.seed, config.tasks_per_workload);
    run_tasks(
        &mut recorder,
        "nl2code",
        &code.domains,
        code.tasks.iter().map(|t| (t.domain, t.question.clone())),
    );

    let vis = nvbench_like(config.seed, config.tasks_per_workload);
    run_tasks(
        &mut recorder,
        "nl2vis",
        &vis.domains,
        vis.tasks.iter().map(|t| (t.domain, t.question.clone())),
    );

    let insight = dabench_like(config.seed, config.tasks_per_workload);
    run_tasks(
        &mut recorder,
        "insight",
        &insight.domains,
        insight.tasks.iter().map(|t| (t.domain, t.question.clone())),
    );

    recorder.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_run_produces_one_record_per_task() {
        let config = FleetConfig {
            seed: 7,
            tasks_per_workload: 1,
        };
        let report = run_fleet(&config);
        assert_eq!(report.runs, 4);
        assert_eq!(report.passed + report.failed, 4);
        for family in ["nl2sql", "nl2code", "nl2vis", "insight"] {
            assert!(
                report.workloads.contains_key(family),
                "missing {family} in {:?}",
                report.workloads.keys().collect::<Vec<_>>()
            );
        }
        assert!(report.tokens.total > 0);
        assert!(report.llm.calls > 0);
        assert!(report.stage("execute").is_some());
        // The report round-trips through its JSON wire format.
        let parsed = FleetReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }
}
