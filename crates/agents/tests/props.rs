//! Property-based tests for the agents crate: buffer algebra and sandbox
//! totality.

use datalab_agents::{run_dscript, Content, InformationUnit, SharedBuffer};
use datalab_frame::{DataFrame, DataType, Value};
use datalab_sql::Database;
use proptest::prelude::*;

fn unit(role: &str, action: &str, source: &str, desc: &str) -> InformationUnit {
    InformationUnit {
        data_source: source.into(),
        role: role.into(),
        action: action.into(),
        description: desc.into(),
        content: Content::Text("x".into()),
        timestamp: 0,
    }
}

fn db() -> Database {
    let mut db = Database::new();
    db.insert(
        "t",
        DataFrame::from_columns(vec![
            ("k", DataType::Str, vec!["a".into(), "b".into()]),
            ("v", DataType::Int, vec![Value::Int(1), Value::Int(2)]),
        ])
        .expect("valid"),
    );
    db
}

proptest! {
    #[test]
    fn buffer_len_bounded_by_deposits(
        entries in prop::collection::vec(("[ab]{1}", "[xy]{1}", "[st]{1}", "[pq]{0,2}"), 0..40)
    ) {
        let buf = SharedBuffer::with_capacity(2);
        let n = entries.len();
        let mut last_ts = 0;
        for (r, a, s, d) in entries {
            let ts = buf.deposit(unit(&r, &a, &s, &d));
            prop_assert!(ts > last_ts, "timestamps strictly increase");
            last_ts = ts;
        }
        let stats = buf.stats();
        prop_assert!(stats.len <= n);
        prop_assert_eq!(stats.len + stats.evicted as usize, n);
        prop_assert!(stats.capacity >= stats.len);
    }

    #[test]
    fn buffer_by_roles_partitions_all(
        entries in prop::collection::vec(("[abc]{1}", "[u-z]{1,3}"), 0..30)
    ) {
        let buf = SharedBuffer::default();
        for (r, a) in &entries {
            buf.deposit(unit(r, a, "s", a));
        }
        let total = buf.all().len();
        let parts: usize = ["a", "b", "c"]
            .iter()
            .map(|r| buf.by_roles(&[r.to_string()]).len())
            .sum();
        prop_assert_eq!(parts, total);
    }

    #[test]
    fn sandbox_never_panics(program in ".{0,200}") {
        let _ = run_dscript(&program, &db());
    }

    #[test]
    fn sandbox_filter_monotone(n in -5i64..5) {
        let d = db();
        let all = run_dscript("load t", &d).expect("runs");
        let filtered = run_dscript(&format!("load t\nfilter v > {n}"), &d).expect("runs");
        prop_assert!(filtered.n_rows() <= all.n_rows());
    }
}
