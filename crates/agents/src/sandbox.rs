//! The dscript sandbox — DataLab's executable environment for
//! code-generation agents (the Python-sandbox substitution; DESIGN.md).
//!
//! dscript is a line-oriented pipeline language over tables:
//!
//! ```text
//! load sales
//! filter amount > 100
//! filter region == 'east'
//! dropna amount
//! dedup
//! derive profit = amount - cost
//! rename profit net_profit
//! groupby region: sum(net_profit) as sum_profit, count(*) as n
//! sort sum_profit desc
//! limit 5
//! ```
//!
//! Programs are checked strictly and executed by compilation onto the SQL
//! engine (each step wraps the previous one as a derived table), so
//! results are real and comparable against gold outputs.

use datalab_frame::DataFrame;
use datalab_sql::{run_sql, Database};
use std::fmt;

/// Sandbox failures: the split matters because agents retry parse errors
/// with feedback, while missing tables are terminal.
#[derive(Debug, Clone, PartialEq)]
pub enum SandboxError {
    /// The program does not conform to the dscript grammar.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The program parsed but failed to execute.
    Exec(String),
}

impl fmt::Display for SandboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SandboxError::Parse { line, message } => {
                write!(f, "dscript parse error at line {line}: {message}")
            }
            SandboxError::Exec(m) => write!(f, "dscript execution error: {m}"),
        }
    }
}

impl std::error::Error for SandboxError {}

/// A parsed pipeline step.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    Load(String),
    Filter(String),
    Derive {
        name: String,
        expr: String,
    },
    Select(Vec<String>),
    GroupBy {
        dims: Vec<String>,
        aggs: Vec<(String, String, String)>,
    }, // (func, col, alias)
    Sort {
        key: String,
        desc: bool,
    },
    Limit(usize),
    /// Drop rows with nulls in the named columns (all columns if empty).
    DropNa(Vec<String>),
    /// Remove duplicate rows.
    Dedup,
    /// Rename a column.
    Rename {
        from: String,
        to: String,
    },
}

const AGGS: &[&str] = &["sum", "avg", "count", "count_distinct", "min", "max"];

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses a dscript program.
fn parse(program: &str) -> Result<Vec<Step>, SandboxError> {
    let mut steps = Vec::new();
    for (i, raw) in program.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| SandboxError::Parse {
            line: lineno,
            message: message.into(),
        };
        let (op, rest) = line.split_once(' ').unwrap_or((line, ""));
        match op {
            "load" => {
                let t = rest.trim();
                if !ident_ok(t) {
                    return Err(err("load expects a table name"));
                }
                steps.push(Step::Load(t.to_string()));
            }
            "filter" => {
                let cond = parse_filter(rest.trim()).ok_or_else(|| err("bad filter condition"))?;
                steps.push(Step::Filter(cond));
            }
            "derive" => {
                let (name, expr) = rest
                    .split_once('=')
                    .ok_or_else(|| err("derive expects name = expr"))?;
                let name = name.trim();
                let expr = expr.trim();
                if !ident_ok(name) || expr.is_empty() {
                    return Err(err("derive expects name = expr"));
                }
                steps.push(Step::Derive {
                    name: name.to_string(),
                    expr: expr.to_string(),
                });
            }
            "select" => {
                let cols: Vec<String> = rest.split(',').map(|c| c.trim().to_string()).collect();
                if cols.is_empty() || cols.iter().any(|c| !ident_ok(c)) {
                    return Err(err("select expects a column list"));
                }
                steps.push(Step::Select(cols));
            }
            "groupby" => {
                let (dims_part, aggs_part) = rest
                    .split_once(':')
                    .ok_or_else(|| err("groupby expects dims: aggs"))?;
                let dims: Vec<String> = dims_part
                    .split(',')
                    .map(|d| d.trim().to_string())
                    .filter(|d| !d.is_empty())
                    .collect();
                if dims.iter().any(|d| !ident_ok(d)) {
                    return Err(err("bad dimension name"));
                }
                let mut aggs = Vec::new();
                for part in aggs_part.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let open = part
                        .find('(')
                        .ok_or_else(|| err("aggregate needs func(col)"))?;
                    let close = part
                        .find(')')
                        .ok_or_else(|| err("aggregate needs func(col)"))?;
                    if close < open {
                        return Err(err("aggregate needs func(col)"));
                    }
                    let func = part[..open].trim().to_lowercase();
                    if !AGGS.contains(&func.as_str()) {
                        return Err(err(&format!("unknown aggregate '{func}'")));
                    }
                    let col = part[open + 1..close].trim().to_string();
                    if col != "*" && !ident_ok(&col) {
                        return Err(err("bad aggregate column"));
                    }
                    let alias = match part[close + 1..].trim().strip_prefix("as ") {
                        Some(a) if ident_ok(a.trim()) => a.trim().to_string(),
                        Some(_) => return Err(err("bad alias")),
                        None => format!("{}_{}", func, col.replace('*', "all")),
                    };
                    aggs.push((func, col, alias));
                }
                if aggs.is_empty() {
                    return Err(err("groupby needs at least one aggregate"));
                }
                steps.push(Step::GroupBy { dims, aggs });
            }
            "sort" => {
                let mut parts = rest.split_whitespace();
                let key = parts.next().unwrap_or("").to_string();
                if !ident_ok(&key) {
                    return Err(err("sort expects a column"));
                }
                let desc = match parts.next() {
                    None => false,
                    Some("desc") => true,
                    Some("asc") => false,
                    Some(other) => return Err(err(&format!("unknown sort direction '{other}'"))),
                };
                steps.push(Step::Sort { key, desc });
            }
            "limit" | "head" => {
                let n = rest
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| err("limit expects a non-negative integer"))?;
                steps.push(Step::Limit(n));
            }
            "dropna" => {
                let cols: Vec<String> = rest
                    .split(',')
                    .map(|c| c.trim().to_string())
                    .filter(|c| !c.is_empty())
                    .collect();
                if cols.iter().any(|c| !ident_ok(c)) {
                    return Err(err("dropna expects column names"));
                }
                steps.push(Step::DropNa(cols));
            }
            "dedup" | "distinct" => {
                if !rest.trim().is_empty() {
                    return Err(err("dedup takes no arguments"));
                }
                steps.push(Step::Dedup);
            }
            "rename" => {
                let mut parts = rest.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some(from), Some(to), None) if ident_ok(from) && ident_ok(to) => {
                        steps.push(Step::Rename {
                            from: from.to_string(),
                            to: to.to_string(),
                        });
                    }
                    _ => return Err(err("rename expects: rename <from> <to>")),
                }
            }
            other => return Err(err(&format!("unknown operation '{other}'"))),
        }
    }
    match steps.first() {
        Some(Step::Load(_)) => Ok(steps),
        _ => Err(SandboxError::Parse {
            line: 1,
            message: "program must start with load".into(),
        }),
    }
}

fn parse_filter(cond: &str) -> Option<String> {
    // col between 'a' 'b'
    if let Some((col, rest)) = cond.split_once(" between ") {
        let col = col.trim();
        if !ident_ok(col) {
            return None;
        }
        // Operands: quoted strings or bare numbers.
        let vals: Vec<String> = if rest.contains('\'') {
            rest.trim()
                .split('\'')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect()
        } else {
            rest.split_whitespace().map(String::from).collect()
        };
        if vals.len() != 2 {
            return None;
        }
        let render = |v: &str| {
            if v.parse::<f64>().is_ok() {
                v.to_string()
            } else {
                format!("'{v}'")
            }
        };
        return Some(format!(
            "{col} BETWEEN {} AND {}",
            render(&vals[0]),
            render(&vals[1])
        ));
    }
    for op in ["==", "!=", ">=", "<=", ">", "<"] {
        if let Some((col, val)) = cond.split_once(op) {
            let col = col.trim();
            let val = val.trim();
            if !ident_ok(col) || val.is_empty() {
                continue;
            }
            let sql_op = match op {
                "==" => "=",
                "!=" => "<>",
                o => o,
            };
            let quoted = val.starts_with('\'') && val.ends_with('\'') && val.len() >= 2;
            if !quoted && val.parse::<f64>().is_err() {
                return None;
            }
            let sql_val = val.to_string();
            return Some(format!("{col} {sql_op} {sql_val}"));
        }
    }
    None
}

/// Executes a dscript program against a database, returning the resulting
/// frame. Each step materialises; relational steps compile onto the SQL
/// engine, data-preparation steps run directly on the frame.
pub fn run_dscript(program: &str, db: &Database) -> Result<DataFrame, SandboxError> {
    let steps = parse(program)?;
    let exec_err = |e: &dyn std::fmt::Display| SandboxError::Exec(e.to_string());
    let mut current: Option<DataFrame> = None;
    for step in steps {
        let next = match step {
            Step::Load(t) => db.get(&t).map_err(|e| exec_err(&e))?.clone(),
            other => {
                let frame = current
                    .ok_or_else(|| SandboxError::Exec("pipeline step before load".into()))?;
                apply_step(other, frame).map_err(SandboxError::Exec)?
            }
        };
        current = Some(next);
    }
    current.ok_or_else(|| SandboxError::Exec("empty pipeline".into()))
}

/// Runs one relational step by wrapping the working frame as `__cur` and
/// executing single-step SQL, or applies a frame-level preparation op.
fn apply_step(step: Step, frame: DataFrame) -> Result<DataFrame, String> {
    let one_step_sql = |frame: DataFrame, sql: String| -> Result<DataFrame, String> {
        let mut tmp = Database::new();
        tmp.insert("__cur", frame);
        run_sql(&sql, &tmp).map_err(|e| e.to_string())
    };
    match step {
        Step::Load(_) => unreachable!("handled by caller"),
        Step::Filter(cond) => one_step_sql(frame, format!("SELECT * FROM __cur WHERE {cond}")),
        Step::Derive { name, expr } => {
            one_step_sql(frame, format!("SELECT *, {expr} AS {name} FROM __cur"))
        }
        Step::Select(cols) => one_step_sql(frame, format!("SELECT {} FROM __cur", cols.join(", "))),
        Step::GroupBy { dims, aggs } => {
            let mut items: Vec<String> = dims.clone();
            for (func, col, alias) in aggs {
                let rendered = match func.as_str() {
                    "count_distinct" => format!("COUNT(DISTINCT {col}) AS {alias}"),
                    "count" if col == "*" => format!("COUNT(*) AS {alias}"),
                    f => format!("{}({col}) AS {alias}", f.to_uppercase()),
                };
                items.push(rendered);
            }
            let mut q = format!("SELECT {} FROM __cur", items.join(", "));
            if !dims.is_empty() {
                q.push_str(&format!(" GROUP BY {}", dims.join(", ")));
            }
            one_step_sql(frame, q)
        }
        Step::Sort { key, desc } => one_step_sql(
            frame,
            format!(
                "SELECT * FROM __cur ORDER BY {key}{}",
                if desc { " DESC" } else { "" }
            ),
        ),
        Step::Limit(n) => Ok(frame.limit(n)),
        Step::DropNa(cols) => {
            let targets: Vec<usize> = if cols.is_empty() {
                (0..frame.n_cols()).collect()
            } else {
                cols.iter()
                    .map(|c| frame.schema().require(c).map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?
            };
            Ok(frame.filter(|i| targets.iter().all(|&c| !frame.column_at(c)[i].is_null())))
        }
        Step::Dedup => Ok(frame.distinct()),
        Step::Rename { from, to } => frame.rename(&from, &to).map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "sales",
            DataFrame::from_columns(vec![
                (
                    "region",
                    DataType::Str,
                    vec!["east".into(), "west".into(), "east".into()],
                ),
                (
                    "amount",
                    DataType::Int,
                    vec![10.into(), 20.into(), 30.into()],
                ),
                ("cost", DataType::Int, vec![5.into(), 8.into(), 9.into()]),
            ])
            .unwrap(),
        );
        db
    }

    #[test]
    fn full_pipeline() {
        let program = "load sales\nfilter amount > 5\nderive profit = amount - cost\n\
                       groupby region: sum(profit) as sum_profit, count(*) as n\n\
                       sort sum_profit desc\nlimit 1";
        let out = run_dscript(program, &db()).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.column("region").unwrap()[0], Value::Str("east".into()));
        assert_eq!(out.column("sum_profit").unwrap()[0], Value::Int(26));
        assert_eq!(out.column("n").unwrap()[0], Value::Int(2));
    }

    #[test]
    fn string_and_between_filters() {
        let out = run_dscript("load sales\nfilter region == 'east'", &db()).unwrap();
        assert_eq!(out.n_rows(), 2);
        let out2 = run_dscript("load sales\nfilter amount between '15' '25'", &db()).unwrap();
        assert_eq!(out2.n_rows(), 1);
    }

    #[test]
    fn global_aggregate_without_dims() {
        let out = run_dscript("load sales\ngroupby : avg(amount) as m", &db()).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.column("m").unwrap()[0], Value::Float(20.0));
    }

    #[test]
    fn select_projects() {
        let out = run_dscript("load sales\nselect region, amount", &db()).unwrap();
        assert_eq!(out.schema().names(), vec!["region", "amount"]);
    }

    #[test]
    fn parse_errors_are_line_numbered() {
        let e = run_dscript("load sales\ngroupby : !!", &db()).unwrap_err();
        assert!(matches!(e, SandboxError::Parse { line: 2, .. }), "{e}");
        let e2 = run_dscript("filter x > 1", &db()).unwrap_err();
        assert!(matches!(e2, SandboxError::Parse { line: 1, .. }));
        let e3 = run_dscript("load sales\nexplode everything", &db()).unwrap_err();
        assert!(e3.to_string().contains("unknown operation"));
    }

    #[test]
    fn exec_errors_for_missing_things() {
        assert!(matches!(
            run_dscript("load nope", &db()),
            Err(SandboxError::Exec(_))
        ));
        assert!(matches!(
            run_dscript("load sales\nfilter nope > 1", &db()),
            Err(SandboxError::Exec(_))
        ));
    }

    #[test]
    fn data_prep_ops() {
        let mut db = Database::new();
        db.insert(
            "m",
            DataFrame::from_columns(vec![
                (
                    "a",
                    DataType::Int,
                    vec![1.into(), Value::Null, 1.into(), 2.into()],
                ),
                (
                    "b",
                    DataType::Str,
                    vec!["x".into(), "y".into(), "x".into(), Value::Null],
                ),
            ])
            .unwrap(),
        );
        let out = run_dscript(
            "load m
dropna
dedup
rename a first_col",
            &db,
        )
        .unwrap();
        assert_eq!(out.n_rows(), 1); // (1, x) after dropna+dedup
        assert_eq!(out.schema().names(), vec!["first_col", "b"]);
        // Column-scoped dropna.
        let out2 = run_dscript(
            "load m
dropna a",
            &db,
        )
        .unwrap();
        assert_eq!(out2.n_rows(), 3);
        // head is an alias for limit.
        let out3 = run_dscript(
            "load m
head 2",
            &db,
        )
        .unwrap();
        assert_eq!(out3.n_rows(), 2);
        // Errors.
        assert!(run_dscript(
            "load m
rename nope x",
            &db
        )
        .is_err());
        assert!(run_dscript(
            "load m
dedup everything",
            &db
        )
        .is_err());
        assert!(run_dscript(
            "load m
dropna 9bad",
            &db
        )
        .is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let out = run_dscript("# pipeline\nload sales\n\n# the end", &db()).unwrap();
        assert_eq!(out.n_rows(), 3);
    }
}
