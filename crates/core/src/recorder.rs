//! Durable per-query run records and fleet-level aggregation.
//!
//! [`QuerySummary`](datalab_telemetry::QuerySummary) observes one query;
//! the paper's system claims (Tables 1-4) are aggregates over hundreds.
//! This module keeps every query's outcome as a [`RunRecord`] and folds a
//! session's records into a [`FleetReport`]: pass/fail counts, token
//! attribution totals, per-stage and per-agent latency percentiles, and
//! an error taxonomy keyed by flight-recorder event kind. Reports
//! serialize to JSON so runs can be archived, diffed ([`diff_reports`]),
//! and gated in CI (`obsdiff`).

use datalab_telemetry::{
    folded_stacks, Event, MetricsRegistry, ProfileWeight, QuerySummary, SpanNode,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Upper-inclusive microsecond bucket bounds for latency percentile
/// readouts: 50µs through one minute.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 60_000_000,
];

/// Transport-resilience counters for one query (or, summed, for a whole
/// fleet run): how hard the resilient LLM transport had to work and
/// whether the answer was served by a rule-based degradation path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Injected/observed transport faults (`llm_fault` events).
    pub faults: u64,
    /// Retries the resilient transport attempted (`transport_retry`).
    pub transport_retries: u64,
    /// Circuit-breaker trips, closed/half-open → open (`breaker_trip`).
    pub breaker_trips: u64,
    /// Queries answered via a rule-based degradation path (`degraded`).
    pub degraded: u64,
}

impl ResilienceStats {
    /// True when no fault, retry, trip, or degradation was observed.
    pub fn is_zero(&self) -> bool {
        *self == ResilienceStats::default()
    }
}

/// Everything kept about one completed query.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Workload label (`nl2sql`, `nl2vis`, … or `adhoc` for direct
    /// [`DataLab::query`](crate::DataLab::query) calls).
    pub workload: String,
    /// The natural-language question as asked.
    pub question: String,
    /// Whether every subtask completed.
    pub success: bool,
    /// Wall-clock duration of the query's root span, microseconds.
    pub duration_us: u64,
    /// The query's telemetry summary (span tree + token attribution).
    pub summary: QuerySummary,
    /// Error-taxonomy counts observed during this query, keyed by
    /// [`EventKind::as_str`](datalab_telemetry::EventKind::as_str).
    pub error_kinds: BTreeMap<String, u64>,
    /// Flight record: the events leading up to the failure (empty for
    /// successful queries).
    pub flight_record: Vec<Event>,
    /// Transport-resilience counters observed during this query.
    pub resilience: ResilienceStats,
}

/// Accumulates [`RunRecord`]s across a session.
#[derive(Debug, Clone, Default)]
pub struct RunRecorder {
    records: Vec<RunRecord>,
}

impl RunRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        RunRecorder::default()
    }

    /// Appends one run record.
    pub fn push(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// Appends records collected elsewhere (e.g. per-domain sessions in a
    /// workload sweep).
    pub fn absorb(&mut self, records: impl IntoIterator<Item = RunRecord>) {
        self.records.extend(records);
    }

    /// All records, in completion order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Consumes the recorder, yielding its records.
    pub fn into_records(self) -> Vec<RunRecord> {
        self.records
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Folds every record into a [`FleetReport`].
    pub fn report(&self) -> FleetReport {
        FleetReport::from_records(&self.records)
    }
}

/// Latency percentile readout for one population of spans.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Observations.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Largest observation, microseconds.
    pub max_us: u64,
}

impl LatencyStats {
    fn from_durations(durations: &[u64]) -> LatencyStats {
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("lat", LATENCY_BUCKETS_US);
        for d in durations {
            m.observe("lat", *d);
        }
        let s = m.histogram("lat").expect("registered above");
        LatencyStats {
            count: s.count,
            p50_us: s.p50(),
            p90_us: s.p90(),
            p99_us: s.p99(),
            max_us: s.max,
        }
    }
}

/// Aggregate statistics for one pipeline stage (or one agent role).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name (e.g. `execute`) or agent role (e.g. `sql_agent`).
    pub name: String,
    /// Spans observed across all runs.
    pub spans: u64,
    /// Model calls attributed to this stage/agent.
    pub llm_calls: u64,
    /// Tokens (prompt + completion) attributed to this stage/agent.
    pub tokens: u64,
    /// Latency percentiles over the observed spans.
    pub latency: LatencyStats,
}

/// Session-level token totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenTotals {
    /// Prompt-side tokens.
    pub prompt: u64,
    /// Completion-side tokens.
    pub completion: u64,
    /// Prompt plus completion.
    pub total: u64,
}

/// Session-level model-call totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlmTotals {
    /// Number of model calls.
    pub calls: u64,
}

/// Per-workload pass/fail and token rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Queries run under this workload label.
    pub runs: u64,
    /// Fully-successful queries.
    pub passed: u64,
    /// Queries with at least one failed subtask.
    pub failed: u64,
    /// Tokens attributed to this workload's queries.
    pub tokens: u64,
}

/// Allocator totals over a fleet run, aggregated from the root span of
/// every recorded query (spans carry alloc deltas when the producing
/// binary installs the counting allocator — see
/// [`datalab_telemetry::CountingAlloc`]). All-zero when it did not, and
/// for reports predating the field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocTotals {
    /// Allocations counted across every query's root span.
    pub allocs: u64,
    /// Bytes allocated across every query's root span.
    pub bytes: u64,
    /// `allocs / runs` — the per-query allocation count `obsdiff` gates.
    pub count_per_query: u64,
    /// `bytes / runs` — the per-query byte count `obsdiff` gates.
    pub bytes_per_query: u64,
}

impl AllocTotals {
    /// True when no allocation was attributed (counting allocator absent
    /// or no runs recorded).
    pub fn is_zero(&self) -> bool {
        *self == AllocTotals::default()
    }
}

/// Cross-run aggregation of a session's [`RunRecord`]s: the durable,
/// diffable unit the CI regression gate (`obsdiff`) consumes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Total queries recorded.
    pub runs: u64,
    /// Fully-successful queries.
    pub passed: u64,
    /// Queries with at least one failed subtask.
    pub failed: u64,
    /// Token totals over every recorded query.
    pub tokens: TokenTotals,
    /// Model-call totals over every recorded query.
    pub llm: LlmTotals,
    /// Whole-query latency percentiles.
    pub latency: LatencyStats,
    /// Per-stage statistics, name-sorted.
    pub stages: Vec<StageStats>,
    /// Per-agent statistics, role-sorted.
    pub agents: Vec<StageStats>,
    /// Error taxonomy: flight-recorder error-event kind → count.
    pub errors: BTreeMap<String, u64>,
    /// Per-workload rollups.
    pub workloads: BTreeMap<String, WorkloadStats>,
    /// Wall-clock duration of the whole fleet run, microseconds. Machine-
    /// dependent, so excluded from both the obsdiff regression gate and
    /// [`FleetReport::comparable`]. Zero when the producer did not time
    /// the run (reports predating this field parse as zero).
    #[serde(default)]
    pub wall_clock_us: u64,
    /// Worker threads the fleet executor used (1 = serial). Zero when
    /// unknown (reports predating this field).
    #[serde(default)]
    pub workers: u64,
    /// Transport-resilience totals summed over every recorded query.
    /// Deterministic for a fixed chaos seed, so kept by
    /// [`FleetReport::comparable`]; all-zero when no chaos was injected
    /// (and for reports predating this field). Never gated by
    /// [`diff_reports`].
    #[serde(default)]
    pub resilience: ResilienceStats,
    /// Allocator totals over every recorded query. Machine- and
    /// build-dependent (and zero without the counting allocator), so
    /// stripped by [`FleetReport::comparable`]; the per-query figures ARE
    /// gated by [`diff_reports`] — allocator churn regresses CI exactly
    /// like tokens and p99s do.
    #[serde(default)]
    pub alloc: AllocTotals,
}

fn walk_agent_spans(node: &SpanNode, out: &mut Vec<(String, u64)>) {
    if let Some(role) = node.name.strip_prefix("agent:") {
        out.push((role.to_string(), node.dur_us));
    }
    for c in &node.children {
        walk_agent_spans(c, out);
    }
}

impl FleetReport {
    /// Builds the report from a slice of run records.
    pub fn from_records(records: &[RunRecord]) -> FleetReport {
        let mut report = FleetReport {
            runs: records.len() as u64,
            ..FleetReport::default()
        };
        let mut query_durations = Vec::new();
        let mut stage_durations: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut agent_durations: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut stage_usage: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // (calls, tokens)
        let mut agent_usage: BTreeMap<String, (u64, u64)> = BTreeMap::new();

        for r in records {
            if r.success {
                report.passed += 1;
            } else {
                report.failed += 1;
            }
            query_durations.push(r.duration_us);

            let w = report.workloads.entry(r.workload.clone()).or_default();
            w.runs += 1;
            if r.success {
                w.passed += 1;
            } else {
                w.failed += 1;
            }
            w.tokens += r.summary.total.total();

            report.tokens.prompt += r.summary.total.prompt_tokens;
            report.tokens.completion += r.summary.total.completion_tokens;
            report.llm.calls += r.summary.total.calls;

            for a in &r.summary.attribution {
                let s = stage_usage.entry(a.stage.clone()).or_default();
                s.0 += a.usage.calls;
                s.1 += a.usage.total();
                if a.agent != "-" {
                    let g = agent_usage.entry(a.agent.clone()).or_default();
                    g.0 += a.usage.calls;
                    g.1 += a.usage.total();
                }
            }

            for root in &r.summary.spans {
                let stage_spans: Vec<&SpanNode> = if root.name == "query" {
                    root.children.iter().collect()
                } else {
                    vec![root]
                };
                for s in stage_spans {
                    if !s.name.starts_with("agent:") {
                        stage_durations
                            .entry(s.name.clone())
                            .or_default()
                            .push(s.dur_us);
                    }
                }
                let mut agents = Vec::new();
                walk_agent_spans(root, &mut agents);
                for (role, dur) in agents {
                    agent_durations.entry(role).or_default().push(dur);
                }
            }

            for (kind, n) in &r.error_kinds {
                *report.errors.entry(kind.clone()).or_insert(0) += n;
            }

            report.resilience.faults += r.resilience.faults;
            report.resilience.transport_retries += r.resilience.transport_retries;
            report.resilience.breaker_trips += r.resilience.breaker_trips;
            report.resilience.degraded += r.resilience.degraded;

            // Root spans carry inclusive alloc deltas for the whole
            // query, so summing roots (not the subtree) avoids double
            // counting nested spans.
            for root in &r.summary.spans {
                report.alloc.allocs += root.allocs;
                report.alloc.bytes += root.alloc_bytes;
            }
        }

        report.alloc.count_per_query = report.alloc.allocs.checked_div(report.runs).unwrap_or(0);
        report.alloc.bytes_per_query = report.alloc.bytes.checked_div(report.runs).unwrap_or(0);
        report.tokens.total = report.tokens.prompt + report.tokens.completion;
        report.latency = LatencyStats::from_durations(&query_durations);
        report.stages = collect_stats(&stage_durations, &stage_usage);
        report.agents = collect_stats(&agent_durations, &agent_usage);
        report
    }

    /// The report with every machine-dependent field normalised away:
    /// wall clock and worker count zeroed, and all latency percentiles
    /// (which measure wall time) zeroed while their observation *counts*
    /// are kept. Two runs of the same deterministic workload — serial or
    /// parallel, loaded or idle machine — yield equal `comparable()`
    /// views, which is the equality the fleet-determinism tests assert.
    pub fn comparable(&self) -> FleetReport {
        fn strip(l: &LatencyStats) -> LatencyStats {
            LatencyStats {
                count: l.count,
                ..LatencyStats::default()
            }
        }
        let mut r = self.clone();
        r.wall_clock_us = 0;
        r.workers = 0;
        r.latency = strip(&r.latency);
        for s in r.stages.iter_mut().chain(r.agents.iter_mut()) {
            s.latency = strip(&s.latency);
        }
        // Allocation counts depend on the build, the machine, and
        // whether the producing binary installed the counting allocator
        // — none of which a determinism check should see.
        r.alloc = AllocTotals::default();
        r
    }

    /// Statistics for the named stage, when it was observed.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Statistics for the named agent role, when it was observed.
    pub fn agent(&self, role: &str) -> Option<&StageStats> {
        self.agents.iter().find(|s| s.name == role)
    }

    /// Serialises the report as JSON (the `obsdiff` wire format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FleetReport serializes")
    }

    /// Parses a report serialized by [`FleetReport::to_json`].
    pub fn from_json(json: &str) -> Result<FleetReport, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Human-readable text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet report: {} runs ({} passed, {} failed)\n\
             tokens: {} total ({} prompt + {} completion), {} llm calls\n\
             query latency: p50={:.1}ms p90={:.1}ms p99={:.1}ms max={:.1}ms\n",
            self.runs,
            self.passed,
            self.failed,
            self.tokens.total,
            self.tokens.prompt,
            self.tokens.completion,
            self.llm.calls,
            self.latency.p50_us as f64 / 1000.0,
            self.latency.p90_us as f64 / 1000.0,
            self.latency.p99_us as f64 / 1000.0,
            self.latency.max_us as f64 / 1000.0,
        );
        if self.workers > 0 {
            out.push_str(&format!(
                "executor: {} worker{}, wall clock {:.1}ms\n",
                self.workers,
                if self.workers == 1 { "" } else { "s" },
                self.wall_clock_us as f64 / 1000.0,
            ));
        }
        if !self.resilience.is_zero() {
            out.push_str(&format!(
                "resilience: {} faults, {} retries, {} breaker trips, {} degraded\n",
                self.resilience.faults,
                self.resilience.transport_retries,
                self.resilience.breaker_trips,
                self.resilience.degraded,
            ));
        }
        if !self.alloc.is_zero() {
            out.push_str(&format!(
                "alloc: {} allocations ({} bytes); per query: {} allocations, {} bytes\n",
                self.alloc.allocs,
                self.alloc.bytes,
                self.alloc.count_per_query,
                self.alloc.bytes_per_query,
            ));
        }
        let table = |out: &mut String, title: &str, rows: &[StageStats]| {
            if rows.is_empty() {
                return;
            }
            out.push_str(&format!(
                "{title:<14} {:>6} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                "spans", "llm.calls", "tokens", "p50(ms)", "p90(ms)", "p99(ms)"
            ));
            for s in rows {
                out.push_str(&format!(
                    "  {:<12} {:>6} {:>10} {:>9} {:>9.1} {:>9.1} {:>9.1}\n",
                    s.name,
                    s.spans,
                    s.llm_calls,
                    s.tokens,
                    s.latency.p50_us as f64 / 1000.0,
                    s.latency.p90_us as f64 / 1000.0,
                    s.latency.p99_us as f64 / 1000.0,
                ));
            }
        };
        table(&mut out, "stage", &self.stages);
        table(&mut out, "agent", &self.agents);
        if !self.errors.is_empty() {
            out.push_str("errors:\n");
            for (kind, n) in &self.errors {
                out.push_str(&format!("  {kind:<20} {n}\n"));
            }
        }
        if !self.workloads.is_empty() {
            out.push_str("workloads:\n");
            for (name, w) in &self.workloads {
                out.push_str(&format!(
                    "  {name:<12} {} runs, {} passed, {} failed, {} tokens\n",
                    w.runs, w.passed, w.failed, w.tokens
                ));
            }
        }
        out
    }
}

fn collect_stats(
    durations: &BTreeMap<String, Vec<u64>>,
    usage: &BTreeMap<String, (u64, u64)>,
) -> Vec<StageStats> {
    let mut names: Vec<&String> = durations.keys().chain(usage.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let durs = durations.get(name).map(Vec::as_slice).unwrap_or(&[]);
            let (calls, tokens) = usage.get(name).copied().unwrap_or((0, 0));
            StageStats {
                name: name.clone(),
                spans: durs.len() as u64,
                llm_calls: calls,
                tokens,
                latency: LatencyStats::from_durations(durs),
            }
        })
        .collect()
}

/// Aggregates the span trees of every record into one collapsed-stack
/// (folded) profile — the flamegraph of a whole fleet run. Each query
/// contributes its span forest; identical stacks across queries merge,
/// so the output weights are fleet totals. Wall weighting always works;
/// CPU and alloc weightings are non-empty only when the producing binary
/// had a thread CPU clock / the counting allocator.
pub fn folded_profile(records: &[RunRecord], weight: ProfileWeight) -> String {
    let spans: Vec<SpanNode> = records
        .iter()
        .flat_map(|r| r.summary.spans.iter().cloned())
        .collect();
    folded_stacks(&spans, weight)
}

/// One metric that got worse between two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Dotted metric path (`tokens.total`, `llm.calls`,
    /// `stage.execute.p99_us`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Relative change, percent (always > the gate threshold).
    pub change_pct: f64,
}

/// Compares two fleet reports and returns every gated metric that
/// regressed beyond `threshold_pct` percent: `tokens.total`, `llm.calls`,
/// `alloc.bytes_per_query`, `alloc.count_per_query`, and the p99 latency
/// of every stage present in both reports. Metrics with a zero baseline
/// are skipped (nothing to compare against — which also grandfathers
/// reports and baselines written before alloc accounting existed);
/// stages only present in the candidate are not latency-gated but DO
/// trip the token gate through the totals.
pub fn diff_reports(
    baseline: &FleetReport,
    candidate: &FleetReport,
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let mut check = |metric: String, base: f64, cand: f64| {
        if base <= 0.0 {
            return;
        }
        let change_pct = (cand - base) / base * 100.0;
        if change_pct > threshold_pct {
            regressions.push(Regression {
                metric,
                baseline: base,
                candidate: cand,
                change_pct,
            });
        }
    };
    check(
        "tokens.total".into(),
        baseline.tokens.total as f64,
        candidate.tokens.total as f64,
    );
    check(
        "llm.calls".into(),
        baseline.llm.calls as f64,
        candidate.llm.calls as f64,
    );
    check(
        "latency.p99_us".into(),
        baseline.latency.p99_us as f64,
        candidate.latency.p99_us as f64,
    );
    check(
        "alloc.bytes_per_query".into(),
        baseline.alloc.bytes_per_query as f64,
        candidate.alloc.bytes_per_query as f64,
    );
    check(
        "alloc.count_per_query".into(),
        baseline.alloc.count_per_query as f64,
        candidate.alloc.count_per_query as f64,
    );
    for b in &baseline.stages {
        if let Some(c) = candidate.stage(&b.name) {
            check(
                format!("stage.{}.p99_us", b.name),
                b.latency.p99_us as f64,
                c.latency.p99_us as f64,
            );
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_telemetry::{AttributedUsage, TokenUsage};

    fn span(name: &str, start_us: u64, dur_us: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name: name.into(),
            start_us,
            dur_us,
            cpu_us: 0,
            allocs: 0,
            alloc_bytes: 0,
            attrs: vec![],
            children,
        }
    }

    fn record(workload: &str, success: bool, execute_us: u64, tokens: u64) -> RunRecord {
        let summary = QuerySummary {
            spans: vec![span(
                "query",
                0,
                execute_us + 20,
                vec![
                    span("rewrite", 1, 10, vec![]),
                    span(
                        "execute",
                        12,
                        execute_us,
                        vec![span("agent:sql_agent", 13, execute_us - 2, vec![])],
                    ),
                ],
            )],
            attribution: vec![
                AttributedUsage {
                    stage: "rewrite".into(),
                    agent: "-".into(),
                    usage: TokenUsage {
                        prompt_tokens: tokens / 4,
                        completion_tokens: 0,
                        calls: 1,
                    },
                },
                AttributedUsage {
                    stage: "execute".into(),
                    agent: "sql_agent".into(),
                    usage: TokenUsage {
                        prompt_tokens: tokens / 2,
                        completion_tokens: tokens / 4,
                        calls: 2,
                    },
                },
            ],
            total: TokenUsage {
                prompt_tokens: 3 * tokens / 4,
                completion_tokens: tokens / 4,
                calls: 3,
            },
        };
        let mut error_kinds = BTreeMap::new();
        if !success {
            error_kinds.insert("agent_failure".to_string(), 1);
        }
        RunRecord {
            workload: workload.into(),
            question: "q".into(),
            success,
            duration_us: execute_us + 20,
            summary,
            error_kinds,
            flight_record: vec![],
            resilience: ResilienceStats::default(),
        }
    }

    fn sample_report() -> FleetReport {
        let mut rec = RunRecorder::new();
        rec.push(record("nl2sql", true, 1000, 400));
        rec.push(record("nl2sql", true, 2000, 400));
        rec.push(record("nl2vis", false, 8000, 800));
        rec.report()
    }

    #[test]
    fn report_aggregates_counts_tokens_and_taxonomy() {
        let report = sample_report();
        assert_eq!((report.runs, report.passed, report.failed), (3, 2, 1));
        assert_eq!(report.tokens.total, 1600);
        assert_eq!(report.tokens.prompt + report.tokens.completion, 1600);
        assert_eq!(report.llm.calls, 9);
        assert_eq!(report.errors.get("agent_failure"), Some(&1));
        assert_eq!(report.workloads.len(), 2);
        assert_eq!(report.workloads["nl2sql"].runs, 2);
        assert_eq!(report.workloads["nl2sql"].tokens, 800);
        assert_eq!(report.workloads["nl2vis"].failed, 1);

        // Per-stage token totals sum to the grand total.
        let by_stage: u64 = report.stages.iter().map(|s| s.tokens).sum();
        assert_eq!(by_stage, report.tokens.total);

        let execute = report.stage("execute").expect("execute stats");
        assert_eq!(execute.spans, 3);
        assert_eq!(execute.llm_calls, 6);
        let sql = report.agent("sql_agent").expect("sql_agent stats");
        assert_eq!(sql.spans, 3);
        // Latency percentiles are ordered and bounded by the max.
        assert!(execute.latency.p50_us <= execute.latency.p90_us);
        assert!(execute.latency.p90_us <= execute.latency.p99_us);
        assert!(execute.latency.p99_us <= execute.latency.max_us);
        assert_eq!(report.latency.count, 3);
        assert_eq!(report.latency.max_us, 8020);
    }

    #[test]
    fn report_roundtrips_through_json_and_renders() {
        let report = sample_report();
        let json = report.to_json();
        let parsed = FleetReport::from_json(&json).expect("parses");
        assert_eq!(parsed, report);
        assert!(FleetReport::from_json("not json").is_err());
        let text = report.render();
        assert!(
            text.contains("fleet report: 3 runs (2 passed, 1 failed)"),
            "{text}"
        );
        assert!(text.contains("agent_failure"), "{text}");
        assert!(text.contains("nl2sql"), "{text}");
        assert!(text.contains("sql_agent"), "{text}");
    }

    #[test]
    fn comparable_strips_timing_but_keeps_counts() {
        let mut a = sample_report();
        a.wall_clock_us = 123_456;
        a.workers = 4;
        let mut b = sample_report();
        b.wall_clock_us = 9;
        b.workers = 1;
        // Same records, different machines/thread counts: the raw reports
        // differ, the comparable views do not.
        assert_ne!(a, b);
        assert_eq!(a.comparable(), b.comparable());
        let c = a.comparable();
        assert_eq!(c.wall_clock_us, 0);
        assert_eq!(c.workers, 0);
        assert_eq!(c.latency.count, 3);
        assert_eq!(c.latency.p99_us, 0);
        let execute = c.stage("execute").unwrap();
        assert_eq!(execute.latency.count, 3);
        assert_eq!(execute.latency.p99_us, 0);
        // Everything deterministic survives: tokens, calls, taxonomy.
        assert_eq!(c.tokens.total, a.tokens.total);
        assert_eq!(c.llm.calls, a.llm.calls);
        assert_eq!(c.errors, a.errors);
        // A genuinely different run still differs after normalisation.
        let mut other = sample_report();
        other.tokens.total += 1;
        assert_ne!(a.comparable(), other.comparable());
    }

    #[test]
    fn wall_clock_fields_default_when_absent_from_json() {
        // Reports written before the executor fields existed still parse,
        // with both fields defaulting to zero.
        let mut timed = sample_report();
        timed.wall_clock_us = 5_000;
        timed.workers = 2;
        let mut value: serde_json::Value =
            serde_json::from_str(&timed.to_json()).expect("valid json");
        let obj = value.as_object_mut().expect("object");
        obj.remove("wall_clock_us");
        obj.remove("workers");
        let legacy = FleetReport::from_json(&value.to_string()).expect("legacy report parses");
        assert_eq!(legacy.wall_clock_us, 0);
        assert_eq!(legacy.workers, 0);
        assert_eq!(legacy.comparable(), timed.comparable());
        // The full report round-trips and renders its executor line.
        let roundtrip = FleetReport::from_json(&timed.to_json()).expect("parses");
        assert_eq!(roundtrip, timed);
        assert!(timed.render().contains("2 workers"), "{}", timed.render());
    }

    #[test]
    fn resilience_sums_across_records_and_defaults_when_absent() {
        let mut rec = RunRecorder::new();
        let mut chaotic = record("nl2sql", true, 1000, 400);
        chaotic.resilience = ResilienceStats {
            faults: 3,
            transport_retries: 2,
            breaker_trips: 1,
            degraded: 1,
        };
        rec.push(chaotic);
        rec.push(record("nl2sql", true, 2000, 400));
        let report = rec.report();
        assert_eq!(report.resilience.faults, 3);
        assert_eq!(report.resilience.transport_retries, 2);
        assert_eq!(report.resilience.breaker_trips, 1);
        assert_eq!(report.resilience.degraded, 1);
        assert!(!report.resilience.is_zero());
        // Resilience is deterministic, so comparable() keeps it — two runs
        // with different fault injection must not look equal.
        assert_eq!(report.comparable().resilience, report.resilience);
        let calm = sample_report();
        assert!(calm.resilience.is_zero());
        assert_ne!(report.comparable().resilience, calm.comparable().resilience);
        // Render shows the line only when something happened.
        assert!(report.render().contains("resilience: 3 faults"));
        assert!(!calm.render().contains("resilience:"));
        // Reports predating the field parse with zero stats.
        let mut value: serde_json::Value =
            serde_json::from_str(&report.to_json()).expect("valid json");
        value.as_object_mut().expect("object").remove("resilience");
        let legacy = FleetReport::from_json(&value.to_string()).expect("legacy parses");
        assert!(legacy.resilience.is_zero());
        // And the roundtrip preserves the stats.
        let roundtrip = FleetReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(roundtrip.resilience, report.resilience);
        // Resilience never trips the obsdiff gate.
        assert!(diff_reports(&calm, &report, 0.0)
            .iter()
            .all(|r| !r.metric.contains("resilience")));
    }

    /// A record whose root span carries alloc deltas, as produced by a
    /// binary with the counting allocator installed.
    fn record_with_alloc(allocs: u64, bytes: u64) -> RunRecord {
        let mut r = record("nl2sql", true, 1000, 400);
        for root in &mut r.summary.spans {
            root.allocs = allocs;
            root.alloc_bytes = bytes;
        }
        r
    }

    #[test]
    fn alloc_totals_aggregate_from_root_spans() {
        let mut rec = RunRecorder::new();
        rec.push(record_with_alloc(100, 64_000));
        rec.push(record_with_alloc(300, 192_000));
        let report = rec.report();
        assert_eq!(report.alloc.allocs, 400);
        assert_eq!(report.alloc.bytes, 256_000);
        assert_eq!(report.alloc.count_per_query, 200);
        assert_eq!(report.alloc.bytes_per_query, 128_000);
        assert!(report.render().contains("alloc: 400 allocations"));
        // Without the counting allocator nothing is attributed: no alloc
        // line, zero block.
        let calm = sample_report();
        assert!(calm.alloc.is_zero());
        assert!(!calm.render().contains("alloc:"));
        // comparable() strips the block: a profiled and an unprofiled run
        // of the same workload must still compare equal.
        let mut profiled = sample_report();
        profiled.alloc = AllocTotals {
            allocs: 7,
            bytes: 7,
            count_per_query: 2,
            bytes_per_query: 2,
        };
        assert_eq!(profiled.comparable(), calm.comparable());
    }

    #[test]
    fn alloc_fields_roundtrip_and_default_when_absent() {
        let mut rec = RunRecorder::new();
        rec.push(record_with_alloc(100, 64_000));
        let report = rec.report();
        let roundtrip = FleetReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(roundtrip.alloc, report.alloc);
        // Reports predating the block parse with zero totals.
        let mut value: serde_json::Value =
            serde_json::from_str(&report.to_json()).expect("valid json");
        value.as_object_mut().expect("object").remove("alloc");
        let legacy = FleetReport::from_json(&value.to_string()).expect("legacy parses");
        assert!(legacy.alloc.is_zero());
    }

    #[test]
    fn alloc_regressions_trip_the_gate_and_zero_baselines_skip_it() {
        let mut rec = RunRecorder::new();
        rec.push(record_with_alloc(1_000, 1_000_000));
        let base = rec.report();
        // The acceptance scenario: a synthetic +20% on bytes_per_query
        // must fail a 10% gate.
        let mut cand = base.clone();
        cand.alloc.bytes_per_query = base.alloc.bytes_per_query * 12 / 10;
        let regs = diff_reports(&base, &cand, 10.0);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "alloc.bytes_per_query");
        assert!((regs[0].change_pct - 20.0).abs() < 1e-9, "{regs:?}");
        // Count regressions gate independently.
        let mut cand = base.clone();
        cand.alloc.count_per_query *= 2;
        let regs = diff_reports(&base, &cand, 10.0);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "alloc.count_per_query");
        // Improvements and identical reports pass clean.
        let mut better = base.clone();
        better.alloc.bytes_per_query /= 2;
        assert!(diff_reports(&base, &better, 10.0).is_empty());
        assert!(diff_reports(&base, &base, 10.0).is_empty());
        // A zero (pre-profiling) baseline never gates alloc, even when
        // the candidate reports real numbers.
        let legacy = sample_report();
        assert!(diff_reports(&legacy, &base, 10.0).is_empty());
    }

    #[test]
    fn folded_profile_merges_stacks_and_conserves_wall_weight() {
        let records = vec![
            record("nl2sql", true, 1000, 400),
            record("nl2sql", true, 2000, 400),
        ];
        let folded = folded_profile(&records, ProfileWeight::Wall);
        assert!(!folded.is_empty());
        // Identical stacks from the two queries merged into one line
        // each: query, query;rewrite, query;execute, and the agent leaf.
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 4, "{folded}");
        assert!(
            folded.contains("query;execute;agent:sql_agent "),
            "{folded}"
        );
        // Total folded weight equals the sum of the recorded root spans.
        let root_total: u64 = records
            .iter()
            .flat_map(|r| r.summary.spans.iter())
            .map(|s| s.dur_us)
            .sum();
        assert_eq!(datalab_telemetry::folded_total(&folded), root_total);
        // Alloc weighting is empty for unprofiled records, non-empty once
        // spans carry alloc deltas.
        assert!(folded_profile(&records, ProfileWeight::AllocBytes).is_empty());
        let profiled = vec![record_with_alloc(10, 4_096)];
        let alloc = folded_profile(&profiled, ProfileWeight::AllocBytes);
        assert_eq!(alloc, "query 4096\n");
    }

    #[test]
    fn identical_reports_produce_no_regressions() {
        let report = sample_report();
        assert!(diff_reports(&report, &report, 10.0).is_empty());
        // Small wobble under the threshold passes too.
        let mut wobble = report.clone();
        wobble.tokens.total = report.tokens.total + report.tokens.total / 20;
        assert!(diff_reports(&report, &wobble, 10.0).is_empty());
    }

    #[test]
    fn inflated_tokens_and_calls_regress() {
        let base = sample_report();
        let mut cand = base.clone();
        cand.tokens.total *= 2;
        cand.llm.calls *= 3;
        let regs = diff_reports(&base, &cand, 10.0);
        let metrics: Vec<&str> = regs.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"tokens.total"), "{metrics:?}");
        assert!(metrics.contains(&"llm.calls"), "{metrics:?}");
        let t = regs.iter().find(|r| r.metric == "tokens.total").unwrap();
        assert!((t.change_pct - 100.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn stage_p99_regressions_are_gated_per_stage() {
        let base = sample_report();
        let mut cand = base.clone();
        for s in &mut cand.stages {
            if s.name == "execute" {
                s.latency.p99_us *= 5;
            }
        }
        let regs = diff_reports(&base, &cand, 25.0);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "stage.execute.p99_us");
        // A stage present only in the candidate is not latency-gated.
        cand.stages.push(StageStats {
            name: "brand_new".into(),
            ..StageStats::default()
        });
        assert_eq!(diff_reports(&base, &cand, 25.0).len(), 1);
    }

    #[test]
    fn empty_recorder_reports_zeroes() {
        let report = RunRecorder::new().report();
        assert_eq!(report.runs, 0);
        assert_eq!(report.tokens.total, 0);
        assert!(report.stages.is_empty());
        assert!(diff_reports(&report, &report, 0.0).is_empty());
    }
}
