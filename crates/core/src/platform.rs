//! The `DataLab` platform façade.

use datalab_agents::{CommunicationConfig, ProxyAgent, SharedBuffer};
use datalab_frame::{DataFrame, FrameError, Value};
use datalab_knowledge::{
    generate_table_knowledge_traced, incorporate_traced, profile_table, GenerationConfig,
    GenerationReport, IncorporateConfig, IndexTask, JargonEntry, KnowledgeGraph, KnowledgeIndex,
    Lineage, NodeKind, Script, TableKnowledge,
};
use datalab_llm::{
    BreakerConfig, BreakerState, ChaosConfig, ChaosLlm, LanguageModel, ModelProfile, ResilientLlm,
    RetryPolicy, SimLlm,
};
use datalab_notebook::{CellDag, CellKind, Notebook};
use datalab_sql::Database;
use datalab_telemetry::{is_error_kind, Event, EventKind, QuerySummary, RequestContext, Telemetry};
use datalab_viz::RenderedChart;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::recorder::{FleetReport, ResilienceStats, RunRecord, RunRecorder};

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct DataLabConfig {
    /// Foundation-model capability profile.
    pub model: ModelProfile,
    /// Inter-agent communication settings (Table III ablations).
    pub communication: CommunicationConfig,
    /// Knowledge utilization settings (Table II ablations).
    pub incorporate: IncorporateConfig,
    /// Knowledge generation settings (Algorithm 1).
    pub generation: GenerationConfig,
    /// "Today" for temporal query standardisation.
    pub current_date: String,
    /// Whether each query pushes a [`RunRecord`] into the session's
    /// [`RunRecorder`]. Bench fleets keep this on; long-lived serving
    /// sessions turn it off so per-query records cannot accumulate
    /// without bound (the serving layer aggregates into its own metrics
    /// instead).
    pub record_runs: bool,
    /// Fault injection for the model transport. `None` (the default)
    /// leaves the transport a bit-identical passthrough; chaos fleets set
    /// rates here to exercise the resilience machinery.
    pub chaos: Option<ChaosConfig>,
    /// Retry/backoff/deadline policy for the resilient transport.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds for the resilient transport.
    pub breaker: BreakerConfig,
}

impl Default for DataLabConfig {
    fn default() -> Self {
        DataLabConfig {
            model: ModelProfile::gpt4(),
            communication: CommunicationConfig::default(),
            incorporate: IncorporateConfig::default(),
            generation: GenerationConfig::default(),
            current_date: "2026-07-06".to_string(),
            record_runs: true,
            chaos: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// What one `query` call produced.
#[derive(Debug, Clone)]
pub struct DataLabResponse {
    /// Final synthesised answer.
    pub answer: String,
    /// The rewritten (clarified) query.
    pub rewritten_query: String,
    /// The execution plan (agent roles, in order).
    pub plan: Vec<String>,
    /// The last produced data frame, if any.
    pub frame: Option<DataFrame>,
    /// The last rendered chart, if any.
    pub chart: Option<RenderedChart>,
    /// DSL JSON the grounding stage produced (empty if skipped).
    pub dsl_json: String,
    /// Whether every subtask completed.
    pub success: bool,
    /// Notebook cells appended by this query (ids in notebook order).
    pub new_cells: Vec<datalab_notebook::CellId>,
    /// Observability summary for this query: the span tree, per-stage /
    /// per-agent token attribution, and exporters (Chrome trace, JSON,
    /// human-readable rendering).
    pub telemetry: QuerySummary,
    /// Flight record: every event the recorder retained for this query,
    /// attached only when the query failed (empty on success). Render
    /// with [`datalab_telemetry::render_flight_record`].
    pub flight_record: Vec<Event>,
    /// True when at least one pipeline stage was served by a rule-based
    /// degradation path because the model transport was down. The answer
    /// is still structured and safe to display, but was produced without
    /// the model.
    pub degraded: bool,
    /// Transport-resilience counters observed during this query: faults,
    /// retries, breaker trips, degradations.
    pub resilience: ResilienceStats,
}

/// What one applied ingest batch did to a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Rows added as new rows.
    pub appended: usize,
    /// Existing rows replaced via the key column (upsert mode only).
    pub updated: usize,
    /// True when the batch's idempotency key had already been applied:
    /// the call was a retry and nothing changed.
    pub deduplicated: bool,
    /// Notebook cells whose results went stale because they reference
    /// the ingested table (directly or transitively), notebook order.
    pub invalidated_cells: Vec<datalab_notebook::CellId>,
}

/// The unified BI platform.
pub struct DataLab {
    config: DataLabConfig,
    llm: Arc<SimLlm>,
    /// The fault-tolerant model path the agent pipeline calls through:
    /// retries + circuit breaker over the (optionally chaotic) backend.
    transport: ResilientLlm<ChaosLlm<Arc<SimLlm>>>,
    db: Database,
    graph: KnowledgeGraph,
    index: Option<KnowledgeIndex>,
    knowledge: BTreeMap<String, TableKnowledge>,
    notebook: Notebook,
    dag: CellDag,
    history: Vec<String>,
    /// Idempotency keys of every ingest batch applied to this session.
    /// Sorted so exports are deterministic.
    ingest_keys: BTreeSet<String>,
    profile_lines: String,
    session_buffer: SharedBuffer,
    telemetry: Telemetry,
    recorder: RunRecorder,
}

impl DataLab {
    /// Creates an empty platform.
    pub fn new(config: DataLabConfig) -> Self {
        let llm = Arc::new(SimLlm::new(config.model.clone()));
        let telemetry = Telemetry::new();
        // Every model call now lands in the attribution ledger and the
        // metrics registry, whichever layer triggered it.
        llm.attach_telemetry(telemetry.clone());
        // The agent pipeline calls the model through the resilient
        // transport: chaos (disabled unless configured) under bounded
        // retries and a circuit breaker. With chaos off the stack is a
        // bit-identical passthrough over the shared backend.
        let chaos = config
            .chaos
            .clone()
            .unwrap_or_else(|| ChaosConfig::disabled(7));
        let transport = ResilientLlm::new(
            ChaosLlm::new(Arc::clone(&llm), chaos),
            config.retry.clone(),
            config.breaker.clone(),
        );
        transport.attach_telemetry(telemetry.clone());
        let notebook = Notebook::new();
        let dag = CellDag::build(&notebook);
        DataLab {
            config,
            llm,
            transport,
            db: Database::new(),
            graph: KnowledgeGraph::new(),
            index: None,
            knowledge: BTreeMap::new(),
            notebook,
            dag,
            history: Vec::new(),
            ingest_keys: BTreeSet::new(),
            profile_lines: String::new(),
            session_buffer: SharedBuffer::default(),
            telemetry,
            recorder: RunRecorder::new(),
        }
    }

    /// Increments `platform.errors.<kind>` and records a
    /// [`EventKind::PlatformError`] flight-recorder event.
    fn note_platform_error(&self, kind: &str, detail: &str) {
        self.telemetry
            .metrics()
            .incr(&format!("platform.errors.{kind}"), 1);
        self.telemetry
            .record_event(EventKind::PlatformError, detail);
    }

    /// Registers a data table and profiles it (the §IV-C fallback, so
    /// in-the-wild tables are groundable immediately). Accepts an owned
    /// frame or an `Arc<DataFrame>` — fleet runners registering one
    /// source table with many sessions share the allocation instead of
    /// deep-copying the columns per session.
    pub fn register_table(
        &mut self,
        name: &str,
        df: impl Into<Arc<DataFrame>>,
    ) -> Result<(), FrameError> {
        let df = df.into();
        let profiled = profile_table(&self.llm, name, &df)?;
        self.profile_lines.push_str(&profiled.render());
        self.db.insert(name, df);
        Ok(())
    }

    /// Registers a table from CSV text (types inferred), profiling it like
    /// [`DataLab::register_table`].
    pub fn register_csv(&mut self, name: &str, csv_text: &str) -> Result<(), FrameError> {
        let result =
            datalab_frame::csv::from_csv(csv_text).and_then(|df| self.register_table(name, df));
        if let Err(e) = &result {
            self.note_platform_error("csv_register", &format!("register_csv {name}: {e}"));
        }
        result
    }

    /// True when an ingest batch with this idempotency key has already
    /// been applied to the session — a retry that must not re-apply.
    pub fn ingest_seen(&self, idempotency_key: &str) -> bool {
        self.ingest_keys.contains(idempotency_key)
    }

    /// Validates an ingest batch without applying it: the table must
    /// exist, the CSV must parse against its schema, and the key column
    /// (if any) must name one of its columns. The serving layer calls
    /// this *before* committing the batch to the WAL so that a record,
    /// once durable, always applies.
    pub fn validate_ingest(
        &self,
        table: &str,
        csv_text: &str,
        key_column: Option<&str>,
    ) -> Result<(), FrameError> {
        self.parse_ingest(table, csv_text, key_column).map(|_| ())
    }

    /// Parses and checks a batch against the live table, returning the
    /// typed rows and the key column's index.
    fn parse_ingest(
        &self,
        table: &str,
        csv_text: &str,
        key_column: Option<&str>,
    ) -> Result<(DataFrame, Option<usize>), FrameError> {
        let existing = self
            .db
            .get(table)
            .map_err(|_| FrameError::Invalid(format!("unknown table `{table}`")))?;
        let batch = datalab_frame::csv::from_csv_with_schema(csv_text, existing.schema())?;
        if batch.n_rows() == 0 {
            return Err(FrameError::Csv("batch contains no data rows".into()));
        }
        let key_idx = match key_column {
            Some(k) => Some(
                existing
                    .schema()
                    .fields()
                    .iter()
                    .position(|f| f.name.eq_ignore_ascii_case(k))
                    .ok_or_else(|| FrameError::ColumnNotFound(k.to_string()))?,
            ),
            None => None,
        };
        Ok((batch, key_idx))
    }

    /// Applies one ingest batch to a registered table: plain append, or
    /// upsert when `key_column` is given (an existing row whose key
    /// value matches a batch row is replaced in place; unmatched batch
    /// rows append in order; when a batch repeats a key, its last row
    /// wins). The batch is all-or-nothing — validation failures change
    /// nothing — and idempotent: a key in [`DataLab::ingest_seen`]
    /// returns a `deduplicated` outcome without touching the table.
    /// Cells referencing the table (and their descendants) are reported
    /// stale and counted under `dag.invalidated`.
    pub fn ingest_rows(
        &mut self,
        table: &str,
        csv_text: &str,
        key_column: Option<&str>,
        idempotency_key: &str,
    ) -> Result<IngestOutcome, FrameError> {
        if self.ingest_seen(idempotency_key) {
            self.telemetry.metrics().incr("ingest.deduplicated", 1);
            return Ok(IngestOutcome {
                appended: 0,
                updated: 0,
                deduplicated: true,
                invalidated_cells: Vec::new(),
            });
        }
        let parsed = self.parse_ingest(table, csv_text, key_column);
        let (batch, key_idx) = match parsed {
            Ok(v) => v,
            Err(e) => {
                self.note_platform_error("ingest", &format!("ingest {table}: {e}"));
                return Err(e);
            }
        };
        let existing = self
            .db
            .get_shared(table)
            .map_err(|_| FrameError::Invalid(format!("unknown table `{table}`")))?;
        let take_row = |df: &DataFrame, i: usize| -> Vec<Value> {
            (0..df.n_cols())
                .map(|c| df.column_at(c)[i].clone())
                .collect()
        };
        let mut merged = DataFrame::new(existing.schema().clone());
        let (mut appended, mut updated) = (0usize, 0usize);
        match key_idx {
            None => {
                for i in 0..existing.n_rows() {
                    merged.push_row(take_row(&existing, i))?;
                }
                for i in 0..batch.n_rows() {
                    merged.push_row(take_row(&batch, i))?;
                    appended += 1;
                }
            }
            Some(k) => {
                // Keys compare by rendered value, so `1` matches `1`
                // whether the column is Int or Str.
                let mut winner: BTreeMap<String, usize> = BTreeMap::new();
                for i in 0..batch.n_rows() {
                    winner.insert(batch.column_at(k)[i].render(), i);
                }
                let mut consumed: BTreeSet<usize> = BTreeSet::new();
                for i in 0..existing.n_rows() {
                    let key = existing.column_at(k)[i].render();
                    match winner.get(&key) {
                        Some(&bi) => {
                            merged.push_row(take_row(&batch, bi))?;
                            consumed.insert(bi);
                            updated += 1;
                        }
                        None => merged.push_row(take_row(&existing, i))?,
                    }
                }
                for i in 0..batch.n_rows() {
                    let key = batch.column_at(k)[i].render();
                    if winner.get(&key) == Some(&i) && !consumed.contains(&i) {
                        merged.push_row(take_row(&batch, i))?;
                        appended += 1;
                    }
                }
            }
        }
        self.db.insert(table, merged);
        let invalidated_cells = self.dag.invalidated_by(&self.notebook, table);
        let m = self.telemetry.metrics();
        m.incr("ingest.batches", 1);
        m.incr("ingest.rows_appended", appended as u64);
        m.incr("ingest.rows_updated", updated as u64);
        m.incr("dag.invalidated", invalidated_cells.len() as u64);
        self.telemetry.record_event(
            EventKind::IngestBatch,
            format!(
                "{table}: {appended} appended, {updated} updated, {} cells stale",
                invalidated_cells.len()
            ),
        );
        self.ingest_keys.insert(idempotency_key.to_string());
        Ok(IngestOutcome {
            appended,
            updated,
            deduplicated: false,
            invalidated_cells,
        })
    }

    /// The applied ingest idempotency keys, sorted (persistence export).
    pub fn export_ingest_keys(&self) -> Vec<String> {
        self.ingest_keys.iter().cloned().collect()
    }

    /// Restores the applied-key set exported by
    /// [`DataLab::export_ingest_keys`]. Replaying a WAL that holds two
    /// records with the same key (a crash between append and
    /// acknowledgement, then a client retry) applies exactly one.
    pub fn restore_ingest_keys(&mut self, keys: Vec<String>) {
        self.ingest_keys = keys.into_iter().collect();
    }

    /// Serialises the knowledge graph to JSON (for persistence across
    /// sessions; the paper's deployment regenerates knowledge daily and
    /// serves it from storage). Serialisation failures surface as an
    /// error instead of silently exporting an empty graph.
    pub fn export_knowledge(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&self.graph)
    }

    /// Restores a knowledge graph exported by
    /// [`DataLab::export_knowledge`] and rebuilds the retrieval index.
    pub fn import_knowledge(&mut self, json: &str) -> Result<(), serde_json::Error> {
        match serde_json::from_str(json) {
            Ok(graph) => {
                self.graph = graph;
                self.rebuild_index();
                Ok(())
            }
            Err(e) => {
                self.note_platform_error("knowledge_import", &format!("import_knowledge: {e}"));
                Err(e)
            }
        }
    }

    /// Serialises the notebook to JSON.
    pub fn export_notebook(&self) -> String {
        serde_json::to_string(&self.notebook).unwrap_or_else(|_| "{}".to_string())
    }

    /// Restores a notebook exported by [`DataLab::export_notebook`] and
    /// rebuilds its dependency DAG.
    pub fn import_notebook(&mut self, json: &str) -> Result<(), serde_json::Error> {
        match serde_json::from_str(json) {
            Ok(notebook) => {
                self.notebook = notebook;
                self.dag = CellDag::build(&self.notebook);
                Ok(())
            }
            Err(e) => {
                self.note_platform_error("notebook_import", &format!("import_notebook: {e}"));
                Err(e)
            }
        }
    }

    /// Ingests a table's script history and lineage, running Algorithm 1
    /// knowledge generation and refreshing the retrieval index.
    pub fn ingest_scripts(
        &mut self,
        table: &str,
        scripts: &[Script],
        lineage: &Lineage,
    ) -> GenerationReport {
        let schema_line = self.schema_section();
        let (tk, report) = generate_table_knowledge_traced(
            &self.llm,
            table,
            &schema_line,
            scripts,
            lineage,
            &self.knowledge,
            &self.config.generation,
            &self.telemetry,
        );
        self.graph.ingest_table("default", &tk);
        self.knowledge.insert(table.to_lowercase(), tk);
        self.rebuild_index();
        report
    }

    /// Adds a jargon glossary entry.
    pub fn add_jargon(&mut self, term: &str, expansion: &str) {
        self.graph.ingest_jargon(&JargonEntry {
            term: term.into(),
            expansion: expansion.into(),
        });
        self.rebuild_index();
    }

    /// Adds a curated value alias (e.g. `TencentBI` → `prod_class4_name =
    /// 'Tencent BI'`).
    pub fn add_value_alias(&mut self, term: &str, table: &str, column: &str, value: &str) {
        let name = format!("{table}.{column}={value}");
        let v = self.graph.find(NodeKind::Value, &name).unwrap_or_else(|| {
            self.graph
                .ingest_value(table, column, value, "curated value")
        });
        self.graph.add_alias(term, v);
        self.rebuild_index();
    }

    fn rebuild_index(&mut self) {
        self.index = Some(KnowledgeIndex::build(&self.graph, IndexTask::Nl2Dsl));
    }

    /// The schema prompt section for all registered tables.
    pub fn schema_section(&self) -> String {
        let mut s = String::new();
        for name in self.db.table_names() {
            if let Ok(df) = self.db.get(name) {
                let cols: Vec<String> = df
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| format!("{} ({})", f.name, f.dtype))
                    .collect();
                s.push_str(&format!("table {name}: {}\n", cols.join(", ")));
            }
        }
        s
    }

    /// Read access to the catalog.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The session's rewritten-query history, oldest first. Together
    /// with [`DataLab::export_tables`], [`DataLab::export_knowledge`],
    /// and [`DataLab::export_notebook`] this is the session's durable
    /// state: a persistence layer can capture all four and rebuild an
    /// equivalent session with the matching restore calls.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Replaces the rewritten-query history (restore path for a
    /// persistence layer). History feeds the multi-round rewrite stage,
    /// so restoring it keeps follow-up queries ("what about west")
    /// resolving the same way they would have in the original session.
    pub fn restore_history(&mut self, history: Vec<String>) {
        self.history = history;
    }

    /// Every registered table as `(name, csv_text)` in registration
    /// order. Re-registering the CSVs via [`DataLab::register_csv`]
    /// reproduces the catalog *and* the profile lines (profiling is
    /// deterministic), so a snapshot needs no separate profile state.
    pub fn export_tables(&self) -> Vec<(String, String)> {
        self.db
            .table_names()
            .iter()
            .filter_map(|name| {
                let df = self.db.get(name).ok()?;
                Some((name.clone(), datalab_frame::csv::to_csv(df)))
            })
            .collect()
    }

    /// Read access to the knowledge graph.
    pub fn knowledge_graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Read access to the notebook.
    pub fn notebook(&self) -> &Notebook {
        &self.notebook
    }

    /// Read access to the cell-dependency DAG.
    pub fn dag(&self) -> &CellDag {
        &self.dag
    }

    /// Total LLM tokens consumed so far.
    pub fn tokens_used(&self) -> u64 {
        self.usage_meter().map(|m| m.total_tokens()).unwrap_or(0)
    }

    /// The platform-wide telemetry handle (shared with the model, agents
    /// and knowledge layers). Use it to read counters, histograms, and
    /// cumulative token attribution across queries.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn usage_meter(&self) -> Option<&datalab_llm::TokenMeter> {
        self.llm.meter()
    }

    /// Handles one NL query end to end (the Fig. 2 workflow): knowledge
    /// incorporation ①, multi-agent execution with structured
    /// communication ②, and notebook/context maintenance ③.
    ///
    /// The run is recorded under the `adhoc` workload label; use
    /// [`DataLab::query_as`] to label workload-driven runs.
    pub fn query(&mut self, question: &str) -> DataLabResponse {
        self.query_as("adhoc", question)
    }

    /// Like [`DataLab::query`], but records the run under an explicit
    /// workload label (`nl2sql`, `nl2vis`, …) so [`DataLab::fleet_report`]
    /// can break statistics down per workload.
    pub fn query_as(&mut self, workload: &str, question: &str) -> DataLabResponse {
        self.query_with_context(&RequestContext::untraced(), workload, question)
    }

    /// Like [`DataLab::query_as`], but threads a per-request
    /// [`RequestContext`]. While the query runs, the context's trace ID
    /// (if any) tags every event, every stage/agent span, and the root
    /// span, so the request can be reassembled end to end from the trace
    /// store — including the transport's fault/retry/breaker markers.
    pub fn query_with_context(
        &mut self,
        ctx: &RequestContext,
        workload: &str,
        question: &str,
    ) -> DataLabResponse {
        // Discard spans left over from setup work (registration, script
        // ingestion) so this query's trace has exactly one root, then
        // snapshot attribution so the summary reports only this query.
        self.telemetry.drain_trace();
        let attribution_baseline = self.telemetry.attribution();
        // Activate this request's trace for the duration of the query.
        // Sessions serve one query at a time, so setting the shared slot
        // (rather than threading the ID through every call) is safe; it
        // is unconditionally reassigned here so a stale trace from an
        // earlier panicked query can never leak onto this one.
        self.telemetry.set_trace(ctx.trace_id().cloned());
        // Mark the event log so the flight record covers exactly this
        // query, and baseline the kind counts for the error taxonomy.
        let event_mark = self.telemetry.events().total_recorded();
        let error_baseline = self.telemetry.events().kind_counts();
        self.telemetry
            .record_event(EventKind::QueryStart, question.to_string());
        let root = self.telemetry.span("query");
        root.attr("question", question);

        // ① Domain knowledge incorporation.
        let schema = self.schema_section();
        let schema_plus = format!("{schema}{}", self.profile_lines);
        let grounding = match &self.index {
            Some(index) => incorporate_traced(
                &self.llm,
                &self.graph,
                index,
                &schema_plus,
                question,
                &self.history,
                &self.config.current_date,
                &self.config.incorporate,
                &self.telemetry,
            ),
            None => {
                // No knowledge yet: profiling-only grounding.
                let empty_graph = KnowledgeGraph::new();
                let empty_index = KnowledgeIndex::build(&empty_graph, IndexTask::Nl2Dsl);
                incorporate_traced(
                    &self.llm,
                    &empty_graph,
                    &empty_index,
                    &schema_plus,
                    question,
                    &self.history,
                    &self.config.current_date,
                    &self.config.incorporate,
                    &self.telemetry,
                )
            }
        };

        // ② Multi-agent execution over the shared buffer. Agents call the
        // model through the resilient transport, so injected faults are
        // retried, breaker-gated, and — when terminal — degraded to
        // rule-based fallbacks instead of surfacing garbage.
        let proxy = ProxyAgent::new(&self.transport, self.config.communication.clone())
            .with_telemetry(self.telemetry.clone());
        let outcome = proxy.run_query_with_buffer(
            &self.db,
            &schema_plus,
            &grounding.knowledge_lines,
            &grounding.rewritten_query,
            &self.config.current_date,
            &self.session_buffer,
        );

        // One structured marker per degraded query: which roles/stages the
        // rule-based fallbacks served. Flows into the error taxonomy and
        // the flight record.
        let degraded = !outcome.degraded_roles.is_empty();
        if degraded {
            self.telemetry
                .record_event(EventKind::Degraded, outcome.degraded_roles.join(","));
        }

        // ③ Reflect results into the notebook and maintain the DAG.
        let notebook_stage = self.telemetry.stage("notebook");
        let mut new_cells = Vec::new();
        for unit in &outcome.units {
            match unit.content {
                datalab_agents::Content::Table(ref text) => {
                    if let Some(sql) = text.lines().find_map(|l| l.strip_prefix("-- sql: ")) {
                        let var = format!("df_q{}", self.history.len());
                        let id = self.notebook.push_sql(sql.to_string(), var);
                        self.dag.update_cell(&self.notebook, id);
                        new_cells.push(id);
                    }
                }
                datalab_agents::Content::Chart(ref spec) => {
                    let id = self.notebook.push(CellKind::Chart, spec.clone());
                    self.dag.update_cell(&self.notebook, id);
                    new_cells.push(id);
                }
                datalab_agents::Content::Text(_) => {}
                _ => {}
            }
        }
        if !outcome.answer.trim().is_empty() {
            let id = self.notebook.push(
                CellKind::Markdown,
                format!("**Q:** {question}\n\n{}", outcome.answer),
            );
            self.dag.update_cell(&self.notebook, id);
            new_cells.push(id);
        }
        self.telemetry
            .metrics()
            .incr("notebook.cells_appended", new_cells.len() as u64);
        if !new_cells.is_empty() {
            self.telemetry.record_event(
                EventKind::CellAppend,
                format!("appended {} cells", new_cells.len()),
            );
        }
        notebook_stage.attr("cells", new_cells.len().to_string());
        drop(notebook_stage);
        self.history.push(grounding.rewritten_query.clone());

        drop(root);
        self.telemetry.record_event(
            EventKind::QueryEnd,
            if outcome.success { "ok" } else { "failed" },
        );
        let telemetry = self.telemetry.finish_query(&attribution_baseline);

        // Error taxonomy for this query: per-kind count deltas, error
        // kinds only (lifetime counts survive ring eviction).
        let final_counts = self.telemetry.events().kind_counts();
        let delta = |kind: &str| {
            final_counts.get(kind).copied().unwrap_or(0)
                - error_baseline.get(kind).copied().unwrap_or(0)
        };
        let mut error_kinds = BTreeMap::new();
        for (kind, count) in &final_counts {
            if !is_error_kind(kind) {
                continue;
            }
            let d = count - error_baseline.get(kind).copied().unwrap_or(0);
            if d > 0 {
                error_kinds.insert(kind.clone(), d);
            }
        }
        // Resilience counters for this query, from the same event deltas.
        let resilience = ResilienceStats {
            faults: delta("llm_fault"),
            transport_retries: delta("transport_retry"),
            breaker_trips: delta("breaker_trip"),
            degraded: delta("degraded"),
        };
        // On failure, attach what the recorder retained since the query
        // started — the flight record.
        let flight_record = if outcome.success {
            Vec::new()
        } else {
            self.telemetry.events().since(event_mark)
        };
        // The query is over: stop tagging telemetry with its trace.
        self.telemetry.set_trace(None);

        if self.config.record_runs {
            self.recorder.push(RunRecord {
                workload: workload.to_string(),
                question: question.to_string(),
                success: outcome.success,
                duration_us: telemetry.root().map(|r| r.dur_us).unwrap_or(0),
                summary: telemetry.clone(),
                error_kinds,
                flight_record: flight_record.clone(),
                resilience,
            });
        }

        DataLabResponse {
            answer: outcome.answer,
            rewritten_query: grounding.rewritten_query,
            plan: outcome.plan,
            frame: outcome.final_frame,
            chart: outcome.chart,
            dsl_json: grounding.dsl_json,
            success: outcome.success,
            new_cells,
            telemetry,
            flight_record,
            degraded,
            resilience,
        }
    }

    /// The resilient transport's current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.transport.breaker().state()
    }

    /// Lifetime circuit-breaker trips on the resilient transport.
    pub fn breaker_trips(&self) -> u64 {
        self.transport.breaker().trips()
    }

    /// The session's accumulated run records.
    pub fn run_records(&self) -> &[RunRecord] {
        self.recorder.records()
    }

    /// Drains the session's run records (e.g. to merge several labs'
    /// records into one fleet-wide [`RunRecorder`]).
    pub fn take_run_records(&mut self) -> Vec<RunRecord> {
        std::mem::take(&mut self.recorder).into_records()
    }

    /// Folds every recorded run into a [`FleetReport`].
    pub fn fleet_report(&self) -> FleetReport {
        self.recorder.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::{DataType, Date, Value};

    fn sales() -> DataFrame {
        let dates: Vec<Value> = (0..8)
            .map(|i| Value::Date(Date::parse("2026-01-01").unwrap().add_days(i * 20)))
            .collect();
        DataFrame::from_columns(vec![
            (
                "region",
                DataType::Str,
                (0..8)
                    .map(|i| {
                        if i % 2 == 0 {
                            "east".into()
                        } else {
                            "west".into()
                        }
                    })
                    .collect(),
            ),
            (
                "amount",
                DataType::Int,
                (0..8).map(|i| Value::Int(10 + 2 * i)).collect(),
            ),
            ("day", DataType::Date, dates),
        ])
        .unwrap()
    }

    /// Compile-time audit of the session stack: a whole `DataLab` — and
    /// every shared handle inside it — must be movable across threads so
    /// fleet executors can run one session per worker. A non-`Send` field
    /// sneaking into any layer fails this test at compile time.
    #[test]
    fn session_stack_is_send() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<DataLab>();
        assert_send::<DataLabConfig>();
        assert_send::<DataLabResponse>();
        assert_send::<RunRecorder>();
        assert_send::<FleetReport>();
        // The handles shared between layers are also Sync: one instance
        // may be referenced concurrently from several threads.
        assert_sync::<SimLlm>();
        assert_sync::<SharedBuffer>();
        assert_sync::<Telemetry>();
        assert_sync::<Database>();
        assert_sync::<KnowledgeIndex>();
        assert_send::<SimLlm>();
        assert_send::<SharedBuffer>();
        assert_send::<Telemetry>();
    }

    #[test]
    fn registering_shared_frames_does_not_copy() {
        let df = Arc::new(sales());
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", Arc::clone(&df)).unwrap();
        let shared = lab.database().get_shared("sales").unwrap();
        assert!(Arc::ptr_eq(&df, &shared));
        let r = lab.query("What is the total amount by region?");
        assert!(r.success, "{:?}", r.plan);
    }

    #[test]
    fn end_to_end_query_appends_cells() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", sales()).unwrap();
        let r = lab.query("What is the total amount by region?");
        assert!(r.success, "{:?}", r.plan);
        assert!(r.frame.is_some());
        assert!(!r.new_cells.is_empty());
        assert!(lab.notebook().len() >= 2); // sql + markdown cells
        assert!(lab.tokens_used() > 0);
    }

    #[test]
    fn multi_round_history_feeds_rewrite() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", sales()).unwrap();
        lab.query("total amount by region for east");
        let r = lab.query("what about west");
        assert!(r.rewritten_query.contains("west"), "{}", r.rewritten_query);
        assert!(
            r.rewritten_query.to_lowercase().contains("amount"),
            "{}",
            r.rewritten_query
        );
    }

    #[test]
    fn knowledge_pipeline_improves_grounding() {
        let mut lab = DataLab::new(DataLabConfig::default());
        let df = DataFrame::from_columns(vec![
            ("rgn_cd", DataType::Str, vec!["east".into(), "west".into()]),
            (
                "shouldincome_after",
                DataType::Float,
                vec![Value::Float(10.0), Value::Float(20.0)],
            ),
        ])
        .unwrap();
        lab.register_table("dwd_sales", df).unwrap();
        let report = lab.ingest_scripts(
            "dwd_sales",
            &[Script::sql(
                "-- daily income rollup by region for finance\n\
                 SELECT rgn_cd, SUM(shouldincome_after) AS total FROM dwd_sales GROUP BY rgn_cd",
            )],
            &Lineage::default(),
        );
        assert!(report.scripts_used == 1);
        lab.add_jargon("gmv", "total income");
        let r = lab.query("show gmv by region");
        assert!(r.success);
        let frame = r.frame.expect("data produced");
        assert_eq!(frame.n_rows(), 2);
    }

    #[test]
    fn csv_registration_and_persistence_roundtrip() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_csv(
            "sales",
            "region,amount
east,10
west,20
east,5
",
        )
        .unwrap();
        lab.add_jargon("gmv", "total amount");
        lab.query("show gmv by region");
        let knowledge = lab.export_knowledge().unwrap();
        let notebook = lab.export_notebook();
        assert!(knowledge.contains("gmv"));
        assert!(!notebook.is_empty());

        let mut restored = DataLab::new(DataLabConfig::default());
        restored
            .register_csv(
                "sales",
                "region,amount
east,10
west,20
east,5
",
            )
            .unwrap();
        restored.import_knowledge(&knowledge).unwrap();
        restored.import_notebook(&notebook).unwrap();
        assert_eq!(restored.notebook().len(), lab.notebook().len());
        let r = restored.query("show gmv by region");
        assert!(r.success);
        assert!(restored.import_knowledge("not json").is_err());
    }

    #[test]
    fn query_produces_span_tree_and_attributed_tokens() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", sales()).unwrap();
        let before = lab.tokens_used();
        let r = lab.query("What is the total amount by region?");
        assert!(r.success);

        // One root span named "query" with the pipeline stages beneath it.
        let root = r.telemetry.root().expect("single-root span tree");
        assert_eq!(root.name, "query");
        assert!(root.well_formed(), "{}", r.telemetry.render());
        let stages = r.telemetry.stage_names();
        for want in [
            "rewrite",
            "ground",
            "plan",
            "execute",
            "synthesize",
            "notebook",
        ] {
            assert!(stages.contains(&want), "missing stage {want} in {stages:?}");
        }
        // The execute stage carries per-agent scopes.
        let execute = root.find("execute").expect("execute span");
        assert!(
            execute
                .children
                .iter()
                .any(|c| c.name.starts_with("agent:")),
            "{:?}",
            execute.children.iter().map(|c| &c.name).collect::<Vec<_>>()
        );

        // Attributed usage for this query equals the meter's delta.
        let spent = lab.tokens_used() - before;
        assert!(spent > 0);
        assert_eq!(r.telemetry.total.total(), spent);
        assert!(r
            .telemetry
            .attribution
            .iter()
            .all(|a| a.stage != "unattributed"));

        // Exporters: the Chrome trace is valid JSON with complete events.
        let trace: serde_json::Value = serde_json::from_str(&r.telemetry.chrome_trace()).unwrap();
        let events = trace["traceEvents"].as_array().unwrap();
        assert!(events.len() >= 5);
        for e in events {
            assert_eq!(e["ph"], "X");
            assert!(e["ts"].is_u64() && e["dur"].is_u64());
        }
        let summary_json: serde_json::Value = serde_json::from_str(&r.telemetry.to_json()).unwrap();
        assert!(summary_json["spans"].is_array());
        assert!(r.telemetry.render().contains("query"));

        // Platform-wide metrics got fed along the way.
        let m = lab.telemetry().metrics();
        assert!(m.counter("llm.calls") > 0);
        assert!(m.counter("agents.subtasks") >= 1);
        assert!(m.counter("notebook.cells_appended") >= 1);
    }

    #[test]
    fn fleet_report_accumulates_labeled_runs() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", sales()).unwrap();
        let r1 = lab.query_as("nl2sql", "What is the total amount by region?");
        let r2 = lab.query_as("nl2vis", "Draw a bar chart of total amount by region");
        assert!(r1.success && r2.success);
        assert!(r1.flight_record.is_empty() && r2.flight_record.is_empty());
        assert_eq!(lab.run_records().len(), 2);

        let report = lab.fleet_report();
        assert_eq!((report.runs, report.passed, report.failed), (2, 2, 0));
        // Fleet token totals are exactly the sum of the per-query deltas.
        assert_eq!(
            report.tokens.total,
            r1.telemetry.total.total() + r2.telemetry.total.total()
        );
        assert_eq!(
            report.llm.calls,
            r1.telemetry.total.calls + r2.telemetry.total.calls
        );
        assert!(report.workloads.contains_key("nl2sql"));
        assert!(report.workloads.contains_key("nl2vis"));
        let execute = report.stage("execute").expect("execute stats");
        assert_eq!(execute.spans, 2);
        assert!(execute.latency.p50_us <= execute.latency.p99_us);
        assert!(report.agent("sql_agent").is_some());
        assert!(report.render().contains("fleet report: 2 runs"));

        // The event log observed both queries.
        let counts = lab.telemetry().events().kind_counts();
        assert_eq!(counts.get("query_start"), Some(&2));
        assert_eq!(counts.get("query_end"), Some(&2));
        assert!(counts.get("llm_call").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn failing_query_attaches_flight_record() {
        // No registered tables: the vis agent has no data source to
        // resolve, so the subtask must fail.
        let mut lab = DataLab::new(DataLabConfig::default());
        let r = lab.query("draw a bar chart of sales by region");
        assert!(!r.success);
        assert!(!r.flight_record.is_empty());
        assert_eq!(r.flight_record.first().unwrap().kind, EventKind::QueryStart);
        assert_eq!(r.flight_record.last().unwrap().kind, EventKind::QueryEnd);
        assert!(r
            .flight_record
            .iter()
            .any(|e| e.kind == EventKind::AgentFailure));

        let record = lab.run_records().last().expect("run recorded");
        assert!(!record.success);
        assert!(
            record
                .error_kinds
                .get("agent_failure")
                .copied()
                .unwrap_or(0)
                >= 1
        );
        let report = lab.fleet_report();
        assert_eq!((report.runs, report.failed), (1, 1));
        assert!(report.errors.contains_key("agent_failure"));
    }

    #[test]
    fn platform_errors_are_counted_and_evented() {
        let mut lab = DataLab::new(DataLabConfig::default());
        assert!(lab.import_knowledge("not json").is_err());
        assert!(lab.import_notebook("not json").is_err());
        assert!(lab.register_csv("bad", "a,b\n1\n").is_err());
        let m = lab.telemetry().metrics();
        assert_eq!(m.counter("platform.errors.knowledge_import"), 1);
        assert_eq!(m.counter("platform.errors.notebook_import"), 1);
        assert_eq!(m.counter("platform.errors.csv_register"), 1);
        assert_eq!(
            lab.telemetry().events().kind_counts().get("platform_error"),
            Some(&3)
        );
    }

    #[test]
    fn record_runs_off_keeps_the_recorder_empty() {
        let mut lab = DataLab::new(DataLabConfig {
            record_runs: false,
            ..Default::default()
        });
        lab.register_table("sales", sales()).unwrap();
        let r = lab.query("What is the total amount by region?");
        assert!(r.success);
        // The response still carries its telemetry summary; only the
        // session-held record is skipped.
        assert!(r.telemetry.root().is_some());
        assert!(lab.run_records().is_empty());
        assert_eq!(lab.fleet_report().runs, 0);
    }

    #[test]
    fn chaos_free_sessions_report_zero_resilience() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", sales()).unwrap();
        let r = lab.query("What is the total amount by region?");
        assert!(r.success);
        assert!(!r.degraded);
        assert!(r.resilience.is_zero(), "{:?}", r.resilience);
        assert_eq!(lab.breaker_state(), BreakerState::Closed);
        assert_eq!(lab.breaker_trips(), 0);
        assert!(lab.fleet_report().resilience.is_zero());
        // The fault taxonomy is pre-registered at zero so exports always
        // enumerate it.
        let m = lab.telemetry().metrics();
        assert_eq!(m.counter("llm.faults.transport"), 0);
        assert_eq!(m.counter("llm.breaker.trips"), 0);
        assert_eq!(m.gauge("llm.breaker.state"), 0);
    }

    #[test]
    fn zero_rate_chaos_is_indistinguishable_from_no_chaos() {
        let questions = [
            "What is the total amount by region?",
            "Draw a bar chart of total amount by region",
            "Summarize the amount trends",
        ];
        let run = |config: DataLabConfig| {
            let mut lab = DataLab::new(config);
            lab.register_table("sales", sales()).unwrap();
            for q in &questions {
                lab.query_as("nl2sql", q);
            }
            lab.fleet_report()
        };
        let plain = run(DataLabConfig::default());
        let zero_chaos = run(DataLabConfig {
            chaos: Some(ChaosConfig::uniform(99, 0.0)),
            ..DataLabConfig::default()
        });
        assert_eq!(plain.comparable(), zero_chaos.comparable());
        assert!(zero_chaos.resilience.is_zero());
    }

    #[test]
    fn heavy_chaos_degrades_gracefully_without_poisoned_answers() {
        let mut lab = DataLab::new(DataLabConfig {
            chaos: Some(ChaosConfig::uniform(7, 0.9)),
            ..DataLabConfig::default()
        });
        lab.register_table("sales", sales()).unwrap();
        let mut saw_degraded = false;
        for q in [
            "What is the total amount by region?",
            "Draw a bar chart of total amount by region",
            "What is the total amount by region for east?",
            "Summarize the amount by region",
        ] {
            let r = lab.query_as("chaos", q);
            // Structured degradation, never transport poison in answers.
            assert!(!r.answer.contains("<<llm-error"), "{}", r.answer);
            assert!(!r.answer.contains("!!{garbage"), "{}", r.answer);
            saw_degraded |= r.degraded;
            if r.degraded {
                assert!(r.resilience.degraded >= 1, "{:?}", r.resilience);
            }
        }
        assert!(saw_degraded, "90% fault rate never forced a fallback");
        let report = lab.fleet_report();
        assert!(report.resilience.faults > 0, "{:?}", report.resilience);
        assert!(report.resilience.transport_retries > 0);
        assert!(
            report.resilience.breaker_trips > 0,
            "{:?}",
            report.resilience
        );
        assert_eq!(report.resilience.breaker_trips, lab.breaker_trips());
        assert!(
            report.errors.contains_key("degraded"),
            "{:?}",
            report.errors
        );
        // The metrics registry saw the same activity.
        let m = lab.telemetry().metrics();
        assert!(m.counter("llm.faults.retries") > 0);
        assert!(m.counter("llm.breaker.trips") > 0);
    }

    #[test]
    fn ingest_appends_upserts_and_deduplicates() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_csv("sales", "region,amount\neast,10\nwest,20\n")
            .unwrap();

        // Plain append.
        let r = lab
            .ingest_rows("sales", "region,amount\nnorth,5\n", None, "batch-1")
            .unwrap();
        assert_eq!((r.appended, r.updated, r.deduplicated), (1, 0, false));
        assert_eq!(lab.database().get("sales").unwrap().n_rows(), 3);

        // Retrying the same idempotency key changes nothing.
        let retry = lab
            .ingest_rows("sales", "region,amount\nnorth,5\n", None, "batch-1")
            .unwrap();
        assert!(retry.deduplicated);
        assert_eq!(lab.database().get("sales").unwrap().n_rows(), 3);

        // Upsert by key column: west replaced in place, south appended;
        // within the batch the last row for a repeated key wins.
        let r = lab
            .ingest_rows(
                "sales",
                "region,amount\nwest,21\nsouth,7\nwest,22\n",
                Some("region"),
                "batch-2",
            )
            .unwrap();
        assert_eq!((r.appended, r.updated), (1, 1));
        let df = lab.database().get("sales").unwrap();
        assert_eq!(df.n_rows(), 4);
        let west_at = df
            .column("region")
            .unwrap()
            .iter()
            .position(|v| v == &Value::Str("west".into()))
            .unwrap();
        assert_eq!(df.column("amount").unwrap()[west_at], Value::Int(22));

        // Validation failures change nothing and are counted.
        assert!(lab
            .ingest_rows("sales", "region,amount\nx,oops\n", None, "batch-3")
            .is_err());
        assert!(lab
            .ingest_rows("sales", "region,amount\nx,1\n", Some("nope"), "batch-3")
            .is_err());
        assert!(lab
            .ingest_rows("missing", "region,amount\nx,1\n", None, "batch-3")
            .is_err());
        assert_eq!(lab.database().get("sales").unwrap().n_rows(), 4);
        assert!(!lab.ingest_seen("batch-3"));
        let m = lab.telemetry().metrics();
        assert_eq!(m.counter("ingest.batches"), 2);
        assert_eq!(m.counter("ingest.deduplicated"), 1);
        assert_eq!(m.counter("platform.errors.ingest"), 3);

        // The applied-key set round-trips through export/restore.
        let keys = lab.export_ingest_keys();
        assert_eq!(keys, vec!["batch-1".to_string(), "batch-2".to_string()]);
        let mut other = DataLab::new(DataLabConfig::default());
        other
            .register_csv("sales", "region,amount\neast,10\n")
            .unwrap();
        other.restore_ingest_keys(keys);
        let replay = other
            .ingest_rows("sales", "region,amount\nnorth,5\n", None, "batch-1")
            .unwrap();
        assert!(replay.deduplicated);
        assert_eq!(other.database().get("sales").unwrap().n_rows(), 1);
    }

    #[test]
    fn ingest_invalidates_referencing_cells() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", sales()).unwrap();
        let r = lab.query("What is the total amount by region?");
        assert!(r.success);
        let batch = lab
            .ingest_rows(
                "sales",
                "region,amount,day\neast,99,2026-03-01\n",
                None,
                "b1",
            )
            .unwrap();
        assert!(
            !batch.invalidated_cells.is_empty(),
            "sql cell referencing sales should go stale"
        );
        assert!(lab.telemetry().metrics().counter("dag.invalidated") > 0);
        // A table nothing references invalidates nothing.
        lab.register_csv("orphan", "x\n1\n").unwrap();
        let b2 = lab.ingest_rows("orphan", "x\n2\n", None, "b2").unwrap();
        assert!(b2.invalidated_cells.is_empty());
    }

    #[test]
    fn chart_queries_render_and_store_chart_cells() {
        let mut lab = DataLab::new(DataLabConfig::default());
        lab.register_table("sales", sales()).unwrap();
        let r = lab.query("Draw a bar chart of total amount by region");
        assert!(r.chart.is_some());
        let has_chart_cell = lab
            .notebook()
            .cells()
            .iter()
            .any(|c| c.kind == CellKind::Chart);
        assert!(has_chart_cell);
    }
}
