//! Property-based tests for the knowledge crate: DSL validation totality
//! and compile-target well-formedness.

use datalab_knowledge::{validate_dsl_json, DslColumn, DslMeasure, DslSpec};
use datalab_sql::parse_select;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = DslSpec> {
    (
        "[a-z]{1,8}",
        "[a-z]{1,8}",
        "[a-z]{1,8}",
        prop_oneof![
            Just("sum"),
            Just("avg"),
            Just("count"),
            Just("min"),
            Just("max"),
            Just("count_distinct")
        ],
        prop::option::of(1usize..50),
        any::<bool>(),
    )
        .prop_map(|(table, col, dim, agg, limit, desc)| DslSpec {
            measure_list: vec![DslMeasure {
                table: Some(table.clone()),
                column: Some(col),
                aggregate: agg.to_string(),
                expr: None,
                alias: None,
            }],
            dimension_list: vec![DslColumn {
                table: table.clone(),
                column: dim,
            }],
            condition_list: vec![],
            projection_list: vec![],
            order_by: Some(datalab_knowledge::DslOrder {
                target: "measure".into(),
                desc,
            }),
            limit,
            chart: Some("bar".into()),
            clean: None,
        })
}

proptest! {
    #[test]
    fn validator_never_panics(text in ".{0,160}") {
        let _ = validate_dsl_json(&text);
    }

    #[test]
    fn valid_specs_roundtrip_through_validator(spec in spec_strategy()) {
        let json = serde_json::to_string(&spec).expect("serializes");
        let back = validate_dsl_json(&json).expect("own serialization validates");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn compiled_sql_always_parses(spec in spec_strategy()) {
        let sql = spec.to_sql(None);
        parse_select(&sql).unwrap_or_else(|e| panic!("unparseable SQL {sql}: {e}"));
    }

    #[test]
    fn compiled_dscript_is_well_formed(spec in spec_strategy()) {
        let ds = spec.to_dscript();
        prop_assert!(ds.starts_with("load "));
        // Every line is a known op.
        for line in ds.lines() {
            let op = line.split_whitespace().next().unwrap_or("");
            prop_assert!(
                ["load", "filter", "derive", "select", "groupby", "sort", "limit"].contains(&op),
                "unknown op in {line}"
            );
        }
    }
}
