//! Property-based tests for the knowledge crate: DSL validation totality,
//! compile-target well-formedness, and query-cache transparency.

use datalab_knowledge::{
    validate_dsl_json, ColumnKnowledge, DslColumn, DslMeasure, DslSpec, IndexTask, KnowledgeGraph,
    KnowledgeIndex, TableKnowledge,
};
use datalab_sql::parse_select;
use proptest::prelude::*;

fn indexed_graph() -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new();
    g.ingest_table(
        "biz",
        &TableKnowledge {
            name: "sales".into(),
            description: "daily product revenue by region".into(),
            columns: vec![
                ColumnKnowledge {
                    name: "income_after_tax".into(),
                    description: "income revenue after tax".into(),
                    aliases: vec!["income".into()],
                    ..Default::default()
                },
                ColumnKnowledge {
                    name: "cost_amt".into(),
                    description: "operating cost amount".into(),
                    ..Default::default()
                },
            ],
            ..Default::default()
        },
    );
    g
}

fn spec_strategy() -> impl Strategy<Value = DslSpec> {
    (
        "[a-z]{1,8}",
        "[a-z]{1,8}",
        "[a-z]{1,8}",
        prop_oneof![
            Just("sum"),
            Just("avg"),
            Just("count"),
            Just("min"),
            Just("max"),
            Just("count_distinct")
        ],
        prop::option::of(1usize..50),
        any::<bool>(),
    )
        .prop_map(|(table, col, dim, agg, limit, desc)| DslSpec {
            measure_list: vec![DslMeasure {
                table: Some(table.clone()),
                column: Some(col),
                aggregate: agg.to_string(),
                expr: None,
                alias: None,
            }],
            dimension_list: vec![DslColumn {
                table: table.clone(),
                column: dim,
            }],
            condition_list: vec![],
            projection_list: vec![],
            order_by: Some(datalab_knowledge::DslOrder {
                target: "measure".into(),
                desc,
            }),
            limit,
            chart: Some("bar".into()),
            clean: None,
        })
}

proptest! {
    #[test]
    fn validator_never_panics(text in ".{0,160}") {
        let _ = validate_dsl_json(&text);
    }

    #[test]
    fn valid_specs_roundtrip_through_validator(spec in spec_strategy()) {
        let json = serde_json::to_string(&spec).expect("serializes");
        let back = validate_dsl_json(&json).expect("own serialization validates");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn compiled_sql_always_parses(spec in spec_strategy()) {
        let sql = spec.to_sql(None);
        parse_select(&sql).unwrap_or_else(|e| panic!("unparseable SQL {sql}: {e}"));
    }

    /// The per-index query cache is transparent: a warm (repeat-query)
    /// index returns exactly what a cold, freshly built index returns,
    /// for arbitrary query strings and after a rebuild.
    #[test]
    fn query_cache_is_transparent(query in ".{0,60}") {
        let g = indexed_graph();
        let warm = KnowledgeIndex::build(&g, IndexTask::General);
        // Prime the cache, then query again through it.
        warm.lexical_search(&query, 8, 0.0);
        warm.semantic_search(&query, 8, -1.0);
        let warm_lex = warm.lexical_search(&query, 8, 0.0);
        let warm_sem = warm.semantic_search(&query, 8, -1.0);
        // A cold index never hits a populated cache entry.
        let cold = KnowledgeIndex::build(&g, IndexTask::General);
        prop_assert_eq!(&warm_lex, &cold.lexical_search(&query, 8, 0.0));
        prop_assert_eq!(&warm_sem, &cold.semantic_search(&query, 8, -1.0));
        // Rebuilding (new index, empty cache) also agrees with the
        // warm pre-rebuild results for an unchanged graph.
        let rebuilt = KnowledgeIndex::build(&g, IndexTask::General);
        prop_assert_eq!(warm_lex, rebuilt.lexical_search(&query, 8, 0.0));
        prop_assert_eq!(warm_sem, rebuilt.semantic_search(&query, 8, -1.0));
    }

    #[test]
    fn compiled_dscript_is_well_formed(spec in spec_strategy()) {
        let ds = spec.to_dscript();
        prop_assert!(ds.starts_with("load "));
        // Every line is a known op.
        for line in ds.lines() {
            let op = line.split_whitespace().next().unwrap_or("");
            prop_assert!(
                ["load", "filter", "derive", "select", "groupby", "sort", "limit"].contains(&op),
                "unknown op in {line}"
            );
        }
    }
}
