//! Task-aware indexing of knowledge-graph nodes (paper §IV-B): a lexical
//! inverted index (the Elasticsearch role) and a semantic embedding index
//! (the StarRocks role), both over `{name, content, tag}` triplets.

#[cfg(test)]
use crate::graph::NodeKind;
use crate::graph::{KnowledgeGraph, NodeId};
use datalab_llm::util::{split_ident, stem, words};
use datalab_llm::HashEmbedder;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The downstream task an index serves; it selects which knowledge
/// components go into the indexed `content` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexTask {
    /// Schema linking: names + descriptions suffice.
    SchemaLinking,
    /// NL2DSL: also needs calculation logic and usage.
    Nl2Dsl,
    /// General retrieval: everything.
    General,
}

/// One indexed triplet.
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// The indexed node.
    pub node: NodeId,
    /// Node name (identifier).
    pub name: String,
    /// Task-selected content.
    pub content: String,
    /// Primary tag (node kind).
    pub tag: String,
}

/// Builds the task-appropriate content string for a node.
fn content_for(graph: &KnowledgeGraph, id: NodeId, task: IndexTask) -> String {
    let node = graph.node(id);
    let mut parts: Vec<String> = vec![split_ident(&node.name).join(" ")];
    let take = |key: &str| node.components.get(key).cloned().unwrap_or_default();
    match task {
        IndexTask::SchemaLinking => {
            parts.push(take("description"));
        }
        IndexTask::Nl2Dsl => {
            parts.push(take("description"));
            parts.push(take("usage"));
            parts.push(take("calculation"));
            parts.push(take("expansion"));
            parts.push(take("value"));
        }
        IndexTask::General => {
            for v in node.components.values() {
                parts.push(v.clone());
            }
        }
    }
    parts.retain(|p| !p.trim().is_empty());
    parts.join(" ")
}

/// Memoised per-query work: the stemmed token stream (lexical path) and
/// the embedding (semantic path). Both are pure functions of the query
/// string, and retrieval pipelines ask the same query of the same index
/// several times per turn (coarse lexical + coarse semantic + rerank), so
/// computing them once per distinct string is pure win.
#[derive(Debug)]
struct QueryFeatures {
    /// Stemmed query tokens, duplicates preserved (tf semantics).
    stems: Vec<String>,
    /// Unit-length query embedding.
    embedding: Vec<f32>,
}

/// Upper bound on memoised distinct query strings; the map is cleared
/// wholesale when it would grow past this (simple, and a fleet session
/// asks far fewer distinct queries).
const QUERY_CACHE_MAX: usize = 1024;

/// Interior-mutability cache of [`QueryFeatures`] keyed by the verbatim
/// query string. Lives inside one [`KnowledgeIndex`], so rebuilding the
/// index (the only way entries/embeddings change) starts from an empty
/// cache — there is no cross-build invalidation to get wrong.
#[derive(Debug, Default)]
struct QueryCache {
    map: Mutex<HashMap<String, Arc<QueryFeatures>>>,
}

impl QueryCache {
    fn features(&self, query: &str) -> Arc<QueryFeatures> {
        if let Some(hit) = self.map.lock().expect("query cache lock").get(query) {
            return Arc::clone(hit);
        }
        // Compute outside the lock; a racing thread computing the same
        // (deterministic) features is harmless.
        let features = Arc::new(QueryFeatures {
            stems: words(query).iter().map(|t| stem(t)).collect(),
            embedding: HashEmbedder::new().embed(query),
        });
        let mut map = self.map.lock().expect("query cache lock");
        if map.len() >= QUERY_CACHE_MAX {
            map.clear();
        }
        Arc::clone(
            map.entry(query.to_string())
                .or_insert_with(|| Arc::clone(&features)),
        )
    }

    /// Number of memoised queries (test observability only).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.lock().expect("query cache lock").len()
    }
}

/// The combined lexical + semantic index.
#[derive(Debug)]
pub struct KnowledgeIndex {
    entries: Vec<IndexEntry>,
    /// token -> (entry index, term frequency)
    inverted: HashMap<String, Vec<(usize, f64)>>,
    /// per-entry embedding
    embeddings: Vec<Vec<f32>>,
    /// document frequency per token
    doc_freq: HashMap<String, usize>,
    /// per-query memo (embedding + stemmed tokens)
    cache: QueryCache,
}

impl Clone for KnowledgeIndex {
    fn clone(&self) -> Self {
        KnowledgeIndex {
            entries: self.entries.clone(),
            inverted: self.inverted.clone(),
            embeddings: self.embeddings.clone(),
            doc_freq: self.doc_freq.clone(),
            // Caches are per-instance scratch state, not index content.
            cache: QueryCache::default(),
        }
    }
}

impl KnowledgeIndex {
    /// Indexes every node of the graph for the given task.
    pub fn build(graph: &KnowledgeGraph, task: IndexTask) -> Self {
        let embedder = HashEmbedder::new();
        let mut entries = Vec::with_capacity(graph.len());
        let mut inverted: HashMap<String, Vec<(usize, f64)>> = HashMap::new();
        let mut embeddings = Vec::with_capacity(graph.len());
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        for node in graph.nodes() {
            let content = content_for(graph, node.id, task);
            let idx = entries.len();
            let toks = words(&content);
            let mut tf: HashMap<String, f64> = HashMap::new();
            for t in &toks {
                *tf.entry(stem(t)).or_insert(0.0) += 1.0;
            }
            for (t, f) in &tf {
                inverted.entry(t.clone()).or_default().push((idx, *f));
                *doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
            embeddings.push(embedder.embed(&content));
            entries.push(IndexEntry {
                node: node.id,
                name: node.name.clone(),
                content,
                tag: format!("{:?}", node.kind).to_lowercase(),
            });
        }
        KnowledgeIndex {
            entries,
            inverted,
            embeddings,
            doc_freq,
            cache: QueryCache::default(),
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Lexical (tf-idf) search: entries scoring above `threshold`, best
    /// first, at most `k`.
    pub fn lexical_search(&self, query: &str, k: usize, threshold: f64) -> Vec<(usize, f64)> {
        let n_docs = self.entries.len().max(1) as f64;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        let features = self.cache.features(query);
        for t in &features.stems {
            if let Some(postings) = self.inverted.get(t) {
                let df = *self.doc_freq.get(t).unwrap_or(&1) as f64;
                let idf = (n_docs / df).ln().max(0.1);
                for (idx, tf) in postings {
                    *scores.entry(*idx).or_insert(0.0) += (1.0 + tf.ln()) * idf;
                }
            }
        }
        let mut out: Vec<(usize, f64)> = scores
            .into_iter()
            .filter(|(_, s)| *s >= threshold)
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// Semantic (embedding cosine) search: top `k` above `threshold`.
    pub fn semantic_search(&self, query: &str, k: usize, threshold: f64) -> Vec<(usize, f64)> {
        let features = self.cache.features(query);
        let q = &features.embedding;
        let mut out: Vec<(usize, f64)> = self
            .embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (i, datalab_llm::cosine(q, e)))
            .filter(|(_, s)| *s >= threshold)
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// Entry by index.
    pub fn entry(&self, idx: usize) -> &IndexEntry {
        &self.entries[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ColumnKnowledge, TableKnowledge};

    fn graph() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        g.ingest_table(
            "biz",
            &TableKnowledge {
                name: "sales".into(),
                description: "daily product revenue".into(),
                columns: vec![
                    ColumnKnowledge {
                        name: "shouldincome_after".into(),
                        description: "income revenue after tax".into(),
                        aliases: vec!["income".into()],
                        ..Default::default()
                    },
                    ColumnKnowledge {
                        name: "cost_amt".into(),
                        description: "operating cost amount".into(),
                        ..Default::default()
                    },
                ],
                ..Default::default()
            },
        );
        g
    }

    #[test]
    fn lexical_search_finds_by_description() {
        let g = graph();
        let idx = KnowledgeIndex::build(&g, IndexTask::General);
        let hits = idx.lexical_search("income after tax", 5, 0.01);
        assert!(!hits.is_empty());
        assert!(
            idx.entry(hits[0].0).name.contains("shouldincome_after"),
            "{:?}",
            idx.entry(hits[0].0)
        );
    }

    #[test]
    fn semantic_search_ranks_related_higher() {
        let g = graph();
        let idx = KnowledgeIndex::build(&g, IndexTask::General);
        let hits = idx.semantic_search("revenue income", 5, 0.0);
        let income_pos = hits
            .iter()
            .position(|(i, _)| idx.entry(*i).name.contains("shouldincome_after"));
        let cost_pos = hits
            .iter()
            .position(|(i, _)| idx.entry(*i).name.contains("cost_amt"));
        match (income_pos, cost_pos) {
            (Some(i), Some(c)) => assert!(i < c),
            (Some(_), None) => {}
            other => panic!("unexpected ranking {other:?}"),
        }
    }

    #[test]
    fn alias_nodes_are_indexed() {
        let g = graph();
        let idx = KnowledgeIndex::build(&g, IndexTask::SchemaLinking);
        let hits = idx.lexical_search("income", 10, 0.01);
        assert!(hits.iter().any(|(i, _)| idx.entry(*i).tag == "alias"));
    }

    #[test]
    fn query_cache_memoises_and_preserves_results() {
        let g = graph();
        let idx = KnowledgeIndex::build(&g, IndexTask::General);
        let fresh = KnowledgeIndex::build(&g, IndexTask::General);
        assert_eq!(idx.cache.len(), 0);
        for query in ["income after tax", "revenue income", "income after tax"] {
            assert_eq!(
                idx.lexical_search(query, 5, 0.01),
                fresh_lexical(&fresh, query)
            );
            assert_eq!(
                idx.semantic_search(query, 5, 0.0),
                fresh.semantic_search(query, 5, 0.0)
            );
        }
        // Two distinct queries, one repeated: memoised once each.
        assert_eq!(idx.cache.len(), 2);
        // The cached features are shared, not recomputed, on the hit path.
        let a = idx.cache.features("income after tax");
        let b = idx.cache.features("income after tax");
        assert!(Arc::ptr_eq(&a, &b));
    }

    /// Lexical search against a never-before-seen index so its cache is
    /// cold for every call (each query string is looked up at most once).
    fn fresh_lexical(idx: &KnowledgeIndex, query: &str) -> Vec<(usize, f64)> {
        KnowledgeIndex::clone(idx).lexical_search(query, 5, 0.01)
    }

    #[test]
    fn clone_resets_the_cache() {
        let g = graph();
        let idx = KnowledgeIndex::build(&g, IndexTask::General);
        idx.lexical_search("income", 5, 0.01);
        assert_eq!(idx.cache.len(), 1);
        let cloned = idx.clone();
        assert_eq!(cloned.cache.len(), 0);
        assert_eq!(cloned.len(), idx.len());
        assert_eq!(
            cloned.lexical_search("income", 5, 0.01),
            idx.lexical_search("income", 5, 0.01)
        );
    }

    #[test]
    fn cache_eviction_clears_at_capacity() {
        let cache = QueryCache::default();
        for i in 0..QUERY_CACHE_MAX {
            cache.features(&format!("query {i}"));
        }
        assert_eq!(cache.len(), QUERY_CACHE_MAX);
        // The next distinct query trips the wholesale clear, then inserts.
        cache.features("one more");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn task_selects_content() {
        let mut g = graph();
        // Add a derived column with calculation logic.
        let t = g.find(NodeKind::Table, "sales").unwrap();
        let mut comp = std::collections::BTreeMap::new();
        comp.insert("calculation".into(), "shouldincome_after - cost_amt".into());
        let d = g.add_node(
            NodeKind::Column,
            "sales.profit",
            comp,
            vec!["derived".into()],
        );
        g.add_contains(t, d);
        let dsl_idx = KnowledgeIndex::build(&g, IndexTask::Nl2Dsl);
        let sl_idx = KnowledgeIndex::build(&g, IndexTask::SchemaLinking);
        let e_dsl = dsl_idx
            .entries()
            .iter()
            .find(|e| e.name == "sales.profit")
            .unwrap();
        let e_sl = sl_idx
            .entries()
            .iter()
            .find(|e| e.name == "sales.profit")
            .unwrap();
        assert!(e_dsl.content.contains("cost"), "{e_dsl:?}");
        assert!(!e_sl.content.contains("cost_amt - "), "{e_sl:?}");
    }
}
