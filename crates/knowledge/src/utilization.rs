//! Knowledge utilization (paper §IV-C): query rewrite → retrieval → DSL
//! translation, packaged as the grounding front-end every DataLab agent
//! calls before generating artifacts.

use crate::dsl::{validate_dsl_json, DslSpec};
use crate::graph::KnowledgeGraph;
use crate::index::KnowledgeIndex;
use crate::retrieval::{render_knowledge, retrieve, RetrievalConfig};
use datalab_llm::{LanguageModel, Prompt};
use datalab_telemetry::Telemetry;

/// How much knowledge the grounding pipeline is allowed to use — the
/// ablation axis of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnowledgeSetting {
    /// S1: schema only, no knowledge.
    None,
    /// S2: descriptions/usage/tags only (no calculation logic, no values).
    Partial,
    /// S3: everything.
    Full,
}

/// The output of the grounding pipeline.
#[derive(Debug, Clone)]
pub struct GroundingContext {
    /// The rewritten (clarified, temporally standardised) query.
    pub rewritten_query: String,
    /// Knowledge lines for the prompt's `knowledge` section.
    pub knowledge_lines: String,
    /// The validated DSL spec, when translation succeeded.
    pub dsl: Option<DslSpec>,
    /// Raw DSL JSON as emitted by the model.
    pub dsl_json: String,
    /// Validation errors, when the spec failed schema validation.
    pub dsl_errors: Vec<String>,
}

/// Configuration for [`incorporate`].
#[derive(Debug, Clone)]
pub struct IncorporateConfig {
    /// Ablation setting.
    pub setting: KnowledgeSetting,
    /// Retrieval parameters.
    pub retrieval: RetrievalConfig,
    /// Retries when DSL validation fails (validation feedback goes back
    /// into the prompt).
    pub dsl_retries: usize,
}

impl Default for IncorporateConfig {
    fn default() -> Self {
        IncorporateConfig {
            setting: KnowledgeSetting::Full,
            retrieval: RetrievalConfig::default(),
            dsl_retries: 1,
        }
    }
}

/// Filters knowledge lines according to the ablation setting.
fn filter_lines(lines: &str, setting: KnowledgeSetting) -> String {
    match setting {
        KnowledgeSetting::None => String::new(),
        KnowledgeSetting::Partial => lines
            .lines()
            // Partial knowledge = descriptions/usage/tags; calculation
            // logic (derived), value semantics and value aliases are the
            // "full" extras.
            .filter(|l| {
                !(l.starts_with("derived ")
                    || l.starts_with("value ")
                    || (l.starts_with("alias ") && l.contains("-> value")))
            })
            .collect::<Vec<_>>()
            .join("\n"),
        KnowledgeSetting::Full => lines.to_string(),
    }
}

/// Runs the full §IV-C pipeline for a query: rewrite → retrieve → render
/// knowledge → translate to DSL → validate (with retry on violations).
///
/// `schema_section` follows the prompt schema contract;
/// `history` carries prior queries of a multi-round session.
#[allow(clippy::too_many_arguments)]
pub fn incorporate(
    llm: &dyn LanguageModel,
    graph: &KnowledgeGraph,
    index: &KnowledgeIndex,
    schema_section: &str,
    query: &str,
    history: &[String],
    current_date: &str,
    config: &IncorporateConfig,
) -> GroundingContext {
    incorporate_traced(
        llm,
        graph,
        index,
        schema_section,
        query,
        history,
        current_date,
        config,
        &Telemetry::new(),
    )
}

/// [`incorporate`] with an observability pipeline: opens `rewrite` and
/// `ground` stage scopes (so model calls attribute per stage) and counts
/// `knowledge.hits` / `dsl.retries`.
#[allow(clippy::too_many_arguments)]
pub fn incorporate_traced(
    llm: &dyn LanguageModel,
    graph: &KnowledgeGraph,
    index: &KnowledgeIndex,
    schema_section: &str,
    query: &str,
    history: &[String],
    current_date: &str,
    config: &IncorporateConfig,
    telemetry: &Telemetry,
) -> GroundingContext {
    // ---- Query rewrite -----------------------------------------------------
    let rewritten = {
        let _stage = telemetry.stage("rewrite");
        llm.complete(
            &Prompt::new("rewrite")
                .section("question", query)
                .section("history", history.join("\n"))
                .section("current_date", current_date)
                .render(),
        )
        .trim()
        .to_string()
    };
    let rewritten = if rewritten.is_empty() {
        query.to_string()
    } else {
        rewritten
    };

    let ground_stage = telemetry.stage("ground");

    // ---- Knowledge retrieval ------------------------------------------------
    // Two passes: jargon discovered in the first pass expands the query
    // ("gmv" → "total income"), and the expanded query retrieves the
    // knowledge the jargon actually points at.
    let knowledge_lines = if config.setting == KnowledgeSetting::None || graph.is_empty() {
        telemetry.record_event(
            datalab_telemetry::EventKind::KnowledgeMiss,
            "retrieval skipped: knowledge disabled or graph empty",
        );
        String::new()
    } else {
        let mut retrieved = retrieve(llm, graph, index, &rewritten, &config.retrieval);
        let mut expanded = rewritten.clone();
        for r in &retrieved {
            let node = graph.node(r.node);
            if node.kind == crate::graph::NodeKind::Jargon {
                if let Some(exp) = node.components.get("expansion") {
                    let lower = expanded.to_lowercase();
                    if let Some(pos) = lower.find(&node.name.to_lowercase()) {
                        let end = pos + node.name.len();
                        expanded = format!("{}{}{}", &expanded[..pos], exp, &expanded[end..]);
                    }
                }
            }
        }
        if expanded != rewritten {
            for extra in retrieve(llm, graph, index, &expanded, &config.retrieval) {
                if !retrieved.iter().any(|r| r.node == extra.node) {
                    retrieved.push(extra);
                }
            }
        }
        telemetry
            .metrics()
            .incr("knowledge.hits", retrieved.len() as u64);
        if retrieved.is_empty() {
            telemetry.record_event(
                datalab_telemetry::EventKind::KnowledgeMiss,
                "retrieval returned no grounding items",
            );
        } else {
            telemetry.record_event(
                datalab_telemetry::EventKind::KnowledgeHit,
                format!("{} grounding items retrieved", retrieved.len()),
            );
        }
        ground_stage.attr("knowledge_hits", retrieved.len().to_string());
        filter_lines(&render_knowledge(graph, &retrieved), config.setting)
    };

    // ---- DSL translation with validation feedback ----------------------------
    let mut dsl_json = String::new();
    let mut dsl = None;
    let mut dsl_errors = Vec::new();
    for attempt in 0..=config.dsl_retries {
        if attempt > 0 {
            telemetry.metrics().incr("dsl.retries", 1);
            telemetry.record_event(
                datalab_telemetry::EventKind::Retry,
                format!("nl2dsl attempt {attempt}"),
            );
        }
        let mut prompt = Prompt::new("nl2dsl")
            .section("schema", schema_section)
            .section("knowledge", knowledge_lines.clone())
            .section("current_date", current_date)
            .section("question", rewritten.clone());
        if attempt > 0 && !dsl_errors.is_empty() {
            prompt = prompt.section(
                "feedback",
                format!("previous spec failed validation: {}", dsl_errors.join("; ")),
            );
        }
        dsl_json = llm.complete(&prompt.render());
        match validate_dsl_json(&dsl_json) {
            Ok(spec) => {
                dsl = Some(spec);
                dsl_errors.clear();
                break;
            }
            Err(errors) => dsl_errors = errors,
        }
    }
    drop(ground_stage);

    GroundingContext {
        rewritten_query: rewritten,
        knowledge_lines,
        dsl,
        dsl_json,
        dsl_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ColumnKnowledge, DerivedColumn, TableKnowledge};
    use crate::index::IndexTask;
    use datalab_llm::SimLlm;

    fn setup() -> (KnowledgeGraph, KnowledgeIndex) {
        let mut g = KnowledgeGraph::new();
        g.ingest_table(
            "biz",
            &TableKnowledge {
                name: "sales".into(),
                description: "daily product revenue".into(),
                columns: vec![ColumnKnowledge {
                    name: "shouldincome_after".into(),
                    dtype: "float".into(),
                    description: "income revenue after tax".into(),
                    aliases: vec!["income".into()],
                    ..Default::default()
                }],
                derived: vec![DerivedColumn {
                    name: "profit".into(),
                    calculation: "shouldincome_after - cost_amt".into(),
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        let idx = KnowledgeIndex::build(&g, IndexTask::Nl2Dsl);
        (g, idx)
    }

    fn schema() -> &'static str {
        "table sales: region (str), shouldincome_after (float), cost_amt (float), ftime (date)"
    }

    #[test]
    fn full_knowledge_grounds_the_dsl() {
        let (g, idx) = setup();
        let llm = SimLlm::gpt4();
        let ctx = incorporate(
            &llm,
            &g,
            &idx,
            schema(),
            "total income by region this year",
            &[],
            "2026-07-06",
            &IncorporateConfig::default(),
        );
        assert!(
            ctx.rewritten_query.contains("in 2026"),
            "{}",
            ctx.rewritten_query
        );
        let dsl = ctx.dsl.expect("valid DSL");
        assert_eq!(
            dsl.measure_list[0].column.as_deref(),
            Some("shouldincome_after")
        );
        assert_eq!(dsl.dimension_list[0].column, "region");
        assert!(!ctx.knowledge_lines.is_empty());
    }

    #[test]
    fn setting_none_strips_knowledge() {
        let (g, idx) = setup();
        let llm = SimLlm::gpt4();
        let cfg = IncorporateConfig {
            setting: KnowledgeSetting::None,
            ..Default::default()
        };
        let ctx = incorporate(
            &llm,
            &g,
            &idx,
            schema(),
            "total income by region",
            &[],
            "2026-07-06",
            &cfg,
        );
        assert!(ctx.knowledge_lines.is_empty());
        // Without the alias, "income" cannot ground to shouldincome_after.
        let ungrounded = ctx
            .dsl
            .map(|d| {
                d.measure_list
                    .iter()
                    .all(|m| m.column.as_deref() != Some("shouldincome_after"))
            })
            .unwrap_or(true);
        assert!(ungrounded);
    }

    #[test]
    fn partial_setting_drops_derived_logic() {
        let (g, idx) = setup();
        let llm = SimLlm::gpt4();
        let full = incorporate(
            &llm,
            &g,
            &idx,
            schema(),
            "total profit by region",
            &[],
            "2026-07-06",
            &IncorporateConfig::default(),
        );
        let partial = incorporate(
            &llm,
            &g,
            &idx,
            schema(),
            "total profit by region",
            &[],
            "2026-07-06",
            &IncorporateConfig {
                setting: KnowledgeSetting::Partial,
                ..Default::default()
            },
        );
        assert!(
            full.knowledge_lines.contains("derived sales.profit"),
            "{}",
            full.knowledge_lines
        );
        assert!(
            !partial.knowledge_lines.contains("derived sales.profit"),
            "{}",
            partial.knowledge_lines
        );
        // Only the full setting can compute the derived measure.
        let has_profit = |c: &GroundingContext| {
            c.dsl
                .as_ref()
                .map(|d| d.measure_list.iter().any(|m| m.expr.is_some()))
                .unwrap_or(false)
        };
        assert!(has_profit(&full));
        assert!(!has_profit(&partial));
    }
}
