//! LLM-based knowledge generation (paper §IV-A, Algorithm 1): a
//! Map-Reduce process over a table's script history with a
//! self-calibration feedback loop.

use crate::components::{ColumnKnowledge, DerivedColumn, Lineage, Script, TableKnowledge};
use datalab_llm::util::{split_ident, token_overlap, words};
use datalab_llm::{LanguageModel, Prompt};
use datalab_telemetry::Telemetry;
use serde_json::Value as Json;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Configuration for Algorithm 1.
#[derive(Debug, Clone)]
pub struct GenerationConfig {
    /// Self-calibration score threshold `T` (1-5 scale).
    pub score_threshold: f64,
    /// Maximum map-phase attempts per script before accepting the best.
    pub max_attempts: usize,
    /// Near-duplicate script filter threshold (token overlap).
    pub dedup_overlap: f64,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            score_threshold: 4.5,
            max_attempts: 3,
            dedup_overlap: 0.92,
        }
    }
}

/// Statistics from one table's generation run (feeds the §VII-C1 report).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenerationReport {
    /// Scripts after preprocessing.
    pub scripts_used: usize,
    /// Scripts dropped as (near-)duplicates.
    pub scripts_deduped: usize,
    /// Total LLM map-phase attempts (including calibration retries).
    pub map_attempts: usize,
    /// Final self-calibration scores accepted per script.
    pub final_scores: Vec<f64>,
}

/// One intermediate (per-script) extraction result.
#[derive(Debug, Clone, Default)]
struct MapResult {
    table_description: String,
    table_usage: String,
    columns: Vec<(String, String, String, Vec<String>, String)>, // name, desc, usage, tags, dtype
    derived: Vec<(String, String, String)>,                      // name, expr, desc
}

/// Filters duplicated or highly similar scripts (Algorithm 1, line 2).
pub fn preprocess_scripts(history: &[Script], dedup_overlap: f64) -> (Vec<&Script>, usize) {
    let mut kept: Vec<&Script> = Vec::new();
    let mut kept_tokens: Vec<Vec<String>> = Vec::new();
    let mut dropped = 0;
    for s in history {
        let toks = words(&s.text);
        let dup = kept_tokens
            .iter()
            .any(|k| token_overlap(k, &toks) >= dedup_overlap);
        if dup {
            dropped += 1;
        } else {
            kept.push(s);
            kept_tokens.push(toks);
        }
    }
    (kept, dropped)
}

/// Runs Algorithm 1 for one table.
///
/// `schema_line` must follow the prompt schema contract, e.g.
/// `table sales: region (str), amount (int)`. `prior` carries already
/// generated knowledge of other tables so lineage can impute metadata for
/// script-poor tables.
pub fn generate_table_knowledge(
    llm: &dyn LanguageModel,
    table: &str,
    schema_line: &str,
    history: &[Script],
    lineage: &Lineage,
    prior: &BTreeMap<String, TableKnowledge>,
    config: &GenerationConfig,
) -> (TableKnowledge, GenerationReport) {
    generate_table_knowledge_traced(
        llm,
        table,
        schema_line,
        history,
        lineage,
        prior,
        config,
        &Telemetry::new(),
    )
}

/// [`generate_table_knowledge`] with an observability pipeline: the whole
/// run sits under a `knowledge.generate` span and every map-phase LLM
/// attempt increments the `knowledge.map_attempts` counter.
#[allow(clippy::too_many_arguments)]
pub fn generate_table_knowledge_traced(
    llm: &dyn LanguageModel,
    table: &str,
    schema_line: &str,
    history: &[Script],
    lineage: &Lineage,
    prior: &BTreeMap<String, TableKnowledge>,
    config: &GenerationConfig,
    telemetry: &Telemetry,
) -> (TableKnowledge, GenerationReport) {
    let stage = telemetry.stage("knowledge.generate");
    stage.attr("table", table.to_string());
    let (scripts, deduped) = preprocess_scripts(history, config.dedup_overlap);
    let mut report = GenerationReport {
        scripts_used: scripts.len(),
        scripts_deduped: deduped,
        ..Default::default()
    };

    // ---- Map phase with self-calibration --------------------------------
    let mut map_results: Vec<MapResult> = Vec::new();
    for script in &scripts {
        let mut best: Option<(f64, MapResult)> = None;
        for attempt in 0..config.max_attempts {
            report.map_attempts += 1;
            telemetry.metrics().incr("knowledge.map_attempts", 1);
            let out = llm.complete(
                &Prompt::new("extract_knowledge")
                    .section("schema", schema_line)
                    .section("table", table)
                    .section("script", script.text.clone())
                    .section("attempt", attempt.to_string())
                    .render(),
            );
            let score: f64 = llm
                .complete(
                    &Prompt::new("score_knowledge")
                        .section("content", out.clone())
                        .render(),
                )
                .trim()
                .parse()
                .unwrap_or(1.0);
            let parsed = parse_map_output(&out);
            let better = best.as_ref().map(|(s, _)| score > *s).unwrap_or(true);
            if better {
                best = Some((score, parsed));
            }
            if score >= config.score_threshold {
                break;
            }
        }
        if let Some((score, parsed)) = best {
            report.final_scores.push(score);
            map_results.push(parsed);
        }
    }

    // ---- Reduce phase -----------------------------------------------------
    let mut tk = reduce(table, &map_results);

    // ---- Lineage imputation for script-poor tables -------------------------
    if tk.columns.is_empty() {
        for up in lineage.upstream.iter().chain(lineage.downstream.iter()) {
            if let Some(up_tk) = prior.get(&up.to_lowercase()) {
                for col in &up_tk.columns {
                    // Same-named columns across lineage inherit descriptions.
                    if schema_line
                        .to_lowercase()
                        .contains(&col.name.to_lowercase())
                        && tk.column(&col.name).is_none()
                    {
                        let mut inherited = col.clone();
                        inherited.usage = format!("inherited via lineage from {}", up_tk.name);
                        tk.columns.push(inherited);
                    }
                }
                if tk.description.is_empty() && !up_tk.description.is_empty() {
                    tk.description = format!("related to {}: {}", up_tk.name, up_tk.description);
                }
            }
        }
    }

    // ---- Alias derivation ---------------------------------------------------
    derive_aliases(&mut tk);

    (tk, report)
}

fn parse_map_output(text: &str) -> MapResult {
    let json: Json = serde_json::from_str(text.trim()).unwrap_or(Json::Null);
    let mut r = MapResult {
        table_description: json["table"]["description"]
            .as_str()
            .unwrap_or("")
            .to_string(),
        table_usage: json["table"]["usage"].as_str().unwrap_or("").to_string(),
        ..MapResult::default()
    };
    if let Some(cols) = json["columns"].as_array() {
        for c in cols {
            let name = c["name"].as_str().unwrap_or("").to_string();
            if name.is_empty() {
                continue;
            }
            let tags = c["tags"]
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(|t| t.as_str().map(String::from))
                        .collect()
                })
                .unwrap_or_default();
            r.columns.push((
                name,
                c["description"].as_str().unwrap_or("").to_string(),
                c["usage"].as_str().unwrap_or("").to_string(),
                tags,
                c["dtype"].as_str().unwrap_or("").to_string(),
            ));
        }
    }
    if let Some(derived) = json["derived"].as_array() {
        for d in derived {
            let name = d["name"].as_str().unwrap_or("").to_string();
            let expr = d["expr"].as_str().unwrap_or("").to_string();
            if !name.is_empty() && !expr.is_empty() {
                r.derived.push((
                    name,
                    expr,
                    d["description"].as_str().unwrap_or("").to_string(),
                ));
            }
        }
    }
    r
}

/// Synthesises the per-script results into one consistent set of
/// components (Algorithm 1, reduce phase).
fn reduce(table: &str, results: &[MapResult]) -> TableKnowledge {
    let mut tk = TableKnowledge {
        name: table.to_string(),
        ..Default::default()
    };
    // Table description: synthesise across scripts — each script reveals
    // one usage pattern; the union of their distinct vocabulary covers
    // the table (the reduce-phase "aggregate and summarize").
    let mut seen_words: HashSet<String> = HashSet::new();
    let mut desc_parts: Vec<String> = Vec::new();
    for r in results {
        let fresh: Vec<String> = words(&r.table_description)
            .into_iter()
            .filter(|w| seen_words.insert(w.clone()))
            .collect();
        if !fresh.is_empty() {
            desc_parts.push(fresh.join(" "));
        }
        if r.table_usage.len() > tk.usage.len() {
            tk.usage = r.table_usage.clone();
        }
    }
    tk.description = desc_parts.join(" ");
    if tk.description.len() > 400 {
        tk.description.truncate(400);
    }
    if !results.is_empty() {
        tk.usage = format!(
            "{} (referenced by {} processing scripts)",
            if tk.usage.is_empty() {
                "data processing"
            } else {
                &tk.usage
            },
            results.len()
        );
    }
    // Columns: merge per name.
    let mut col_order: Vec<String> = Vec::new();
    let mut merged: HashMap<String, ColumnKnowledge> = HashMap::new();
    let mut freq: HashMap<String, usize> = HashMap::new();
    for r in results {
        for (name, desc, usage, tags, dtype) in &r.columns {
            let key = name.to_lowercase();
            *freq.entry(key.clone()).or_insert(0) += 1;
            let entry = merged.entry(key.clone()).or_insert_with(|| {
                col_order.push(key.clone());
                ColumnKnowledge {
                    name: name.clone(),
                    dtype: dtype.clone(),
                    ..Default::default()
                }
            });
            if desc.len() > entry.description.len() {
                entry.description = desc.clone();
            }
            if !usage.is_empty() && !entry.usage.contains(usage.as_str()) {
                if !entry.usage.is_empty() {
                    entry.usage.push_str("; ");
                }
                entry.usage.push_str(usage);
            }
            for t in tags {
                if !entry.tags.contains(t) {
                    entry.tags.push(t.clone());
                }
            }
        }
    }
    tk.columns = col_order.iter().map(|k| merged[k].clone()).collect();
    // Key columns: the most frequently used ones.
    let mut by_freq: Vec<(&String, &usize)> = freq.iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    tk.key_columns = by_freq
        .iter()
        .take(3)
        .map(|(k, _)| merged[*k].name.clone())
        .collect();
    // Derived columns: union by name, prefer longest description.
    let mut derived: HashMap<String, DerivedColumn> = HashMap::new();
    let mut d_order: Vec<String> = Vec::new();
    for r in results {
        for (name, expr, desc) in &r.derived {
            let key = name.to_lowercase();
            let entry = derived.entry(key.clone()).or_insert_with(|| {
                d_order.push(key.clone());
                DerivedColumn {
                    name: name.clone(),
                    calculation: expr.clone(),
                    related_columns: words(expr)
                        .into_iter()
                        .filter(|w| w.chars().any(|c| c.is_alphabetic()))
                        .collect(),
                    ..Default::default()
                }
            });
            if desc.len() > entry.description.len() {
                entry.description = desc.clone();
            }
        }
    }
    tk.derived = d_order.iter().map(|k| derived[k].clone()).collect();
    tk.key_derived = tk.derived.iter().map(|d| d.name.clone()).collect();
    tk.tags = vec!["script-derived".into()];
    tk
}

const ALIAS_STOP: &[&str] = &[
    "the",
    "and",
    "for",
    "with",
    "from",
    "used",
    "table",
    "column",
    "data",
    "daily",
    "after",
    "value",
    "values",
    "this",
    "that",
    "per",
    "each",
    "all",
    "weekly",
    "monthly",
    "rollup",
    "breakdown",
    "covering",
    "team",
    "monitoring",
    "report",
    "reporting",
    "total",
    "metric",
    "metrics",
];

/// Derives alias terms for columns whose descriptions contain contentful
/// words absent from the identifier itself — these are exactly the words
/// users will say instead of the cryptic column name.
fn derive_aliases(tk: &mut TableKnowledge) {
    for col in &mut tk.columns {
        let ident: HashSet<String> = split_ident(&col.name).into_iter().collect();
        let mut candidates: Vec<String> = Vec::new();
        for w in words(&col.description) {
            if w.len() > 3
                && !ALIAS_STOP.contains(&w.as_str())
                && !ident.contains(&w)
                && !candidates.contains(&w)
            {
                candidates.push(w);
            }
        }
        col.aliases = candidates.into_iter().take(3).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_llm::SimLlm;

    fn schema_line() -> &'static str {
        "table sales: region (str), shouldincome_after (float), cost_amt (float), ftime (date)"
    }

    fn scripts() -> Vec<Script> {
        vec![
            Script::sql(
                "-- income after tax rollup for finance reporting\n\
                 SELECT region, SUM(shouldincome_after) AS total_income,\n\
                 shouldincome_after - cost_amt AS profit\n\
                 FROM sales WHERE ftime >= '2024-01-01' GROUP BY region",
            ),
            Script::sql(
                "-- weekly cost monitoring\n\
                 SELECT region, AVG(cost_amt) AS avg_cost FROM sales GROUP BY region",
            ),
            // Near-duplicate of the first (should be deduped).
            Script::sql(
                "-- income after tax rollup for finance reporting\n\
                 SELECT region, SUM(shouldincome_after) AS total_income,\n\
                 shouldincome_after - cost_amt AS profit\n\
                 FROM sales WHERE ftime >= '2024-02-01' GROUP BY region",
            ),
        ]
    }

    #[test]
    fn preprocess_dedups() {
        let s = scripts();
        let (kept, dropped) = preprocess_scripts(&s, 0.92);
        assert_eq!(kept.len(), 2);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn generates_column_and_derived_knowledge() {
        let llm = SimLlm::gpt4();
        let (tk, report) = generate_table_knowledge(
            &llm,
            "sales",
            schema_line(),
            &scripts(),
            &Lineage::default(),
            &BTreeMap::new(),
            &GenerationConfig::default(),
        );
        assert_eq!(report.scripts_used, 2);
        assert!(report.map_attempts >= 2);
        let income = tk.column("shouldincome_after").expect("column knowledge");
        assert!(income.usage.contains("sum"), "{income:?}");
        assert!(income.description.contains("income"), "{income:?}");
        // Alias derivation: description words not in the identifier.
        assert!(!income.aliases.is_empty());
        assert!(
            tk.derived.iter().any(|d| d.name == "profit"),
            "{:?}",
            tk.derived
        );
        assert!(!tk.key_columns.is_empty());
    }

    #[test]
    fn lineage_imputes_for_scriptless_tables() {
        let llm = SimLlm::gpt4();
        let mut prior = BTreeMap::new();
        let (up, _) = generate_table_knowledge(
            &llm,
            "sales",
            schema_line(),
            &scripts(),
            &Lineage::default(),
            &BTreeMap::new(),
            &GenerationConfig::default(),
        );
        prior.insert("sales".to_string(), up);
        let (tk, _) = generate_table_knowledge(
            &llm,
            "sales_agg",
            "table sales_agg: region (str), shouldincome_after (float)",
            &[],
            &Lineage {
                upstream: vec!["sales".into()],
                downstream: vec![],
            },
            &prior,
            &GenerationConfig::default(),
        );
        let col = tk.column("shouldincome_after").expect("inherited column");
        assert!(col.usage.contains("lineage"), "{col:?}");
    }

    #[test]
    fn empty_history_without_lineage_yields_minimal_knowledge() {
        let llm = SimLlm::gpt4();
        let (tk, report) = generate_table_knowledge(
            &llm,
            "t",
            "table t: a (int)",
            &[],
            &Lineage::default(),
            &BTreeMap::new(),
            &GenerationConfig::default(),
        );
        assert_eq!(report.scripts_used, 0);
        assert!(tk.columns.is_empty());
    }
}
