//! Scalar values and data types for the DataFrame engine.

use crate::error::{FrameError, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A calendar date (proleptic Gregorian), day precision.
///
/// BI data is overwhelmingly day-grained (`ftime`, partition dates); this
/// small type supports parsing, ordering, arithmetic by days/months, and
/// formatting as `YYYY-MM-DD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u32,
    day: u32,
}

impl Date {
    /// Creates a date, validating month/day ranges.
    pub fn new(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
            return Err(FrameError::InvalidDate(format!(
                "{year}-{month:02}-{day:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Parses `YYYY-MM-DD` (also accepts `YYYY/MM/DD`).
    pub fn parse(s: &str) -> Result<Self> {
        let norm = s.trim().replace('/', "-");
        let mut parts = norm.splitn(3, '-');
        let (y, m, d) = (parts.next(), parts.next(), parts.next());
        match (y, m, d) {
            (Some(y), Some(m), Some(d)) => {
                let year = y
                    .parse::<i32>()
                    .map_err(|_| FrameError::InvalidDate(s.into()))?;
                let month = m
                    .parse::<u32>()
                    .map_err(|_| FrameError::InvalidDate(s.into()))?;
                let day = d
                    .parse::<u32>()
                    .map_err(|_| FrameError::InvalidDate(s.into()))?;
                Date::new(year, month, day)
            }
            _ => Err(FrameError::InvalidDate(s.into())),
        }
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1-12).
    pub fn month(&self) -> u32 {
        self.month
    }

    /// Day component (1-31).
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn to_epoch_days(&self) -> i64 {
        // Howard Hinnant's days_from_civil algorithm.
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Constructs a date from days since 1970-01-01.
    pub fn from_epoch_days(days: i64) -> Self {
        // Inverse of days_from_civil.
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        Date {
            year,
            month: m,
            day: d,
        }
    }

    /// Adds (or subtracts, if negative) a number of days.
    pub fn add_days(&self, days: i64) -> Self {
        Date::from_epoch_days(self.to_epoch_days() + days)
    }

    /// Adds months, clamping the day to the target month length.
    pub fn add_months(&self, months: i32) -> Self {
        let total = self.year * 12 + (self.month as i32 - 1) + months;
        let year = total.div_euclid(12);
        let month = (total.rem_euclid(12) + 1) as u32;
        let day = self.day.min(days_in_month(year, month));
        Date { year, month, day }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// The logical type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Calendar date.
    Date,
    /// Only nulls observed; coerces to anything.
    Null,
}

impl DataType {
    /// True for `Int` and `Float` — the types measures can be built from.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Whether a value of `other` can be stored in a column of `self`.
    pub fn accepts(&self, other: DataType) -> bool {
        *self == other
            || other == DataType::Null
            || (*self == DataType::Float && other == DataType::Int)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Date => "date",
            DataType::Null => "null",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed scalar value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / missing data.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// The value's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats become `f64`, everything else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (exact ints only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Total ordering over all values, usable for ORDER BY and sorting:
    /// nulls sort first, then booleans, then numbers (ints and floats are
    /// compared numerically as one class), then dates, then strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Date(_) => 3,
                Str(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => class(self).cmp(&class(other)),
        }
    }

    /// Equality with a small tolerance on floats, used by the
    /// execution-accuracy (EX) comparison where engines round differently.
    pub fn approx_eq(&self, other: &Value, rel_tol: f64) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => {
                if a == b {
                    true
                } else {
                    let scale = a.abs().max(b.abs()).max(1.0);
                    (a - b).abs() <= rel_tol * scale
                }
            }
            _ => self.total_cmp(other) == Ordering::Equal,
        }
    }

    /// A canonical string form used for display and CSV output. `Null`
    /// prints as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{:.1}", f)
                } else {
                    format!("{}", f)
                }
            }
            Value::Str(s) => s.clone(),
            Value::Date(d) => d.to_string(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally: hash
            // every number through a canonical f64 bit pattern.
            Value::Int(i) => {
                2u8.hash(state);
                canonical_f64_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                canonical_f64_bits(*f).hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

fn canonical_f64_bits(f: f64) -> u64 {
    if f == 0.0 {
        0u64 // unify +0.0 and -0.0
    } else if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            f.write_str("NULL")
        } else {
            f.write_str(&self.render())
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2024, 12, 31),
            (1969, 12, 31),
            (2026, 7, 6),
        ] {
            let date = Date::new(y, m, d).unwrap();
            assert_eq!(Date::from_epoch_days(date.to_epoch_days()), date);
        }
    }

    #[test]
    fn date_parse_and_display() {
        let d = Date::parse("2024-03-05").unwrap();
        assert_eq!(d.to_string(), "2024-03-05");
        assert_eq!(Date::parse("2024/03/05").unwrap(), d);
        assert!(Date::parse("2024-13-01").is_err());
        assert!(Date::parse("2023-02-29").is_err());
        assert!(Date::parse("garbage").is_err());
    }

    #[test]
    fn date_arithmetic() {
        let d = Date::parse("2024-01-31").unwrap();
        assert_eq!(d.add_months(1).to_string(), "2024-02-29");
        assert_eq!(d.add_days(1).to_string(), "2024-02-01");
        assert_eq!(d.add_months(-13).to_string(), "2022-12-31");
    }

    #[test]
    fn value_total_order() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::Str("b".into()));
    }

    #[test]
    fn int_float_equality_and_hash() {
        use std::collections::HashSet;
        assert_eq!(Value::Int(2), Value::Float(2.0));
        let mut set = HashSet::new();
        set.insert(Value::Int(2));
        assert!(set.contains(&Value::Float(2.0)));
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(Value::Float(100.0).approx_eq(&Value::Float(100.0000001), 1e-6));
        assert!(!Value::Float(100.0).approx_eq(&Value::Float(101.0), 1e-6));
        assert!(Value::Str("x".into()).approx_eq(&Value::Str("x".into()), 1e-6));
    }

    #[test]
    fn dtype_accepts() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(DataType::Int.accepts(DataType::Null));
        assert!(!DataType::Int.accepts(DataType::Float));
    }
}
