//! Minimal CSV reader/writer with type inference, used to move workload
//! data in and out of the engine.

use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Date, Value};

/// Serialises a frame to RFC-4180-style CSV (header row included).
pub fn to_csv(df: &DataFrame) -> String {
    let mut out = String::new();
    let names: Vec<String> = df.schema().names().iter().map(|n| escape(n)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..df.n_rows() {
        let row: Vec<String> = (0..df.n_cols())
            .map(|c| escape(&df.column_at(c)[i].render()))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parses CSV text into a frame, inferring each column's type from its
/// values (int ⊂ float; dates recognised as `YYYY-MM-DD`; `true`/`false`
/// as booleans; empty fields as nulls; everything else as strings).
pub fn from_csv(text: &str) -> Result<DataFrame> {
    let rows = parse_rows(text)?;
    let mut iter = rows.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| FrameError::Csv("empty input".into()))?;
    let records: Vec<Vec<String>> = iter.collect();
    let width = header.len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(FrameError::Csv(format!(
                "row {} has {} fields, expected {width}",
                i + 2,
                r.len()
            )));
        }
    }
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(width);
    let mut fields = Vec::with_capacity(width);
    for c in 0..width {
        let raw: Vec<&str> = records.iter().map(|r| r[c].as_str()).collect();
        let dtype = infer_type(&raw);
        let values: Vec<Value> = raw.iter().map(|s| parse_value(s, dtype)).collect();
        fields.push(Field::new(header[c].clone(), dtype));
        columns.push(values);
    }
    let mut df = DataFrame::new(Schema::new(fields)?);
    let n = records.len();
    for i in 0..n {
        let row: Vec<Value> = columns.iter().map(|col| col[i].clone()).collect();
        df.push_row(row)?;
    }
    Ok(df)
}

/// Parses CSV rows against a known schema — the ingestion path, where
/// the table already fixed the types. The header must name every schema
/// column exactly once (case-insensitive, any order); every value must
/// fit its column's type or the whole parse fails (no inference, no
/// silent nulling — empty fields are still nulls). All-or-nothing: the
/// first bad row rejects the batch.
pub fn from_csv_with_schema(text: &str, schema: &Schema) -> Result<DataFrame> {
    let rows = parse_rows(text)?;
    let mut iter = rows.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| FrameError::Csv("empty input".into()))?;
    if header.len() != schema.len() {
        return Err(FrameError::Csv(format!(
            "header has {} columns, table has {}",
            header.len(),
            schema.len()
        )));
    }
    let mut positions = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let hits: Vec<usize> = header
            .iter()
            .enumerate()
            .filter(|(_, h)| h.trim().eq_ignore_ascii_case(&field.name))
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [at] => positions.push(*at),
            [] => {
                return Err(FrameError::Csv(format!(
                    "header is missing table column `{}`",
                    field.name
                )))
            }
            _ => {
                return Err(FrameError::Csv(format!(
                    "header names column `{}` more than once",
                    field.name
                )))
            }
        }
    }
    let mut df = DataFrame::new(schema.clone());
    for (i, record) in iter.enumerate() {
        if record.len() != header.len() {
            return Err(FrameError::Csv(format!(
                "row {} has {} fields, expected {}",
                i + 2,
                record.len(),
                header.len()
            )));
        }
        let mut row = Vec::with_capacity(schema.len());
        for (field, &at) in schema.fields().iter().zip(&positions) {
            let raw = record[at].trim();
            if raw.is_empty() {
                row.push(Value::Null);
                continue;
            }
            let fits = match field.dtype {
                DataType::Int => raw.parse::<i64>().is_ok(),
                DataType::Float => raw.parse::<f64>().is_ok(),
                DataType::Bool => {
                    raw.eq_ignore_ascii_case("true") || raw.eq_ignore_ascii_case("false")
                }
                DataType::Date => Date::parse(raw).is_ok(),
                DataType::Str => true,
                // An all-null column never established a type; only
                // further nulls fit it.
                DataType::Null => false,
            };
            if !fits {
                return Err(FrameError::Csv(format!(
                    "row {}: `{raw}` does not fit column `{}` ({})",
                    i + 2,
                    field.name,
                    field.dtype
                )));
            }
            row.push(parse_value(raw, field.dtype));
        }
        df.push_row(row)?;
    }
    Ok(df)
}

fn infer_type(raw: &[&str]) -> DataType {
    let mut saw_any = false;
    let (mut int, mut float, mut boolean, mut date) = (true, true, true, true);
    for s in raw {
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        saw_any = true;
        if s.parse::<i64>().is_err() {
            int = false;
        }
        if s.parse::<f64>().is_err() {
            float = false;
        }
        if !s.eq_ignore_ascii_case("true") && !s.eq_ignore_ascii_case("false") {
            boolean = false;
        }
        if Date::parse(s).is_err() {
            date = false;
        }
    }
    if !saw_any {
        DataType::Null
    } else if boolean {
        DataType::Bool
    } else if int {
        DataType::Int
    } else if float {
        DataType::Float
    } else if date {
        DataType::Date
    } else {
        DataType::Str
    }
}

fn parse_value(s: &str, dtype: DataType) -> Value {
    let s = s.trim();
    if s.is_empty() {
        return Value::Null;
    }
    match dtype {
        DataType::Int => s.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        DataType::Float => s.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        DataType::Bool => Value::Bool(s.eq_ignore_ascii_case("true")),
        DataType::Date => Date::parse(s).map(Value::Date).unwrap_or(Value::Null),
        DataType::Str | DataType::Null => Value::Str(s.to_string()),
    }
}

/// Splits CSV text into rows of unescaped fields.
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv("unterminated quoted field".into()));
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_inference() {
        let csv = "name,score,when,ok\nalice,1.5,2024-01-02,true\n\"bo,b\",2,2024-02-03,false\n";
        let df = from_csv(csv).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.schema().field("score").unwrap().dtype, DataType::Float);
        assert_eq!(df.schema().field("when").unwrap().dtype, DataType::Date);
        assert_eq!(df.schema().field("ok").unwrap().dtype, DataType::Bool);
        assert_eq!(df.column("name").unwrap()[1], Value::Str("bo,b".into()));
        let back = from_csv(&to_csv(&df)).unwrap();
        assert_eq!(back, df);
    }

    #[test]
    fn empty_fields_become_null() {
        let df = from_csv("a,b\n1,\n,2\n").unwrap();
        assert!(df.column("a").unwrap()[1].is_null());
        assert!(df.column("b").unwrap()[0].is_null());
    }

    #[test]
    fn mixed_types_fall_back_to_string() {
        let df = from_csv("x\n1\nfoo\n").unwrap();
        assert_eq!(df.schema().field("x").unwrap().dtype, DataType::Str);
    }

    #[test]
    fn quoted_newlines_and_quotes() {
        let df = from_csv("a\n\"line1\nline2\"\n\"has \"\"q\"\"\"\n").unwrap();
        assert_eq!(
            df.column("a").unwrap()[0],
            Value::Str("line1\nline2".into())
        );
        assert_eq!(df.column("a").unwrap()[1], Value::Str("has \"q\"".into()));
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(from_csv("a,b\n1\n").is_err());
    }

    #[test]
    fn schema_checked_parse_accepts_reordered_headers() {
        let base = from_csv("name,score\nalice,1.5\n").unwrap();
        let df = from_csv_with_schema("SCORE,Name\n2.5,bob\n,carol\n", base.schema()).unwrap();
        assert_eq!(df.schema(), base.schema());
        assert_eq!(df.column("name").unwrap()[0], Value::Str("bob".into()));
        assert_eq!(df.column("score").unwrap()[0], Value::Float(2.5));
        assert!(df.column("score").unwrap()[1].is_null());
    }

    #[test]
    fn schema_checked_parse_is_all_or_nothing() {
        let base = from_csv("name,score\nalice,1.5\n").unwrap();
        // A type mismatch anywhere rejects the whole batch.
        assert!(from_csv_with_schema("name,score\nbob,2.5\ncarol,oops\n", base.schema()).is_err());
        // Missing, extra, and duplicated columns are rejected.
        assert!(from_csv_with_schema("name\nbob\n", base.schema()).is_err());
        assert!(from_csv_with_schema("name,score,extra\nbob,1,2\n", base.schema()).is_err());
        assert!(from_csv_with_schema("name,name\nbob,1\n", base.schema()).is_err());
        // Bools are strict true/false, never coerced.
        let flags = from_csv("ok\ntrue\n").unwrap();
        assert!(from_csv_with_schema("ok\nmaybe\n", flags.schema()).is_err());
    }
}
