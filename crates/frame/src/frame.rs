//! The column-major in-memory DataFrame and its relational operations.

use crate::agg::AggExpr;
use crate::error::{FrameError, Result};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Join flavours supported by [`DataFrame::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching rows.
    Inner,
    /// Keep every left row; unmatched right columns become `Null`.
    Left,
}

/// An in-memory, column-major table.
///
/// Rows are addressed by index; columns by (case-insensitive) name through
/// the [`Schema`]. All operations are immutable and return new frames,
/// except [`DataFrame::push_row`] which appends in place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataFrame {
    schema: Schema,
    columns: Vec<Vec<Value>>,
}

impl DataFrame {
    /// An empty frame with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.len()];
        DataFrame { schema, columns }
    }

    /// Builds a frame from `(name, dtype, values)` triples. All columns
    /// must have equal length and values must match their declared type.
    pub fn from_columns(cols: Vec<(&str, DataType, Vec<Value>)>) -> Result<Self> {
        let schema = Schema::new(
            cols.iter()
                .map(|(n, t, _)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )?;
        let n = cols.first().map(|(_, _, v)| v.len()).unwrap_or(0);
        let mut columns = Vec::with_capacity(cols.len());
        for (name, dtype, values) in cols {
            if values.len() != n {
                return Err(FrameError::LengthMismatch {
                    expected: n,
                    found: values.len(),
                });
            }
            for v in &values {
                if !dtype.accepts(v.dtype()) {
                    return Err(FrameError::TypeMismatch {
                        expected: format!("{dtype} in column {name}"),
                        found: v.dtype().to_string(),
                    });
                }
            }
            columns.push(values);
        }
        Ok(DataFrame { schema, columns })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// Column values by name.
    pub fn column(&self, name: &str) -> Result<&[Value]> {
        let idx = self.schema.require(name)?;
        Ok(&self.columns[idx])
    }

    /// Column values by position.
    pub fn column_at(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// Materialises row `i` as a vector of values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Appends one row, validating width and types.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(FrameError::LengthMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (v, f) in row.iter().zip(self.schema.fields()) {
            if !f.dtype.accepts(v.dtype()) {
                return Err(FrameError::TypeMismatch {
                    expected: format!("{} in column {}", f.dtype, f.name),
                    found: v.dtype().to_string(),
                });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    /// Projects the named columns (in the given order).
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut fields = Vec::with_capacity(names.len());
        let mut columns = Vec::with_capacity(names.len());
        for name in names {
            let idx = self.schema.require(name)?;
            fields.push(self.schema.fields()[idx].clone());
            columns.push(self.columns[idx].clone());
        }
        Ok(DataFrame {
            schema: Schema::new(fields)?,
            columns,
        })
    }

    /// Row subset by index list (indices may repeat or reorder).
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let columns = self
            .columns
            .iter()
            .map(|c| indices.iter().map(|&i| c[i].clone()).collect())
            .collect();
        DataFrame {
            schema: self.schema.clone(),
            columns,
        }
    }

    /// Keeps rows where `mask[i]` is true.
    pub fn filter_mask(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                found: mask.len(),
            });
        }
        let keep: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        Ok(self.take(&keep))
    }

    /// Keeps rows satisfying `pred(row_index)`.
    pub fn filter<F: Fn(usize) -> bool>(&self, pred: F) -> DataFrame {
        let keep: Vec<usize> = (0..self.n_rows()).filter(|&i| pred(i)).collect();
        self.take(&keep)
    }

    /// Stable multi-key sort; `keys` are `(column, ascending)` pairs.
    pub fn sort_by(&self, keys: &[(&str, bool)]) -> Result<DataFrame> {
        let key_idx: Vec<(usize, bool)> = keys
            .iter()
            .map(|(name, asc)| Ok((self.schema.require(name)?, *asc)))
            .collect::<Result<_>>()?;
        let mut order: Vec<usize> = (0..self.n_rows()).collect();
        order.sort_by(|&a, &b| {
            for &(ci, asc) in &key_idx {
                let ord = self.columns[ci][a].total_cmp(&self.columns[ci][b]);
                if ord != std::cmp::Ordering::Equal {
                    return if asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&order))
    }

    /// Hash-aggregation: groups by `dims` (empty for a global aggregate)
    /// and computes each [`AggExpr`]. Output columns are the dims followed
    /// by the aggregate aliases. Groups appear in first-occurrence order.
    pub fn group_by(&self, dims: &[&str], aggs: &[AggExpr]) -> Result<DataFrame> {
        let dim_idx: Vec<usize> = dims
            .iter()
            .map(|d| self.schema.require(d))
            .collect::<Result<_>>()?;
        let agg_idx: Vec<Option<usize>> = aggs
            .iter()
            .map(|a| {
                a.column
                    .as_deref()
                    .map(|c| self.schema.require(c))
                    .transpose()
            })
            .collect::<Result<_>>()?;

        // Group rows by the dim key, preserving first-seen order.
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut ordered: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        for i in 0..self.n_rows() {
            let key: Vec<Value> = dim_idx
                .iter()
                .map(|&c| self.columns[c][i].clone())
                .collect();
            match groups.get(&key) {
                Some(&g) => ordered[g].1.push(i),
                None => {
                    groups.insert(key.clone(), ordered.len());
                    ordered.push((key, vec![i]));
                }
            }
        }
        // A global aggregate over zero rows still yields one output row.
        if dims.is_empty() && ordered.is_empty() {
            ordered.push((Vec::new(), Vec::new()));
        }

        let mut fields: Vec<Field> = dim_idx
            .iter()
            .map(|&c| self.schema.fields()[c].clone())
            .collect();
        for (agg, idx) in aggs.iter().zip(&agg_idx) {
            let in_ty = idx
                .map(|c| self.schema.fields()[c].dtype)
                .unwrap_or(DataType::Int);
            fields.push(Field::new(agg.alias.clone(), agg.func.output_type(in_ty)));
        }
        let mut out = DataFrame::new(Schema::new(fields)?);
        for (key, rows) in &ordered {
            let mut row: Vec<Value> = key.clone();
            for (agg, idx) in aggs.iter().zip(&agg_idx) {
                let v = match idx {
                    Some(c) => {
                        let vals: Vec<&Value> =
                            rows.iter().map(|&r| &self.columns[*c][r]).collect();
                        agg.func.apply(&vals)?
                    }
                    // COUNT(*): count rows, nulls included.
                    None => Value::Int(rows.len() as i64),
                };
                row.push(v);
            }
            out.push_row(row)?;
        }
        Ok(out)
    }

    /// Equi-join on `(left_col, right_col)` pairs. Right join columns are
    /// kept; name collisions on non-key columns get a `_right` suffix.
    pub fn join(
        &self,
        other: &DataFrame,
        on: &[(&str, &str)],
        kind: JoinKind,
    ) -> Result<DataFrame> {
        let lk: Vec<usize> = on
            .iter()
            .map(|(l, _)| self.schema.require(l))
            .collect::<Result<_>>()?;
        let rk: Vec<usize> = on
            .iter()
            .map(|(_, r)| other.schema.require(r))
            .collect::<Result<_>>()?;

        // Hash the right side.
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for j in 0..other.n_rows() {
            let key: Vec<Value> = rk.iter().map(|&c| other.columns[c][j].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // SQL semantics: NULL never matches.
            }
            index.entry(key).or_default().push(j);
        }

        // Output schema: all left fields, then all right fields (renamed on
        // collision).
        let mut fields: Vec<Field> = self.schema.fields().to_vec();
        let mut right_names: Vec<String> = Vec::with_capacity(other.schema.len());
        for f in other.schema.fields() {
            let name = if self.schema.index_of(&f.name).is_some() {
                format!("{}_right", f.name)
            } else {
                f.name.clone()
            };
            right_names.push(name.clone());
            fields.push(Field::new(name, f.dtype));
        }
        let mut out = DataFrame::new(Schema::new(fields)?);

        for i in 0..self.n_rows() {
            let key: Vec<Value> = lk.iter().map(|&c| self.columns[c][i].clone()).collect();
            let matches = if key.iter().any(Value::is_null) {
                None
            } else {
                index.get(&key)
            };
            match matches {
                Some(rows) => {
                    for &j in rows {
                        let mut row = self.row(i);
                        row.extend(other.row(j));
                        out.push_row(row)?;
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        let mut row = self.row(i);
                        row.extend(std::iter::repeat_n(Value::Null, other.n_cols()));
                        out.push_row(row)?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Removes duplicate rows, keeping first occurrences.
    pub fn distinct(&self) -> DataFrame {
        let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
        let mut keep = Vec::new();
        for i in 0..self.n_rows() {
            let row = self.row(i);
            if seen.insert(row, ()).is_none() {
                keep.push(i);
            }
        }
        self.take(&keep)
    }

    /// First `n` rows.
    pub fn limit(&self, n: usize) -> DataFrame {
        let keep: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&keep)
    }

    /// Adds a column (must match the row count).
    pub fn with_column(
        &self,
        name: &str,
        dtype: DataType,
        values: Vec<Value>,
    ) -> Result<DataFrame> {
        if values.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                found: values.len(),
            });
        }
        let mut schema = self.schema.clone();
        schema.push(Field::new(name, dtype))?;
        let mut columns = self.columns.clone();
        columns.push(values);
        Ok(DataFrame { schema, columns })
    }

    /// Renames a column.
    pub fn rename(&self, old: &str, new: &str) -> Result<DataFrame> {
        let idx = self.schema.require(old)?;
        let mut fields = self.schema.fields().to_vec();
        fields[idx].name = new.to_string();
        Ok(DataFrame {
            schema: Schema::new(fields)?,
            columns: self.columns.clone(),
        })
    }

    /// Appends another frame's rows (schemas must match by name and type).
    pub fn concat_rows(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.schema != *other.schema() {
            return Err(FrameError::Invalid(
                "concat_rows requires identical schemas".into(),
            ));
        }
        let mut columns = self.columns.clone();
        for (c, oc) in columns.iter_mut().zip(&other.columns) {
            c.extend(oc.iter().cloned());
        }
        Ok(DataFrame {
            schema: self.schema.clone(),
            columns,
        })
    }

    /// The distinct non-null values of a column, in first-seen order.
    pub fn distinct_values(&self, name: &str) -> Result<Vec<Value>> {
        let col = self.column(name)?;
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for v in col {
            if !v.is_null() && seen.insert(v.clone(), ()).is_none() {
                out.push(v.clone());
            }
        }
        Ok(out)
    }

    /// Renders the frame as a plain-text table (used by examples, the
    /// notebook, and information-unit content).
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let mut s = String::new();
        let names = self.schema.names();
        s.push_str(&names.join(" | "));
        s.push('\n');
        s.push_str(
            &names
                .iter()
                .map(|n| "-".repeat(n.len().max(1)))
                .collect::<Vec<_>>()
                .join("-|-"),
        );
        s.push('\n');
        let shown = self.n_rows().min(max_rows);
        for i in 0..shown {
            let row: Vec<String> = self.columns.iter().map(|c| c[i].render()).collect();
            s.push_str(&row.join(" | "));
            s.push('\n');
        }
        if self.n_rows() > shown {
            s.push_str(&format!("... ({} rows total)\n", self.n_rows()));
        }
        s
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table_string(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;

    fn sales() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "region",
                DataType::Str,
                vec!["east".into(), "west".into(), "east".into(), "west".into()],
            ),
            (
                "amount",
                DataType::Int,
                vec![10.into(), 20.into(), 30.into(), Value::Null],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn from_columns_validates_lengths_and_types() {
        assert!(DataFrame::from_columns(vec![
            ("a", DataType::Int, vec![1.into()]),
            ("b", DataType::Int, vec![1.into(), 2.into()]),
        ])
        .is_err());
        assert!(DataFrame::from_columns(vec![("a", DataType::Int, vec!["x".into()])]).is_err());
    }

    #[test]
    fn select_and_filter() {
        let df = sales();
        let sel = df.select(&["amount"]).unwrap();
        assert_eq!(sel.n_cols(), 1);
        let amounts = df.column("amount").unwrap().to_vec();
        let big = df.filter(|i| amounts[i].as_f64().map(|f| f > 15.0).unwrap_or(false));
        assert_eq!(big.n_rows(), 2);
    }

    #[test]
    fn group_by_sum() {
        let df = sales();
        let g = df
            .group_by(
                &["region"],
                &[AggExpr::new(AggFunc::Sum, "amount", "total")],
            )
            .unwrap();
        assert_eq!(g.n_rows(), 2);
        let east = g.filter(|i| g.column("region").unwrap()[i] == Value::Str("east".into()));
        assert_eq!(east.column("total").unwrap()[0], Value::Int(40));
        let west = g.filter(|i| g.column("region").unwrap()[i] == Value::Str("west".into()));
        assert_eq!(west.column("total").unwrap()[0], Value::Int(20));
    }

    #[test]
    fn global_aggregate_on_empty_frame() {
        let df = DataFrame::from_columns(vec![("x", DataType::Int, vec![])]).unwrap();
        let g = df.group_by(&[], &[AggExpr::count_star("n")]).unwrap();
        assert_eq!(g.n_rows(), 1);
        assert_eq!(g.column("n").unwrap()[0], Value::Int(0));
    }

    #[test]
    fn sort_multi_key() {
        let df = sales();
        let sorted = df.sort_by(&[("region", true), ("amount", false)]).unwrap();
        assert_eq!(
            sorted.column("region").unwrap()[0],
            Value::Str("east".into())
        );
        assert_eq!(sorted.column("amount").unwrap()[0], Value::Int(30));
        // Null amount sorts first ascending, last descending within west.
        assert_eq!(sorted.column("amount").unwrap()[3], Value::Null);
    }

    #[test]
    fn inner_and_left_join() {
        let regions = DataFrame::from_columns(vec![
            ("name", DataType::Str, vec!["east".into(), "north".into()]),
            ("manager", DataType::Str, vec!["ann".into(), "bob".into()]),
        ])
        .unwrap();
        let df = sales();
        let inner = df
            .join(&regions, &[("region", "name")], JoinKind::Inner)
            .unwrap();
        assert_eq!(inner.n_rows(), 2); // two east rows match
        let left = df
            .join(&regions, &[("region", "name")], JoinKind::Left)
            .unwrap();
        assert_eq!(left.n_rows(), 4);
        assert_eq!(left.column("manager").unwrap()[1], Value::Null); // west unmatched
    }

    #[test]
    fn join_null_keys_never_match() {
        let l = DataFrame::from_columns(vec![("k", DataType::Int, vec![Value::Null])]).unwrap();
        let r = DataFrame::from_columns(vec![("k", DataType::Int, vec![Value::Null])]).unwrap();
        let j = l.join(&r, &[("k", "k")], JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 0);
    }

    #[test]
    fn distinct_and_limit() {
        let df = DataFrame::from_columns(vec![(
            "x",
            DataType::Int,
            vec![1.into(), 1.into(), 2.into()],
        )])
        .unwrap();
        assert_eq!(df.distinct().n_rows(), 2);
        assert_eq!(df.limit(1).n_rows(), 1);
        assert_eq!(df.limit(10).n_rows(), 3);
    }

    #[test]
    fn join_renames_collisions() {
        let l = DataFrame::from_columns(vec![
            ("k", DataType::Int, vec![1.into()]),
            ("v", DataType::Int, vec![10.into()]),
        ])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("k", DataType::Int, vec![1.into()]),
            ("v", DataType::Int, vec![20.into()]),
        ])
        .unwrap();
        let j = l.join(&r, &[("k", "k")], JoinKind::Inner).unwrap();
        assert_eq!(j.schema().names(), vec!["k", "v", "k_right", "v_right"]);
    }

    #[test]
    fn concat_requires_same_schema() {
        let a = sales();
        let b = sales();
        assert_eq!(a.concat_rows(&b).unwrap().n_rows(), 8);
        let c = a.select(&["region"]).unwrap();
        assert!(a.concat_rows(&c).is_err());
    }
}
