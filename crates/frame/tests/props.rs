//! Property-based tests for the DataFrame engine's core invariants.

use datalab_frame::{csv, AggExpr, AggFunc, DataFrame, DataType, Value};
use proptest::prelude::*;

/// A safe string value (CSV-roundtrippable, engine-agnostic).
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[a-zA-Z0-9 _,\"-]{0,18}".prop_map(Value::Str),
    ]
}

fn int_frame(max_rows: usize) -> impl Strategy<Value = DataFrame> {
    (1..=max_rows).prop_flat_map(|rows| {
        (
            prop::collection::vec(-1000i64..1000, rows..=rows),
            prop::collection::vec(0i64..5, rows..=rows),
        )
            .prop_map(|(vals, keys)| {
                DataFrame::from_columns(vec![
                    (
                        "k",
                        DataType::Str,
                        keys.into_iter()
                            .map(|k| Value::Str(format!("g{k}")))
                            .collect(),
                    ),
                    (
                        "v",
                        DataType::Int,
                        vals.into_iter().map(Value::Int).collect(),
                    ),
                ])
                .expect("valid test frame")
            })
    })
}

proptest! {
    #[test]
    fn total_cmp_is_antisymmetric_and_transitive(
        a in value_strategy(), b in value_strategy(), c in value_strategy()
    ) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Transitivity: a<=b and b<=c imply a<=c.
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    #[test]
    fn equal_values_hash_equally(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn sort_is_an_ordered_permutation(df in int_frame(40)) {
        let sorted = df.sort_by(&[("v", true)]).expect("column exists");
        prop_assert_eq!(sorted.n_rows(), df.n_rows());
        let col = sorted.column("v").expect("exists");
        for w in col.windows(2) {
            prop_assert_ne!(w[0].total_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
        // Multiset preserved.
        let mut a: Vec<i64> = df.column("v").unwrap().iter().filter_map(Value::as_i64).collect();
        let mut b: Vec<i64> = col.iter().filter_map(Value::as_i64).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_counts_sum_to_row_count(df in int_frame(40)) {
        let g = df.group_by(&["k"], &[AggExpr::count_star("n")]).expect("groups");
        let total: i64 = g.column("n").unwrap().iter().filter_map(Value::as_i64).sum();
        prop_assert_eq!(total as usize, df.n_rows());
        // Group sums add up to the global sum.
        let g2 = df.group_by(&["k"], &[AggExpr::new(AggFunc::Sum, "v", "s")]).expect("groups");
        let group_sum: i64 = g2.column("s").unwrap().iter().filter_map(Value::as_i64).sum();
        let global: i64 = df.column("v").unwrap().iter().filter_map(Value::as_i64).sum();
        prop_assert_eq!(group_sum, global);
    }

    #[test]
    fn distinct_is_idempotent_and_bounded(df in int_frame(40)) {
        let d1 = df.distinct();
        let d2 = d1.distinct();
        prop_assert!(d1.n_rows() <= df.n_rows());
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn filter_then_concat_partitions_rows(df in int_frame(40)) {
        let col = df.column("v").unwrap().to_vec();
        let hi = df.filter(|i| col[i].as_i64().map(|v| v >= 0).unwrap_or(false));
        let lo = df.filter(|i| col[i].as_i64().map(|v| v < 0).unwrap_or(true));
        prop_assert_eq!(hi.n_rows() + lo.n_rows(), df.n_rows());
    }

    #[test]
    fn csv_roundtrip_for_typed_frames(
        strs in prop::collection::vec("[a-zA-Z0-9 _-]{1,12}", 1..20),
        ints in prop::collection::vec(-5000i64..5000, 1..20),
    ) {
        let n = strs.len().min(ints.len());
        let df = DataFrame::from_columns(vec![
            ("s", DataType::Str, strs[..n].iter().map(|s| Value::Str(s.clone())).collect()),
            ("i", DataType::Int, ints[..n].iter().map(|i| Value::Int(*i)).collect()),
        ]).expect("valid");
        let back = csv::from_csv(&csv::to_csv(&df)).expect("roundtrips");
        prop_assert_eq!(back.n_rows(), df.n_rows());
        prop_assert_eq!(back.column("i").unwrap(), df.column("i").unwrap());
    }

    #[test]
    fn limit_never_exceeds(df in int_frame(40), n in 0usize..60) {
        prop_assert_eq!(df.limit(n).n_rows(), n.min(df.n_rows()));
    }
}
