//! End-to-end ingestion tests over real sockets: transactional row
//! appends with idempotency keys, upsert by key column, downstream cell
//! invalidation, reboot recovery of ingested rows, and read-only
//! degradation under injected disk faults with automatic recovery once
//! the faults clear.

use datalab_server::{FaultDiskConfig, FsyncPolicy, Server, ServerConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const SALES_CSV: &str = "region,amount\neast,10\nwest,20\neast,5\n";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "datalab-server-ingestion-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(data_dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    }
}

fn send_raw(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("write");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send_raw(addr, raw.as_bytes())
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn register(addr: SocketAddr, tenant: &str, name: &str, csv: &str) {
    let body = serde_json::json!({"tenant": tenant, "name": name, "csv": csv});
    let (status, response) = post(addr, "/v1/tables", &body.to_string());
    assert_eq!(status, 200, "{response}");
}

fn ingest_body(tenant: &str, csv: &str, key_column: Option<&str>, idempotency_key: &str) -> String {
    match key_column {
        Some(key) => serde_json::json!({
            "tenant": tenant,
            "csv": csv,
            "key_column": key,
            "idempotency_key": idempotency_key,
        }),
        None => serde_json::json!({
            "tenant": tenant,
            "csv": csv,
            "idempotency_key": idempotency_key,
        }),
    }
    .to_string()
}

fn row_count(addr: SocketAddr, tenant: &str, table: &str) -> u64 {
    let (status, body) = get(addr, &format!("/v1/tables?tenant={tenant}"));
    assert_eq!(status, 200, "{body}");
    json(&body)["tables"]
        .as_array()
        .expect("tables array")
        .iter()
        .find(|t| t["name"] == table)
        .unwrap_or_else(|| panic!("table {table} missing from {body}"))["rows"]
        .as_u64()
        .expect("row count")
}

/// Appends land atomically, a retried idempotency key deduplicates
/// instead of double-applying, upsert replaces by key column, malformed
/// batches are rejected whole, and the ingested rows survive a reboot.
#[test]
fn ingest_appends_upserts_deduplicates_and_survives_reboot() {
    let dir = scratch("basic");
    let server = Server::start(durable_config(&dir)).expect("boots");
    let addr = server.addr();
    register(addr, "acme", "sales", SALES_CSV);

    // Plain append.
    let batch = "region,amount\nnorth,40\nsouth,50\n";
    let (status, response) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("acme", batch, None, "k-append"),
    );
    assert_eq!(status, 200, "{response}");
    let v = json(&response);
    assert_eq!(v["appended"], 2, "{response}");
    assert_eq!(v["updated"], 0, "{response}");
    assert_eq!(v["deduplicated"], Value::Bool(false), "{response}");
    assert_eq!(row_count(addr, "acme", "sales"), 5);

    // Retrying the same key is answered from the dedup set: 200, no
    // second application.
    let (status, response) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("acme", batch, None, "k-append"),
    );
    assert_eq!(status, 200, "{response}");
    let v = json(&response);
    assert_eq!(v["deduplicated"], Value::Bool(true), "{response}");
    assert_eq!(v["appended"], 0, "{response}");
    assert_eq!(row_count(addr, "acme", "sales"), 5);

    // Upsert by key column: existing `north` row is replaced, new
    // `center` row appends.
    let upsert = "region,amount\nnorth,99\ncenter,1\n";
    let (status, response) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("acme", upsert, Some("region"), "k-upsert"),
    );
    assert_eq!(status, 200, "{response}");
    let v = json(&response);
    assert_eq!(v["updated"], 1, "{response}");
    assert_eq!(v["appended"], 1, "{response}");
    assert_eq!(row_count(addr, "acme", "sales"), 6);

    // All-or-nothing: one bad row rejects the whole batch.
    let torn = "region,amount\nok,1\nbad,not-a-number\n";
    let (status, response) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("acme", torn, None, "k-bad"),
    );
    assert_eq!(status, 400, "{response}");
    assert_eq!(row_count(addr, "acme", "sales"), 6);

    // Unknown table and unknown tenant are 404s.
    let (status, _) = post(
        addr,
        "/v1/tables/nope/rows",
        &ingest_body("acme", batch, None, "k-nope"),
    );
    assert_eq!(status, 404);
    let (status, _) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("nobody", batch, None, "k-nobody"),
    );
    assert_eq!(status, 404);

    // Missing or oversized idempotency keys are client errors.
    let (status, _) = post(
        addr,
        "/v1/tables/sales/rows",
        &serde_json::json!({"tenant": "acme", "csv": batch}).to_string(),
    );
    assert_eq!(status, 400);
    let (status, _) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("acme", batch, None, &"x".repeat(200)),
    );
    assert_eq!(status, 400);

    server.shutdown();

    // Reboot: the ingested rows and the dedup set are durable.
    let server = Server::start(durable_config(&dir)).expect("reboots");
    let addr = server.addr();
    assert_eq!(row_count(addr, "acme", "sales"), 6);
    let (status, response) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("acme", batch, None, "k-append"),
    );
    assert_eq!(status, 200, "{response}");
    assert_eq!(
        json(&response)["deduplicated"],
        Value::Bool(true),
        "retried key applied twice across a reboot: {response}"
    );
    assert_eq!(row_count(addr, "acme", "sales"), 6);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An applied batch invalidates notebook cells that reference the
/// table, and the invalidation is visible in both the response and the
/// `dag.invalidated` counter.
#[test]
fn ingest_invalidates_downstream_cells() {
    let dir = scratch("invalidate");
    let server = Server::start(durable_config(&dir)).expect("boots");
    let addr = server.addr();
    register(addr, "acme", "sales", SALES_CSV);

    // A query materialises notebook cells referencing `sales`.
    let body =
        serde_json::json!({"tenant": "acme", "question": "what is the total amount by region"});
    let (status, response) = post(addr, "/v1/query", &body.to_string());
    assert_eq!(status, 200, "{response}");

    let (status, response) = post(
        addr,
        "/v1/tables/sales/rows",
        &ingest_body("acme", "region,amount\neast,7\n", None, "k-inv"),
    );
    assert_eq!(status, 200, "{response}");
    let invalidated = json(&response)["invalidated_cells"].as_u64().unwrap_or(0);
    assert!(invalidated >= 1, "{response}");

    let (_, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["counters"]["dag.invalidated"].as_u64() >= Some(1),
        "{metrics}"
    );
    assert!(
        m["counters"]["server.ingest.rows"].as_u64() >= Some(1),
        "{metrics}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Persistent write failure flips the store read-only: writes shed with
/// 503 + Retry-After while queries keep serving from memory, the
/// storage section of `/v1/health` reports the degradation, and service
/// resumes automatically once the faults clear.
#[test]
fn persistent_write_failure_degrades_to_read_only_and_recovers() {
    let dir = scratch("readonly");
    let server = Server::start(ServerConfig {
        // Every disk write fails until the test heals the disk.
        faults: Some(FaultDiskConfig {
            eio_rate: 1.0,
            ..FaultDiskConfig::disabled(7)
        }),
        ..durable_config(&dir)
    })
    .expect("boots");
    let addr = server.addr();

    // Registration bypasses nothing: it appends to the WAL too, but the
    // session itself is in memory, so the table is queryable even
    // though its durable append failed.
    register(addr, "acme", "sales", SALES_CSV);

    // Hammer writes until the failure threshold trips read-only mode.
    let mut saw_503 = false;
    for i in 0..8 {
        let (status, response) = post(
            addr,
            "/v1/tables/sales/rows",
            &ingest_body("acme", "region,amount\neast,1\n", None, &format!("k-{i}")),
        );
        assert_ne!(status, 200, "write succeeded on a dead disk: {response}");
        if status == 503 {
            let v = json(&response);
            let kind = v["error"]["kind"].as_str().unwrap_or_default();
            assert!(
                kind == "read_only" || kind == "storage_unavailable",
                "{response}"
            );
            saw_503 = true;
        }
    }
    assert!(saw_503, "no 503 observed under a dead disk");

    // Reads still serve from memory.
    let (status, response) = get(addr, "/v1/tables?tenant=acme");
    assert_eq!(status, 200, "{response}");

    // Health reports the degradation.
    let (status, health) = get(addr, "/v1/health");
    assert_eq!(status, 200, "{health}");
    let h = json(&health);
    assert_eq!(h["storage"]["read_only"], Value::Bool(true), "{health}");
    assert!(
        h["storage"]["consecutive_failures"].as_u64() >= Some(3),
        "{health}"
    );
    assert!(h["storage"]["last_error"].is_string(), "{health}");

    // Heal the disk: the next admitted probe write succeeds and flips
    // the store back to read-write automatically.
    server
        .durable()
        .expect("durable store attached")
        .faults()
        .expect("fault disk attached")
        .clear();
    let mut recovered = false;
    for i in 0..8 {
        let (status, _) = post(
            addr,
            "/v1/tables/sales/rows",
            &ingest_body(
                "acme",
                "region,amount\nwest,2\n",
                None,
                &format!("heal-{i}"),
            ),
        );
        if status == 200 {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "store never recovered after faults cleared");
    let (_, health) = get(addr, "/v1/health");
    let h = json(&health);
    assert_eq!(h["storage"]["read_only"], Value::Bool(false), "{health}");

    let (_, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["counters"]["store.read_only_trips"].as_u64() >= Some(1),
        "{metrics}"
    );
    assert!(
        m["counters"]["store.read_only_recoveries"].as_u64() >= Some(1),
        "{metrics}"
    );
    assert!(
        m["counters"]["server.rejected.read_only"].as_u64() >= Some(1),
        "{metrics}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
