//! Sharded, capacity-bounded session store with LRU eviction and
//! optional durability.
//!
//! Each tenant owns one [`DataLab`] session — its registered tables,
//! notebook state, and accumulated knowledge are invisible to every
//! other tenant. Sessions live behind `Arc<Mutex<..>>` handles in a
//! fixed number of shards so concurrent requests for different tenants
//! rarely contend on the same lock.
//!
//! Capacity is bounded per shard; when a shard is full the
//! least-recently-used session is evicted to make room. A request that
//! already holds an evicted session's `Arc` finishes its query on the
//! old state — eviction drops the store's reference, not the session.
//!
//! With a [`DurableStore`] attached, eviction stops being data loss: a
//! miss for a tenant with durable state rebuilds the session from its
//! snapshot plus WAL replay (the model simulator is deterministic, so
//! replaying a query record reproduces the exact post-query state), and
//! eviction first syncs the tenant's WAL so nothing acknowledged is
//! ever dropped with the session.

use datalab_core::{DataLab, DataLabConfig};
use datalab_store::{DurableStore, SessionRecordRef};
use datalab_telemetry::{EventKind, Telemetry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Session store sizing and the config used for new sessions.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Total session capacity across all shards.
    pub capacity: usize,
    /// Number of independent shards (each with its own lock).
    pub shards: usize,
    /// Platform configuration cloned into every new tenant session.
    pub lab_config: DataLabConfig,
    /// Durable backing store; `None` keeps sessions memory-only.
    pub durable: Option<Arc<DurableStore>>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            capacity: 64,
            shards: 8,
            lab_config: DataLabConfig {
                record_runs: false,
                ..DataLabConfig::default()
            },
            durable: None,
        }
    }
}

struct Entry {
    lab: Arc<Mutex<DataLab>>,
    last_touch: u64,
}

struct Shard {
    sessions: HashMap<String, Entry>,
}

/// The multi-tenant session store.
pub struct SessionStore {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    clock: AtomicU64,
    telemetry: Telemetry,
    lab_config: DataLabConfig,
    durable: Option<Arc<DurableStore>>,
}

impl SessionStore {
    /// Creates a store; `telemetry` receives session lifecycle metrics
    /// (`server.sessions.created` / `.evicted` counters and the
    /// `server.sessions.active` gauge) plus recovery accounting when a
    /// durable store is attached (`store.recoveries` counter and the
    /// `server.recovery.latency_us` histogram).
    pub fn new(config: StoreConfig, telemetry: Telemetry) -> SessionStore {
        let shards = config.shards.max(1);
        let per_shard = config.capacity.max(1).div_ceil(shards);
        SessionStore {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        sessions: HashMap::new(),
                    })
                })
                .collect(),
            per_shard,
            clock: AtomicU64::new(0),
            telemetry,
            lab_config: config.lab_config,
            durable: config.durable,
        }
    }

    /// The attached durable store, if any.
    pub fn durable(&self) -> Option<&Arc<DurableStore>> {
        self.durable.as_ref()
    }

    fn shard_for(&self, tenant: &str) -> &Mutex<Shard> {
        // FNV-1a: cheap, stable across runs (unlike `DefaultHasher`,
        // which is randomly seeded per process).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tenant.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Returns the tenant's session handle, creating (and if necessary
    /// evicting) under the shard lock. A miss for a tenant with durable
    /// state rebuilds the session from snapshot + WAL replay before
    /// returning. The returned `Arc` stays valid even if the session is
    /// evicted while the caller holds it.
    pub fn session(&self, tenant: &str) -> Arc<Mutex<DataLab>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self
            .shard_for(tenant)
            .lock()
            .unwrap_or_else(|p| p.into_inner());

        if let Some(entry) = shard.sessions.get_mut(tenant) {
            entry.last_touch = now;
            return Arc::clone(&entry.lab);
        }

        if shard.sessions.len() >= self.per_shard {
            // Evict the least-recently-used tenant in this shard.
            if let Some(victim) = shard
                .sessions
                .iter()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(t, _)| t.clone())
            {
                shard.sessions.remove(&victim);
                // Make the victim durable before its memory state goes
                // away: whatever the interval flusher had not synced yet
                // reaches disk now, so a later miss rebuilds losslessly.
                if let Some(durable) = &self.durable {
                    durable.flush_tenant(&victim);
                }
                self.telemetry.metrics().incr("server.sessions.evicted", 1);
                self.telemetry
                    .metrics()
                    .gauge_add("server.sessions.active", -1);
                self.telemetry
                    .record_event(EventKind::SessionEvicted, victim);
            }
        }

        // Rebuild from durable state when the tenant has history on
        // disk; otherwise start fresh. Recovery runs under the shard
        // lock, which serialises concurrent first-requests for the same
        // tenant (replay is in-process simulation — microseconds per
        // record — so the hold is short).
        let lab = self
            .recover(tenant)
            .unwrap_or_else(|| DataLab::new(self.lab_config.clone()));
        let lab = Arc::new(Mutex::new(lab));
        shard.sessions.insert(
            tenant.to_string(),
            Entry {
                lab: Arc::clone(&lab),
                last_touch: now,
            },
        );
        self.telemetry.metrics().incr("server.sessions.created", 1);
        self.telemetry
            .metrics()
            .gauge_add("server.sessions.active", 1);
        lab
    }

    /// Rebuilds a session from the durable store: restore the snapshot
    /// (tables, knowledge, notebook, history), then replay every WAL
    /// record above the snapshot watermark. `None` when there is no
    /// durable store, no durable state, or the state failed to load.
    fn recover(&self, tenant: &str) -> Option<DataLab> {
        let durable = self.durable.as_ref()?;
        let begun = Instant::now();
        let config = &self.lab_config;
        let recovered = durable
            .recover_with(tenant, |outcome| {
                let mut lab = DataLab::new(config.clone());
                if let Some(snap) = &outcome.snapshot {
                    for (name, csv) in &snap.tables {
                        let _ = lab.register_csv(name, csv);
                    }
                    if !snap.knowledge_json.is_empty() {
                        let _ = lab.import_knowledge(snap.knowledge_json);
                    }
                    if !snap.notebook_json.is_empty() {
                        let _ = lab.import_notebook(snap.notebook_json);
                    }
                    lab.restore_history(snap.history.iter().map(|h| h.to_string()).collect());
                    lab.restore_ingest_keys(
                        snap.ingest_keys.iter().map(|k| k.to_string()).collect(),
                    );
                }
                for (_, record) in &outcome.records {
                    apply_record(&mut lab, record);
                }
                lab
            })
            .ok()?;
        if recovered.is_some() {
            self.telemetry.metrics().observe(
                "server.recovery.latency_us",
                begun.elapsed().as_micros() as u64,
            );
        }
        recovered
    }

    /// Whether a session currently exists for the tenant.
    pub fn contains(&self, tenant: &str) -> bool {
        self.shard_for(tenant)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .sessions
            .contains_key(tenant)
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).sessions.len())
            .sum()
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All resident tenant names, in no particular order.
    pub fn tenants(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            out.extend(shard.sessions.keys().cloned());
        }
        out
    }
}

/// Applies one replayed WAL record to a session being rebuilt. Errors
/// are swallowed: a record that failed the same way live (e.g. a CSV
/// that never parsed) fails identically on replay, which *is* the
/// faithful reconstruction.
fn apply_record(lab: &mut DataLab, record: &SessionRecordRef<'_>) {
    match record {
        SessionRecordRef::RegisterCsv { name, csv } => {
            let _ = lab.register_csv(name, csv);
        }
        SessionRecordRef::Query { workload, question } => {
            let _ = lab.query_as(workload, question);
        }
        SessionRecordRef::AddJargon { term, expansion } => {
            lab.add_jargon(term, expansion);
        }
        SessionRecordRef::AddValueAlias {
            term,
            table,
            column,
            value,
        } => {
            lab.add_value_alias(term, table, column, value);
        }
        SessionRecordRef::ImportKnowledge { json } => {
            let _ = lab.import_knowledge(json);
        }
        SessionRecordRef::ImportNotebook { json } => {
            let _ = lab.import_notebook(json);
        }
        // Replay-time idempotency: a crash between WAL append and the
        // HTTP response, followed by a client retry, legitimately leaves
        // two records with the same key in the WAL. `ingest_rows`
        // deduplicates on the applied-key set, so exactly one applies.
        SessionRecordRef::IngestBatch {
            table,
            rows_csv,
            key_column,
            idempotency_key,
        } => {
            let _ = lab.ingest_rows(table, rows_csv, *key_column, idempotency_key);
        }
    }
}
