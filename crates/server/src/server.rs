//! The HTTP server: acceptor, worker pool, routing, and shutdown.
//!
//! Request lifecycle:
//!
//! 1. The acceptor thread accepts a connection and `try_push`es it onto
//!    the bounded job queue. A full queue answers `429` with
//!    `Retry-After` right on the acceptor thread — overload is shed
//!    before it can consume a worker.
//! 2. A worker pops the connection, reads and routes the request, and
//!    writes exactly one JSON response. Routing runs inside
//!    `catch_unwind`, so a panic in platform code costs one `500`, never
//!    a worker thread.
//! 3. `shutdown` stops the acceptor, closes the queue, and joins the
//!    workers — queued and in-flight requests drain to completion.
//!
//! Every request carries a trace ID — the client's `X-Trace-Id` header
//! when present and valid, a server-derived one otherwise. The ID is
//! threaded through the platform (tagging spans, events, and LLM
//! transport attempts), echoed on every response, and written into
//! every error body. Completed queries land in a bounded tail-sampled
//! [`TraceStore`] served by `GET /v1/traces`, and feed the per-tenant
//! [`SloTracker`] surfaced by `/v1/health` and `/v1/metrics`.

use crate::admission::{JobQueue, TenantGate};
use crate::http::{linger_close, read_request, HttpError, Request, Response};
use crate::json::Json;
use crate::store::{SessionStore, StoreConfig};
use datalab_core::{BreakerState, DataLab, DataLabConfig, RequestContext, LATENCY_BUCKETS_US};
use datalab_store::{
    DurabilityConfig, DurableStore, FaultDisk, FaultDiskConfig, FsyncPolicy, SessionRecord,
    SessionState,
};
use datalab_telemetry::{
    chrome_trace_json, event_json, folded_stacks, json_escape, metrics_prometheus,
    publish_alloc_metrics, span_json, EventKind, ProfileWeight, SloTargets, SloTracker, SloWindows,
    SpanNode, Telemetry, TenantSlo, TraceId, TraceRecord, TraceStore, TraceStorePolicy,
    TraceSummary, WindowSli,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest tenant name accepted by the API.
pub const MAX_TENANT_LEN: usize = 64;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Global job-queue capacity; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Max concurrent in-flight queries per tenant; beyond it, `429`.
    pub per_tenant_inflight: usize,
    /// Total tenant sessions kept resident (LRU-evicted beyond this).
    pub session_capacity: usize,
    /// Session-store shard count.
    pub session_shards: usize,
    /// Per-request deadline in milliseconds; exceeded ⇒ `504`.
    pub deadline_ms: u64,
    /// Socket read/write timeout in milliseconds.
    pub read_timeout_ms: u64,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Seed for server-minted trace IDs (requests without a valid
    /// `X-Trace-Id` header get `TraceId::derive(trace_seed, counter)`).
    pub trace_seed: u64,
    /// Keep/evict policy for the tail-sampled trace store.
    pub trace_policy: TraceStorePolicy,
    /// Declared per-tenant SLO targets.
    pub slo_targets: SloTargets,
    /// Fast/slow window lengths for SLO burn rates.
    pub slo_windows: SloWindows,
    /// Most tenants whose SLO burn rates are exported as gauges on
    /// `/v1/metrics` (the busiest by fast-window traffic win; everyone
    /// still appears on `/v1/health`). Bounds scrape cardinality: without
    /// a cap, every tenant name that ever queried would mint five gauges
    /// forever.
    pub slo_max_tenants: usize,
    /// Platform configuration for new tenant sessions.
    pub lab_config: DataLabConfig,
    /// Root directory for durable tenant state (snapshot + WAL per
    /// tenant). `None` keeps sessions memory-only: eviction and restarts
    /// lose them, exactly as before durability existed.
    pub data_dir: Option<PathBuf>,
    /// When WAL appends reach stable storage (`always` syncs on the
    /// request path; `interval` bounds loss to one flusher tick; `never`
    /// trusts the page cache). Ignored without `data_dir`.
    pub fsync: FsyncPolicy,
    /// WAL records per tenant between automatic snapshots (0 disables
    /// cadence snapshots). Ignored without `data_dir`.
    pub snapshot_every: u64,
    /// Disk-fault injection beneath the durable store (seeded,
    /// deterministic — the write-path analogue of the model transport's
    /// `ChaosConfig`). `None` leaves every disk call a passthrough.
    /// Ignored without `data_dir`.
    pub faults: Option<FaultDiskConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            per_tenant_inflight: 8,
            session_capacity: 64,
            session_shards: 8,
            deadline_ms: 10_000,
            read_timeout_ms: 2_000,
            max_body_bytes: 4 * 1024 * 1024,
            trace_seed: 7,
            trace_policy: TraceStorePolicy::default(),
            slo_targets: SloTargets::default(),
            slo_windows: SloWindows::default(),
            slo_max_tenants: 32,
            lab_config: DataLabConfig {
                // Serving sessions are long-lived; per-query run records
                // would grow without bound.
                record_runs: false,
                ..DataLabConfig::default()
            },
            data_dir: None,
            fsync: FsyncPolicy::Interval(datalab_store::DEFAULT_FSYNC_INTERVAL),
            snapshot_every: 32,
            faults: None,
        }
    }
}

struct Job {
    stream: TcpStream,
    arrived: Instant,
}

struct ServerInner {
    config: ServerConfig,
    store: SessionStore,
    durable: Option<Arc<DurableStore>>,
    queue: JobQueue<Job>,
    gate: Arc<TenantGate>,
    telemetry: Telemetry,
    traces: TraceStore,
    slo: SloTracker,
    trace_counter: AtomicU64,
    started: Instant,
    shutting_down: AtomicBool,
}

/// A running DataLab serving instance.
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns once the
    /// server is reachable.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let telemetry = Telemetry::default();
        // Pre-register endpoint latency histograms with the shared
        // bucket layout so /v1/metrics shows them from the first scrape.
        for name in [
            "server.latency.query_us",
            "server.latency.tables_us",
            "server.latency.ingest_us",
            "server.latency.health_us",
            "server.latency.metrics_us",
            "server.latency.traces_us",
            "server.latency.profile_us",
        ] {
            telemetry
                .metrics()
                .histogram_with_buckets(name, LATENCY_BUCKETS_US);
        }
        // Pre-register the resilience taxonomy at zero so fault-free
        // scrapes still enumerate it (mirrored from per-tenant sessions
        // after each query).
        for name in [
            "server.resilience.faults",
            "server.resilience.retries",
            "server.resilience.breaker_trips",
            "server.resilience.degraded",
            "server.rejected.breaker",
            "server.rejected.read_only",
        ] {
            telemetry.metrics().incr(name, 0);
        }

        // Durable tenant state: opening the store also starts the
        // interval flusher (when that policy is configured) and
        // pre-registers the `store.*` metric taxonomy.
        let durable = match &config.data_dir {
            Some(dir) => {
                telemetry
                    .metrics()
                    .histogram_with_buckets("server.recovery.latency_us", LATENCY_BUCKETS_US);
                Some(DurableStore::open_with_faults(
                    dir.clone(),
                    DurabilityConfig {
                        fsync: config.fsync,
                        snapshot_every: config.snapshot_every,
                    },
                    telemetry.clone(),
                    config.faults.clone().map(|c| Arc::new(FaultDisk::new(c))),
                )?)
            }
            None => None,
        };

        let store = SessionStore::new(
            StoreConfig {
                capacity: config.session_capacity,
                shards: config.session_shards,
                lab_config: config.lab_config.clone(),
                durable: durable.clone(),
            },
            telemetry.clone(),
        );
        let inner = Arc::new(ServerInner {
            durable,
            queue: JobQueue::new(config.queue_capacity),
            gate: TenantGate::new(config.per_tenant_inflight),
            store,
            telemetry,
            traces: TraceStore::new(config.trace_policy.clone()),
            slo: SloTracker::new(config.slo_targets.clone(), config.slo_windows),
            trace_counter: AtomicU64::new(0),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("datalab-acceptor".to_string())
                .spawn(move || accept_loop(listener, &inner))?
        };
        let mut workers = Vec::with_capacity(inner.config.workers.max(1));
        for i in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("datalab-worker-{i}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }

        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry handle (same registry `/v1/metrics`
    /// serves).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The durable store backing tenant sessions, when `data_dir` was
    /// configured.
    pub fn durable(&self) -> Option<&Arc<DurableStore>> {
        self.inner.durable.as_ref()
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, then join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor blocked in `accept` with a throwaway
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone, so no appends can race this final sync:
        // graceful shutdown loses nothing regardless of fsync policy.
        if let Some(durable) = &self.inner.durable {
            durable.flush_all();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Mints a trace ID for a request that arrived without a usable
/// `X-Trace-Id` header. Derived from the server seed and a per-server
/// counter, so IDs are deterministic for a given request order.
fn next_trace(inner: &ServerInner) -> TraceId {
    TraceId::derive(
        inner.config.trace_seed,
        inner.trace_counter.fetch_add(1, Ordering::Relaxed),
    )
}

fn accept_loop(listener: TcpListener, inner: &Arc<ServerInner>) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let timeout = Duration::from_millis(inner.config.read_timeout_ms.max(1));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let job = Job {
            stream,
            arrived: Instant::now(),
        };
        match inner.queue.try_push(job) {
            Ok(()) => {
                inner.telemetry.metrics().gauge_add("server.queue.depth", 1);
            }
            Err(job) => {
                // Shed load on the acceptor thread itself. The request
                // is never read, so the trace ID is always server-minted.
                inner.telemetry.metrics().incr("server.rejected.global", 1);
                let trace = next_trace(inner);
                let mut stream = job.stream;
                let _ = error_response(429, "overloaded", "global queue full", &trace)
                    .with_header("Retry-After", "1")
                    .with_header("X-Trace-Id", trace.as_str())
                    .write_to(&mut stream);
                // The unread request would RST the 429 on close; the
                // drain is bounded and shed peers hang up as soon as
                // they see the response, so the acceptor is not stalled.
                linger_close(&mut stream);
            }
        }
    }
}

fn worker_loop(inner: &Arc<ServerInner>) {
    while let Some(job) = inner.queue.pop() {
        inner
            .telemetry
            .metrics()
            .gauge_add("server.queue.depth", -1);
        handle_connection(inner, job);
    }
}

fn handle_connection(inner: &Arc<ServerInner>, mut job: Job) {
    let request = match read_request(&mut job.stream, inner.config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            // The request never parsed, so any client trace header is
            // unreadable: mint a server-side ID for the error body.
            let trace = next_trace(inner);
            let response = match e {
                HttpError::TooLarge(n) => {
                    inner
                        .telemetry
                        .metrics()
                        .incr("platform.errors.bad_request", 1);
                    error_response(
                        413,
                        "too_large",
                        &format!("body of {n} bytes exceeds limit"),
                        &trace,
                    )
                }
                HttpError::BadRequest(why) => {
                    inner
                        .telemetry
                        .metrics()
                        .incr("platform.errors.bad_request", 1);
                    error_response(400, "bad_request", &why, &trace)
                }
                // Read timeouts / resets: nothing useful to send.
                HttpError::Io(_) => return,
            };
            let _ = response
                .with_header("X-Trace-Id", trace.as_str())
                .write_to(&mut job.stream);
            // The request body (if any) was never consumed; a plain
            // close would RST the error response off the wire.
            linger_close(&mut job.stream);
            return;
        }
    };

    // Propagate the caller's trace ID when it is present and valid;
    // otherwise derive one so every response is traceable.
    let trace = request
        .header("x-trace-id")
        .and_then(TraceId::parse)
        .unwrap_or_else(|| next_trace(inner));

    let handled = catch_unwind(AssertUnwindSafe(|| {
        route(inner, &request, &trace, job.arrived)
    }));
    let response = handled.unwrap_or_else(|_| {
        inner.telemetry.metrics().incr("server.errors.panic", 1);
        error_response(500, "internal", "request handler panicked", &trace)
    });
    // The trace ID is echoed on every response — success or error —
    // exactly once, here.
    let _ = response
        .with_header("X-Trace-Id", trace.as_str())
        .write_to(&mut job.stream);
}

fn route(
    inner: &Arc<ServerInner>,
    request: &Request,
    trace: &TraceId,
    arrived: Instant,
) -> Response {
    let begun = Instant::now();
    // Match on the path alone so `/v1/traces?tenant=acme` routes; the
    // query string is re-parsed by handlers that take parameters.
    let path = request.target.split(['?', '#']).next().unwrap_or("");
    let (histogram, response) = match (request.method.as_str(), path) {
        ("GET", "/v1/health") => ("server.latency.health_us", health(inner)),
        ("GET", "/v1/metrics") => ("server.latency.metrics_us", metrics(inner, request, trace)),
        ("GET", "/v1/profile") => ("server.latency.profile_us", profile(inner, request, trace)),
        ("GET", "/v1/traces") => (
            "server.latency.traces_us",
            traces_index(inner, request, trace),
        ),
        ("GET", path) if path.starts_with("/v1/traces/") => (
            "server.latency.traces_us",
            trace_detail(inner, &path["/v1/traces/".len()..], trace),
        ),
        ("GET", "/v1/tables") => (
            "server.latency.tables_us",
            tables_index(inner, request, trace),
        ),
        ("POST", "/v1/tables") => ("server.latency.tables_us", tables(inner, request, trace)),
        ("POST", path) if path.starts_with("/v1/tables/") && path.ends_with("/rows") => {
            let name = &path["/v1/tables/".len()..path.len() - "/rows".len()];
            (
                "server.latency.ingest_us",
                ingest(inner, request, trace, name),
            )
        }
        ("POST", "/v1/query") => (
            "server.latency.query_us",
            query(inner, request, trace, arrived),
        ),
        _ => {
            inner
                .telemetry
                .metrics()
                .incr("platform.errors.not_found", 1);
            let detail = format!("no route for {} {}", request.method, request.target);
            return error_response(404, "not_found", &detail, trace);
        }
    };
    inner
        .telemetry
        .metrics()
        .observe(histogram, begun.elapsed().as_micros() as u64);
    response
}

fn health(inner: &Arc<ServerInner>) -> Response {
    inner.telemetry.metrics().incr("server.requests.health", 1);
    // Per-tenant circuit-breaker states, from the gauges each query
    // refreshes. Empty until a tenant has queried.
    let snapshot = inner.telemetry.metrics().snapshot();
    let breakers: Vec<String> = snapshot
        .gauges
        .iter()
        .filter_map(|(name, value)| {
            let tenant = name.strip_prefix("llm.breaker.state.")?;
            Some(format!(
                "\"{}\":\"{}\"",
                json_escape(tenant),
                BreakerState::from_gauge(*value).as_str()
            ))
        })
        .collect();
    // Per-tenant SLO burn rates over the fast/slow windows. Empty until
    // a tenant has an admitted query on record.
    let slo: Vec<String> = inner
        .slo
        .report()
        .iter()
        .map(|(tenant, report)| format!("\"{}\":{}", json_escape(tenant), tenant_slo_json(report)))
        .collect();
    let targets = inner.slo.targets();
    // Write-path health: the durable store's read-only flag, failure
    // counters, and fsync backlog. `null` without a data_dir.
    let storage = match &inner.durable {
        Some(durable) => {
            let h = durable.storage_health();
            format!(
                "{{\"read_only\":{},\"consecutive_failures\":{},\"flush_errors\":{},\
                 \"fsync_backlog_bytes\":{},\"last_error\":{}}}",
                h.read_only,
                h.consecutive_failures,
                h.flush_errors,
                h.fsync_backlog_bytes,
                match &h.last_error {
                    Some(e) => format!("\"{}\"", json_escape(e)),
                    None => "null".to_string(),
                }
            )
        }
        None => "null".to_string(),
    };
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"uptime_us\":{},\"sessions\":{},\"queue_depth\":{},\
             \"breakers\":{{{}}},\"storage\":{},\
             \"slo_targets\":{{\"availability\":{},\"latency_threshold_us\":{},\
             \"latency_goal\":{}}},\"slo\":{{{}}}}}",
            inner.started.elapsed().as_micros(),
            inner.store.len(),
            inner.queue.depth(),
            breakers.join(","),
            storage,
            targets.availability,
            targets.latency_threshold_us,
            targets.latency_goal,
            slo.join(",")
        ),
    )
}

/// One SLI window as JSON.
fn window_json(w: &WindowSli) -> String {
    format!(
        "{{\"requests\":{},\"good\":{},\"fast_enough\":{},\"availability\":{},\
         \"latency_ok_ratio\":{},\"availability_burn\":{},\"latency_burn\":{}}}",
        w.requests,
        w.good,
        w.fast_enough,
        w.availability,
        w.latency_ok_ratio,
        w.availability_burn,
        w.latency_burn
    )
}

/// A tenant's fast/slow SLO windows plus the multi-window verdict.
fn tenant_slo_json(t: &TenantSlo) -> String {
    format!(
        "{{\"fast\":{},\"slow\":{},\"budget_exhausted\":{}}}",
        window_json(&t.fast),
        window_json(&t.slow),
        t.budget_exhausted()
    )
}

/// The tenant component of a per-tenant `slo.*` gauge name; `None` for
/// every other gauge (including the scalar `slo.tenants_tracked`).
fn slo_gauge_tenant(name: &str) -> Option<&str> {
    [
        "slo.availability_burn_fast_pm.",
        "slo.availability_burn_slow_pm.",
        "slo.latency_burn_fast_pm.",
        "slo.latency_burn_slow_pm.",
        "slo.budget_exhausted.",
    ]
    .iter()
    .find_map(|prefix| name.strip_prefix(prefix))
}

/// Publishes per-tenant SLO burn rates as gauges (per-mille, so the
/// integer gauge registry can carry them) right before a scrape.
///
/// Export cardinality is bounded by `slo_max_tenants`: only the busiest
/// tenants by fast-window traffic (name-ordered on ties, so the cut is
/// deterministic) keep their gauges, and gauges belonging to tenants that
/// fell out of the export set — idle or out-ranked — are evicted rather
/// than left to accumulate. `slo.tenants_tracked` always reports the
/// uncapped tenant count so the cap itself is observable.
fn publish_slo_gauges(inner: &Arc<ServerInner>) {
    let m = inner.telemetry.metrics();
    let mut ranked = inner.slo.report();
    let tracked = ranked.len();
    ranked.sort_by(|a, b| {
        b.1.fast
            .requests
            .cmp(&a.1.fast.requests)
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked.truncate(inner.config.slo_max_tenants);
    m.retain_gauges(|name| match slo_gauge_tenant(name) {
        Some(tenant) => ranked.iter().any(|(t, _)| t == tenant),
        None => true,
    });
    for (tenant, report) in &ranked {
        let pm = |burn: f64| (burn * 1000.0).round() as i64;
        m.gauge_set(
            &format!("slo.availability_burn_fast_pm.{tenant}"),
            pm(report.fast.availability_burn),
        );
        m.gauge_set(
            &format!("slo.availability_burn_slow_pm.{tenant}"),
            pm(report.slow.availability_burn),
        );
        m.gauge_set(
            &format!("slo.latency_burn_fast_pm.{tenant}"),
            pm(report.fast.latency_burn),
        );
        m.gauge_set(
            &format!("slo.latency_burn_slow_pm.{tenant}"),
            pm(report.slow.latency_burn),
        );
        m.gauge_set(
            &format!("slo.budget_exhausted.{tenant}"),
            i64::from(report.budget_exhausted()),
        );
    }
    m.gauge_set("slo.tenants_tracked", tracked as i64);
}

/// `GET /v1/metrics[?format=json|prometheus]`: the full registry
/// snapshot. JSON by default; `?format=prometheus` (or an `Accept`
/// header naming `openmetrics` or `text/plain`) switches to
/// Prometheus/OpenMetrics text exposition with cumulative histogram
/// buckets. Allocator totals are republished right before either
/// rendering, so scrapes see current `alloc.*` counters.
fn metrics(inner: &Arc<ServerInner>, request: &Request, trace: &TraceId) -> Response {
    inner.telemetry.metrics().incr("server.requests.metrics", 1);
    publish_slo_gauges(inner);
    let accept_prometheus = request
        .header("accept")
        .is_some_and(|a| a.contains("openmetrics") || a.contains("text/plain"));
    let prometheus = match query_param(request.target.as_str(), "format") {
        None => accept_prometheus,
        Some("json") => false,
        Some("prometheus") => true,
        Some(other) => {
            inner
                .telemetry
                .metrics()
                .incr("platform.errors.bad_request", 1);
            let detail = format!("unknown format `{other}` (want `json` or `prometheus`)");
            return error_response(400, "bad_request", &detail, trace);
        }
    };
    if prometheus {
        publish_alloc_metrics(inner.telemetry.metrics());
        let snapshot = inner.telemetry.metrics().snapshot();
        Response::text(
            200,
            "text/plain; version=0.0.4",
            metrics_prometheus(&snapshot),
        )
    } else {
        Response::json(200, inner.telemetry.snapshot_json())
    }
}

/// `GET /v1/profile[?weight=wall|cpu|alloc|alloc_count]`: the retained
/// traces' span forest folded into collapsed-stack (flamegraph) format.
/// CPU and alloc weightings are empty unless the serving binary has a
/// thread CPU clock / the counting allocator installed.
fn profile(inner: &Arc<ServerInner>, request: &Request, trace: &TraceId) -> Response {
    inner.telemetry.metrics().incr("server.requests.profile", 1);
    let weight = match query_param(request.target.as_str(), "weight") {
        None => ProfileWeight::Wall,
        Some(raw) => match ProfileWeight::parse(raw) {
            Some(weight) => weight,
            None => {
                inner
                    .telemetry
                    .metrics()
                    .incr("platform.errors.bad_request", 1);
                let detail = format!(
                    "unknown weight `{raw}` (want `wall`, `cpu`, `alloc`, or `alloc_count`)"
                );
                return error_response(400, "bad_request", &detail, trace);
            }
        },
    };
    let folded = folded_stacks(&inner.traces.span_forest(), weight);
    Response::text(200, "text/plain", folded)
}

/// Extracts a query-string parameter from a request target.
///
/// No percent-decoding: trace IDs, tenant names, and the other accepted
/// values are already restricted to characters that need no escaping.
fn query_param<'a>(target: &'a str, name: &str) -> Option<&'a str> {
    let (_, raw) = target.split_once('?')?;
    let raw = raw.split('#').next().unwrap_or("");
    raw.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// One retained trace's summary line for the `/v1/traces` index.
fn trace_summary_json(t: &TraceSummary) -> String {
    format!(
        "{{\"trace_id\":\"{}\",\"tenant\":\"{}\",\"workload\":\"{}\",\"status\":{},\
         \"ok\":{},\"duration_us\":{},\"reason\":\"{}\",\"seq\":{},\"spans\":{},\"events\":{}}}",
        json_escape(&t.trace_id),
        json_escape(&t.tenant),
        json_escape(&t.workload),
        t.status,
        t.ok,
        t.duration_us,
        t.reason.as_str(),
        t.seq,
        t.spans,
        t.events
    )
}

/// `GET /v1/traces[?tenant=..&status=ok|error&limit=N]`: newest-first
/// summaries of the retained traces.
fn traces_index(inner: &Arc<ServerInner>, request: &Request, trace: &TraceId) -> Response {
    inner.telemetry.metrics().incr("server.requests.traces", 1);
    let target = request.target.as_str();
    let tenant = query_param(target, "tenant");
    let only_errors = match query_param(target, "status") {
        None => None,
        Some("ok") => Some(false),
        Some("error") => Some(true),
        Some(other) => {
            let detail = format!("unknown status filter `{other}` (want `ok` or `error`)");
            return error_response(400, "bad_request", &detail, trace);
        }
    };
    let limit = match query_param(target, "limit") {
        None => 50,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if (1..=500).contains(&n) => n,
            _ => {
                let detail = format!("`limit` must be an integer in 1..=500, got `{raw}`");
                return error_response(400, "bad_request", &detail, trace);
            }
        },
    };
    let summaries: Vec<String> = inner
        .traces
        .summaries(tenant, only_errors, limit)
        .iter()
        .map(trace_summary_json)
        .collect();
    Response::json(
        200,
        format!(
            "{{\"seen\":{},\"retained\":{},\"traces\":[{}]}}",
            inner.traces.seen(),
            inner.traces.len(),
            summaries.join(",")
        ),
    )
}

/// `GET /v1/traces/:id`: the full retained trace — span tree, flight
/// record, and a ready-to-load Chrome trace export.
fn trace_detail(inner: &Arc<ServerInner>, id: &str, trace: &TraceId) -> Response {
    inner.telemetry.metrics().incr("server.requests.traces", 1);
    let Some(stored) = inner.traces.get(id) else {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.not_found", 1);
        let detail = format!("no retained trace with id `{id}`");
        return error_response(404, "trace_not_found", &detail, trace);
    };
    let record = &stored.record;
    let spans: Vec<String> = record.spans.iter().map(span_json).collect();
    let events: Vec<String> = record.events.iter().map(event_json).collect();
    Response::json(
        200,
        format!(
            "{{\"trace_id\":\"{}\",\"tenant\":\"{}\",\"workload\":\"{}\",\"status\":{},\
             \"ok\":{},\"duration_us\":{},\"reason\":\"{}\",\
             \"spans\":[{}],\"events\":[{}],\"chrome_trace\":{}}}",
            json_escape(&record.trace_id),
            json_escape(&record.tenant),
            json_escape(&record.workload),
            record.status,
            record.ok,
            record.duration_us,
            stored.reason.as_str(),
            spans.join(","),
            events.join(","),
            chrome_trace_json(&record.spans)
        ),
    )
}

/// Parses the body as a JSON object and validates the `tenant` field
/// shared by both POST endpoints.
fn parse_body(
    inner: &Arc<ServerInner>,
    request: &Request,
    trace: &TraceId,
) -> Result<(Json, String), Response> {
    let fail = |detail: &str| {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        Err(error_response(400, "bad_request", detail, trace))
    };
    let Some(text) = request.body_utf8() else {
        return fail("body is not valid UTF-8");
    };
    let body = match Json::parse(text) {
        Ok(body) => body,
        Err(e) => return fail(&format!("invalid JSON: {e}")),
    };
    let Some(tenant) = body.str_field("tenant") else {
        return fail("missing string field `tenant`");
    };
    if tenant.is_empty() || tenant.len() > MAX_TENANT_LEN {
        return fail(&format!("`tenant` must be 1..={MAX_TENANT_LEN} bytes"));
    }
    if tenant.chars().any(|c| c.is_control()) {
        return fail("`tenant` must not contain control characters");
    }
    let tenant = tenant.to_string();
    Ok((body, tenant))
}

/// Write-through to the durable store: appends `record` to the tenant's
/// WAL and, when the snapshot cadence fires, captures the session's
/// durable state and snapshots it (truncating the WAL). Must be called
/// with the session lock held, so WAL order is execution order and the
/// captured state reflects every appended record. Returns the fsync
/// stall in microseconds when the policy synced on the request path.
///
/// Persistence failures (disk full, dead volume) degrade to memory-only
/// serving: the request already succeeded against session state, so the
/// client gets its answer while the failure lands in the metrics and
/// the flight recorder.
fn persist(
    inner: &Arc<ServerInner>,
    tenant: &str,
    lab: &mut DataLab,
    record: &SessionRecord,
) -> Option<u64> {
    let durable = inner.durable.as_ref()?;
    let receipt = match durable.append(tenant, record) {
        Ok(receipt) => receipt,
        Err(e) => {
            inner.telemetry.metrics().incr("store.append_failures", 1);
            inner
                .telemetry
                .record_event(EventKind::PlatformError, format!("wal append: {e}"));
            return None;
        }
    };
    if receipt.snapshot_due {
        snapshot_session(inner, tenant, lab);
    }
    receipt.fsync_stall_us
}

/// Captures the session's durable state and snapshots it (truncating
/// the WAL). Must be called with the session lock held. Snapshot
/// failures are non-fatal — the WAL still holds every record.
fn snapshot_session(inner: &Arc<ServerInner>, tenant: &str, lab: &DataLab) {
    let Some(durable) = inner.durable.as_ref() else {
        return;
    };
    let state = SessionState {
        tables: lab.export_tables(),
        knowledge_json: lab.export_knowledge().unwrap_or_default(),
        notebook_json: lab.export_notebook(),
        history: lab.history().to_vec(),
        ingest_keys: lab.export_ingest_keys(),
    };
    if let Err(e) = durable.snapshot(tenant, &state) {
        inner.telemetry.metrics().incr("store.snapshot_failures", 1);
        inner
            .telemetry
            .record_event(EventKind::PlatformError, format!("snapshot: {e}"));
    }
}

/// `GET /v1/tables?tenant=NAME`: the tenant's registered tables with
/// row/column counts, in registration order. Serves from the resident
/// session, recovering it from durable state first if it was evicted
/// (or the server restarted).
fn tables_index(inner: &Arc<ServerInner>, request: &Request, trace: &TraceId) -> Response {
    inner.telemetry.metrics().incr("server.requests.tables", 1);
    let fail = |detail: &str| {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        error_response(400, "bad_request", detail, trace)
    };
    let Some(tenant) = query_param(request.target.as_str(), "tenant") else {
        return fail("missing query parameter `tenant`");
    };
    if tenant.is_empty() || tenant.len() > MAX_TENANT_LEN {
        return fail(&format!("`tenant` must be 1..={MAX_TENANT_LEN} bytes"));
    }
    if tenant.chars().any(|c| c.is_control()) {
        return fail("`tenant` must not contain control characters");
    }
    // Only materialise a session for tenants that exist somewhere —
    // resident in memory or recoverable from disk. Anything else would
    // let listing probes fill the store with empty sessions.
    let durable_has = inner
        .durable
        .as_ref()
        .is_some_and(|durable| durable.has_tenant(tenant));
    if !inner.store.contains(tenant) && !durable_has {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.not_found", 1);
        let detail = format!("no session or durable state for tenant `{tenant}`");
        return error_response(404, "tenant_not_found", &detail, trace);
    }
    let session = inner.store.session(tenant);
    let lab = session.lock().unwrap_or_else(|p| p.into_inner());
    let db = lab.database();
    let tables: Vec<String> = db
        .table_names()
        .iter()
        .filter_map(|name| {
            let df = db.get(name).ok()?;
            Some(format!(
                "{{\"name\":\"{}\",\"rows\":{},\"columns\":{}}}",
                json_escape(name),
                df.n_rows(),
                df.schema().fields().len()
            ))
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"tenant\":\"{}\",\"count\":{},\"tables\":[{}]}}",
            json_escape(tenant),
            tables.len(),
            tables.join(",")
        ),
    )
}

fn tables(inner: &Arc<ServerInner>, request: &Request, trace: &TraceId) -> Response {
    inner.telemetry.metrics().incr("server.requests.tables", 1);
    let (body, tenant) = match parse_body(inner, request, trace) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let (Some(name), Some(csv)) = (body.str_field("name"), body.str_field("csv")) else {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        return error_response(
            400,
            "bad_request",
            "missing string fields `name` and `csv`",
            trace,
        );
    };

    let session = inner.store.session(&tenant);
    let mut lab = session.lock().unwrap_or_else(|p| p.into_inner());
    match lab.register_csv(name, csv) {
        Ok(()) => {
            persist(
                inner,
                &tenant,
                &mut lab,
                &SessionRecord::RegisterCsv {
                    name: name.to_string(),
                    csv: csv.to_string(),
                },
            );
            let rows = lab.database().get(name).map(|df| df.n_rows()).unwrap_or(0);
            Response::json(
                200,
                format!(
                    "{{\"ok\":true,\"tenant\":\"{}\",\"table\":\"{}\",\"rows\":{}}}",
                    json_escape(&tenant),
                    json_escape(name),
                    rows
                ),
            )
        }
        Err(e) => error_response(400, "table_register", &e.to_string(), trace),
    }
}

/// `POST /v1/tables/:name/rows`: appends (or upserts, with
/// `key_column`) one batch of CSV rows to a registered table. The batch
/// is one atomic WAL record — committed *before* the in-memory apply,
/// so an acknowledged batch survives a crash and a failed append
/// changes nothing. The client-supplied `idempotency_key` makes retries
/// safe: a key that already applied returns `deduplicated` without
/// touching the table, at request time and at WAL replay alike.
///
/// When the durable store has degraded to read-only (persistent disk
/// faults), the batch is rejected with `503` + `Retry-After` before any
/// state changes; reads keep serving from memory.
fn ingest(inner: &Arc<ServerInner>, request: &Request, trace: &TraceId, name: &str) -> Response {
    inner.telemetry.metrics().incr("server.requests.ingest", 1);
    if name.is_empty() || name.contains('/') {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.not_found", 1);
        let detail = format!("no route for POST {}", request.target);
        return error_response(404, "not_found", &detail, trace);
    }
    let (body, tenant) = match parse_body(inner, request, trace) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let fail = |detail: &str| {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        error_response(400, "bad_request", detail, trace)
    };
    let (Some(csv), Some(key)) = (body.str_field("csv"), body.str_field("idempotency_key")) else {
        return fail("missing string fields `csv` and `idempotency_key`");
    };
    if key.is_empty() || key.len() > 128 || key.chars().any(|c| c.is_control()) {
        return fail("`idempotency_key` must be 1..=128 bytes with no control characters");
    }
    let key_column = body.str_field("key_column");

    // Like `GET /v1/tables`, only materialise sessions for tenants that
    // exist somewhere; the table requirement below keeps fresh sessions
    // from being writable anyway.
    let durable_has = inner
        .durable
        .as_ref()
        .is_some_and(|durable| durable.has_tenant(&tenant));
    if !inner.store.contains(&tenant) && !durable_has {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.not_found", 1);
        let detail = format!("no session or durable state for tenant `{tenant}`");
        return error_response(404, "tenant_not_found", &detail, trace);
    }

    let session = inner.store.session(&tenant);
    let mut lab = session.lock().unwrap_or_else(|p| p.into_inner());

    // Retry of an already-applied batch: acknowledge without touching
    // the table or the WAL.
    if lab.ingest_seen(key) {
        inner
            .telemetry
            .metrics()
            .incr("server.ingest.deduplicated", 1);
        return Response::json(
            200,
            format!(
                "{{\"ok\":true,\"tenant\":\"{}\",\"table\":\"{}\",\"deduplicated\":true,\
                 \"appended\":0,\"updated\":0,\"invalidated_cells\":0}}",
                json_escape(&tenant),
                json_escape(name)
            ),
        );
    }

    // The path names the target resource, so a missing table is a 404,
    // not a validation error.
    if lab.database().get(name).is_err() {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.not_found", 1);
        let detail = format!("tenant `{tenant}` has no table `{name}`");
        return error_response(404, "table_not_found", &detail, trace);
    }

    // Validate before committing anything, so a WAL record, once
    // durable, always applies on replay.
    if let Err(e) = lab.validate_ingest(name, csv, key_column) {
        return error_response(400, "ingest", &e.to_string(), trace);
    }

    // Durability-first: the batch reaches the WAL before memory. A
    // rejected or failed append leaves both the table and the WAL's
    // applied state untouched — all-or-nothing.
    let mut snapshot_due = false;
    if let Some(durable) = &inner.durable {
        if !durable.write_allowed() {
            inner
                .telemetry
                .metrics()
                .incr("server.rejected.read_only", 1);
            return error_response(
                503,
                "read_only",
                "durable store is read-only after repeated write failures; retry later",
                trace,
            )
            .with_header("Retry-After", "2");
        }
        let record = SessionRecord::IngestBatch {
            table: name.to_string(),
            rows_csv: csv.to_string(),
            key_column: key_column.map(str::to_string),
            idempotency_key: key.to_string(),
        };
        match durable.append(&tenant, &record) {
            Ok(receipt) => snapshot_due = receipt.snapshot_due,
            Err(e) => {
                inner.telemetry.metrics().incr("store.append_failures", 1);
                inner
                    .telemetry
                    .record_event(EventKind::PlatformError, format!("ingest append: {e}"));
                return error_response(
                    503,
                    "storage_unavailable",
                    &format!("could not commit batch to the write-ahead log: {e}"),
                    trace,
                )
                .with_header("Retry-After", "2");
            }
        }
    }

    // Already validated with the session lock held, so the apply cannot
    // fail; anything else is a bug worth a 500, not a swallow.
    match lab.ingest_rows(name, csv, key_column, key) {
        Ok(outcome) => {
            if snapshot_due {
                snapshot_session(inner, &tenant, &lab);
            }
            inner.telemetry.metrics().incr(
                "server.ingest.rows",
                (outcome.appended + outcome.updated) as u64,
            );
            // The session's own registry is private; mirror the
            // staleness fanout where operators can see it.
            inner
                .telemetry
                .metrics()
                .incr("dag.invalidated", outcome.invalidated_cells.len() as u64);
            Response::json(
                200,
                format!(
                    "{{\"ok\":true,\"tenant\":\"{}\",\"table\":\"{}\",\"deduplicated\":false,\
                     \"appended\":{},\"updated\":{},\"invalidated_cells\":{}}}",
                    json_escape(&tenant),
                    json_escape(name),
                    outcome.appended,
                    outcome.updated,
                    outcome.invalidated_cells.len()
                ),
            )
        }
        Err(e) => error_response(500, "ingest_apply", &e.to_string(), trace),
    }
}

fn query(
    inner: &Arc<ServerInner>,
    request: &Request,
    trace: &TraceId,
    arrived: Instant,
) -> Response {
    inner.telemetry.metrics().incr("server.requests.query", 1);
    let (body, tenant) = match parse_body(inner, request, trace) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let Some(question) = body.str_field("question") else {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        return error_response(400, "bad_request", "missing string field `question`", trace);
    };
    let workload = body.str_field("workload").unwrap_or("adhoc");

    let deadline = Duration::from_millis(inner.config.deadline_ms);
    // Queue wait already consumed the whole budget: give up before
    // doing any work. This is a server-side failure, so it counts
    // against the tenant's SLO and leaves a (spanless) error trace.
    if arrived.elapsed() >= deadline {
        inner.telemetry.metrics().incr("server.timeouts", 1);
        let duration_us = arrived.elapsed().as_micros() as u64;
        inner.slo.observe(&tenant, false, duration_us);
        inner.traces.offer(TraceRecord {
            trace_id: trace.as_str().to_string(),
            tenant,
            workload: workload.to_string(),
            status: 504,
            ok: false,
            duration_us,
            spans: Vec::new(),
            events: Vec::new(),
        });
        return error_response(504, "deadline", "deadline exceeded while queued", trace);
    }

    // Admission-control rejections (tenant inflight limit) are client
    // back-pressure, not service failures: excluded from the SLO.
    let Some(_permit) = inner.gate.try_acquire(&tenant) else {
        inner.telemetry.metrics().incr("server.rejected.tenant", 1);
        return error_response(
            429,
            "tenant_overloaded",
            "tenant inflight limit reached",
            trace,
        )
        .with_header("Retry-After", "1");
    };

    let session = inner.store.session(&tenant);
    let ctx = RequestContext::traced(trace.clone());
    let (mut response, breaker, fsync_stall_us) = {
        let mut lab = session.lock().unwrap_or_else(|p| p.into_inner());
        let response = lab.query_with_context(&ctx, workload, question);
        // Persist while still holding the session lock: the WAL's
        // record order is exactly the order queries executed in, which
        // is what deterministic replay needs.
        let fsync_stall_us = persist(
            inner,
            &tenant,
            &mut lab,
            &SessionRecord::Query {
                workload: workload.to_string(),
                question: question.to_string(),
            },
        );
        let breaker = lab.breaker_state();
        (response, breaker, fsync_stall_us)
    };
    let duration_us = arrived.elapsed().as_micros() as u64;

    // Surface the WAL fsync stall (always-policy appends only) in this
    // request's trace as a synthetic span, so durability cost shows up
    // in `/v1/traces/:id` and the `/v1/profile` flamegraph next to the
    // pipeline stages it taxed.
    if let Some(stall_us) = fsync_stall_us {
        let start_us = response
            .telemetry
            .spans
            .last()
            .map(|s| s.start_us + s.dur_us)
            .unwrap_or(0);
        response.telemetry.spans.push(SpanNode {
            name: "store:fsync".to_string(),
            start_us,
            dur_us: stall_us,
            cpu_us: 0,
            allocs: 0,
            alloc_bytes: 0,
            attrs: vec![("tenant".to_string(), tenant.clone())],
            children: Vec::new(),
        });
    }

    // Attribute usage before the deadline check so even timed-out work
    // is billed to its tenant.
    let tokens = response.telemetry.total.total();
    inner
        .telemetry
        .metrics()
        .incr(&format!("server.tenant.tokens.{tenant}"), tokens);
    inner
        .telemetry
        .metrics()
        .incr(&format!("server.tenant.queries.{tenant}"), 1);

    // Mirror the session's per-query resilience deltas into the serving
    // registry, and publish this tenant's breaker state for /v1/health.
    let m = inner.telemetry.metrics();
    m.incr("server.resilience.faults", response.resilience.faults);
    m.incr(
        "server.resilience.retries",
        response.resilience.transport_retries,
    );
    m.incr(
        "server.resilience.breaker_trips",
        response.resilience.breaker_trips,
    );
    m.incr("server.resilience.degraded", response.resilience.degraded);
    m.gauge_set(&format!("llm.breaker.state.{tenant}"), breaker as i64);

    // A query that failed while the transport was down (breaker open or
    // retries exhausted) is a service-level outage for this tenant, not a
    // semantic failure: tell the client to back off and retry.
    let outage =
        !response.success && (breaker == BreakerState::Open || response.resilience.faults > 0);
    // The platform query is uninterruptible, so a blown deadline is
    // detected after the fact: the session state advanced, but the
    // client gets the timeout it was promised.
    let timed_out = !outage && arrived.elapsed() >= deadline;

    let http_response = if outage {
        inner.telemetry.metrics().incr("server.rejected.breaker", 1);
        error_response(
            503,
            "transport_unavailable",
            "model transport unavailable (circuit breaker open or retries exhausted)",
            trace,
        )
        .with_header("Retry-After", "1")
    } else if timed_out {
        inner.telemetry.metrics().incr("server.timeouts", 1);
        error_response(504, "deadline", "deadline exceeded during execution", trace)
    } else {
        let plan: Vec<String> = response
            .plan
            .iter()
            .map(|role| format!("\"{}\"", json_escape(role)))
            .collect();
        let rows = response
            .frame
            .as_ref()
            .map(|df| df.n_rows().to_string())
            .unwrap_or_else(|| "null".to_string());
        Response::json(
            200,
            format!(
                "{{\"tenant\":\"{}\",\"workload\":\"{}\",\"trace_id\":\"{}\",\
                 \"success\":{},\"degraded\":{},\
                 \"answer\":\"{}\",\
                 \"rewritten_query\":\"{}\",\"plan\":[{}],\"tokens\":{},\"duration_us\":{},\
                 \"cells_appended\":{},\"chart\":{},\"rows\":{}}}",
                json_escape(&tenant),
                json_escape(workload),
                json_escape(trace.as_str()),
                response.success,
                response.degraded,
                json_escape(&response.answer),
                json_escape(&response.rewritten_query),
                plan.join(","),
                tokens,
                duration_us,
                response.new_cells.len(),
                response.chart.is_some(),
                rows
            ),
        )
    };

    // Every admitted query — success, outage, or timeout — is an SLO
    // observation and a candidate for the tail-sampled trace store.
    let status: u16 = if outage {
        503
    } else if timed_out {
        504
    } else {
        200
    };
    inner.slo.observe(&tenant, status < 500, duration_us);
    inner.traces.offer(TraceRecord {
        trace_id: trace.as_str().to_string(),
        tenant,
        workload: workload.to_string(),
        status,
        ok: status < 500,
        duration_us,
        spans: response.telemetry.spans,
        events: response.flight_record,
    });

    http_response
}

/// The uniform error body:
/// `{"error":{"kind":"...","detail":"...","trace_id":"..."}}`.
///
/// Every error carries the request's trace ID in the body as well as in
/// the `X-Trace-Id` header, so clients that only log bodies can still
/// correlate failures with `/v1/traces/:id`.
fn error_response(status: u16, kind: &str, detail: &str, trace: &TraceId) -> Response {
    Response::json(
        status,
        format!(
            "{{\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\",\"trace_id\":\"{}\"}}}}",
            json_escape(kind),
            json_escape(detail),
            json_escape(trace.as_str())
        ),
    )
}
