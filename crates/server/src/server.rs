//! The HTTP server: acceptor, worker pool, routing, and shutdown.
//!
//! Request lifecycle:
//!
//! 1. The acceptor thread accepts a connection and `try_push`es it onto
//!    the bounded job queue. A full queue answers `429` with
//!    `Retry-After` right on the acceptor thread — overload is shed
//!    before it can consume a worker.
//! 2. A worker pops the connection, reads and routes the request, and
//!    writes exactly one JSON response. Routing runs inside
//!    `catch_unwind`, so a panic in platform code costs one `500`, never
//!    a worker thread.
//! 3. `shutdown` stops the acceptor, closes the queue, and joins the
//!    workers — queued and in-flight requests drain to completion.

use crate::admission::{JobQueue, TenantGate};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::Json;
use crate::store::{SessionStore, StoreConfig};
use datalab_core::{BreakerState, DataLabConfig, LATENCY_BUCKETS_US};
use datalab_telemetry::{json_escape, Telemetry};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest tenant name accepted by the API.
pub const MAX_TENANT_LEN: usize = 64;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Global job-queue capacity; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Max concurrent in-flight queries per tenant; beyond it, `429`.
    pub per_tenant_inflight: usize,
    /// Total tenant sessions kept resident (LRU-evicted beyond this).
    pub session_capacity: usize,
    /// Session-store shard count.
    pub session_shards: usize,
    /// Per-request deadline in milliseconds; exceeded ⇒ `504`.
    pub deadline_ms: u64,
    /// Socket read/write timeout in milliseconds.
    pub read_timeout_ms: u64,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Platform configuration for new tenant sessions.
    pub lab_config: DataLabConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            per_tenant_inflight: 8,
            session_capacity: 64,
            session_shards: 8,
            deadline_ms: 10_000,
            read_timeout_ms: 2_000,
            max_body_bytes: 4 * 1024 * 1024,
            lab_config: DataLabConfig {
                // Serving sessions are long-lived; per-query run records
                // would grow without bound.
                record_runs: false,
                ..DataLabConfig::default()
            },
        }
    }
}

struct Job {
    stream: TcpStream,
    arrived: Instant,
}

struct ServerInner {
    config: ServerConfig,
    store: SessionStore,
    queue: JobQueue<Job>,
    gate: Arc<TenantGate>,
    telemetry: Telemetry,
    started: Instant,
    shutting_down: AtomicBool,
}

/// A running DataLab serving instance.
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns once the
    /// server is reachable.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let telemetry = Telemetry::default();
        // Pre-register endpoint latency histograms with the shared
        // bucket layout so /v1/metrics shows them from the first scrape.
        for name in [
            "server.latency.query_us",
            "server.latency.tables_us",
            "server.latency.health_us",
            "server.latency.metrics_us",
        ] {
            telemetry
                .metrics()
                .histogram_with_buckets(name, LATENCY_BUCKETS_US);
        }
        // Pre-register the resilience taxonomy at zero so fault-free
        // scrapes still enumerate it (mirrored from per-tenant sessions
        // after each query).
        for name in [
            "server.resilience.faults",
            "server.resilience.retries",
            "server.resilience.breaker_trips",
            "server.resilience.degraded",
            "server.rejected.breaker",
        ] {
            telemetry.metrics().incr(name, 0);
        }

        let store = SessionStore::new(
            StoreConfig {
                capacity: config.session_capacity,
                shards: config.session_shards,
                lab_config: config.lab_config.clone(),
            },
            telemetry.clone(),
        );
        let inner = Arc::new(ServerInner {
            queue: JobQueue::new(config.queue_capacity),
            gate: TenantGate::new(config.per_tenant_inflight),
            store,
            telemetry,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("datalab-acceptor".to_string())
                .spawn(move || accept_loop(listener, &inner))?
        };
        let mut workers = Vec::with_capacity(inner.config.workers.max(1));
        for i in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("datalab-worker-{i}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }

        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry handle (same registry `/v1/metrics`
    /// serves).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, then join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor blocked in `accept` with a throwaway
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, inner: &Arc<ServerInner>) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let timeout = Duration::from_millis(inner.config.read_timeout_ms.max(1));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let job = Job {
            stream,
            arrived: Instant::now(),
        };
        match inner.queue.try_push(job) {
            Ok(()) => {
                inner.telemetry.metrics().gauge_add("server.queue.depth", 1);
            }
            Err(job) => {
                // Shed load on the acceptor thread itself.
                inner.telemetry.metrics().incr("server.rejected.global", 1);
                let mut stream = job.stream;
                let _ = error_response(429, "overloaded", "global queue full")
                    .with_header("Retry-After", "1")
                    .write_to(&mut stream);
            }
        }
    }
}

fn worker_loop(inner: &Arc<ServerInner>) {
    while let Some(job) = inner.queue.pop() {
        inner
            .telemetry
            .metrics()
            .gauge_add("server.queue.depth", -1);
        handle_connection(inner, job);
    }
}

fn handle_connection(inner: &Arc<ServerInner>, mut job: Job) {
    let request = match read_request(&mut job.stream, inner.config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            let response = match e {
                HttpError::TooLarge(n) => {
                    inner
                        .telemetry
                        .metrics()
                        .incr("platform.errors.bad_request", 1);
                    error_response(
                        413,
                        "too_large",
                        &format!("body of {n} bytes exceeds limit"),
                    )
                }
                HttpError::BadRequest(why) => {
                    inner
                        .telemetry
                        .metrics()
                        .incr("platform.errors.bad_request", 1);
                    error_response(400, "bad_request", &why)
                }
                // Read timeouts / resets: nothing useful to send.
                HttpError::Io(_) => return,
            };
            let _ = response.write_to(&mut job.stream);
            return;
        }
    };

    let handled = catch_unwind(AssertUnwindSafe(|| route(inner, &request, job.arrived)));
    let response = handled.unwrap_or_else(|_| {
        inner.telemetry.metrics().incr("server.errors.panic", 1);
        error_response(500, "internal", "request handler panicked")
    });
    let _ = response.write_to(&mut job.stream);
}

fn route(inner: &Arc<ServerInner>, request: &Request, arrived: Instant) -> Response {
    let begun = Instant::now();
    let (histogram, response) = match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/v1/health") => ("server.latency.health_us", health(inner)),
        ("GET", "/v1/metrics") => ("server.latency.metrics_us", metrics(inner)),
        ("POST", "/v1/tables") => ("server.latency.tables_us", tables(inner, request)),
        ("POST", "/v1/query") => ("server.latency.query_us", query(inner, request, arrived)),
        _ => {
            inner
                .telemetry
                .metrics()
                .incr("platform.errors.not_found", 1);
            let detail = format!("no route for {} {}", request.method, request.target);
            return error_response(404, "not_found", &detail);
        }
    };
    inner
        .telemetry
        .metrics()
        .observe(histogram, begun.elapsed().as_micros() as u64);
    response
}

fn health(inner: &Arc<ServerInner>) -> Response {
    inner.telemetry.metrics().incr("server.requests.health", 1);
    // Per-tenant circuit-breaker states, from the gauges each query
    // refreshes. Empty until a tenant has queried.
    let snapshot = inner.telemetry.metrics().snapshot();
    let breakers: Vec<String> = snapshot
        .gauges
        .iter()
        .filter_map(|(name, value)| {
            let tenant = name.strip_prefix("llm.breaker.state.")?;
            Some(format!(
                "\"{}\":\"{}\"",
                json_escape(tenant),
                BreakerState::from_gauge(*value).as_str()
            ))
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"uptime_us\":{},\"sessions\":{},\"queue_depth\":{},\
             \"breakers\":{{{}}}}}",
            inner.started.elapsed().as_micros(),
            inner.store.len(),
            inner.queue.depth(),
            breakers.join(",")
        ),
    )
}

fn metrics(inner: &Arc<ServerInner>) -> Response {
    inner.telemetry.metrics().incr("server.requests.metrics", 1);
    Response::json(200, inner.telemetry.snapshot_json())
}

/// Parses the body as a JSON object and validates the `tenant` field
/// shared by both POST endpoints.
fn parse_body(inner: &Arc<ServerInner>, request: &Request) -> Result<(Json, String), Response> {
    let fail = |detail: &str| {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        Err(error_response(400, "bad_request", detail))
    };
    let Some(text) = request.body_utf8() else {
        return fail("body is not valid UTF-8");
    };
    let body = match Json::parse(text) {
        Ok(body) => body,
        Err(e) => return fail(&format!("invalid JSON: {e}")),
    };
    let Some(tenant) = body.str_field("tenant") else {
        return fail("missing string field `tenant`");
    };
    if tenant.is_empty() || tenant.len() > MAX_TENANT_LEN {
        return fail(&format!("`tenant` must be 1..={MAX_TENANT_LEN} bytes"));
    }
    if tenant.chars().any(|c| c.is_control()) {
        return fail("`tenant` must not contain control characters");
    }
    let tenant = tenant.to_string();
    Ok((body, tenant))
}

fn tables(inner: &Arc<ServerInner>, request: &Request) -> Response {
    inner.telemetry.metrics().incr("server.requests.tables", 1);
    let (body, tenant) = match parse_body(inner, request) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let (Some(name), Some(csv)) = (body.str_field("name"), body.str_field("csv")) else {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        return error_response(400, "bad_request", "missing string fields `name` and `csv`");
    };

    let session = inner.store.session(&tenant);
    let mut lab = session.lock().unwrap_or_else(|p| p.into_inner());
    match lab.register_csv(name, csv) {
        Ok(()) => {
            let rows = lab.database().get(name).map(|df| df.n_rows()).unwrap_or(0);
            Response::json(
                200,
                format!(
                    "{{\"ok\":true,\"tenant\":\"{}\",\"table\":\"{}\",\"rows\":{}}}",
                    json_escape(&tenant),
                    json_escape(name),
                    rows
                ),
            )
        }
        Err(e) => error_response(400, "table_register", &e.to_string()),
    }
}

fn query(inner: &Arc<ServerInner>, request: &Request, arrived: Instant) -> Response {
    inner.telemetry.metrics().incr("server.requests.query", 1);
    let (body, tenant) = match parse_body(inner, request) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let Some(question) = body.str_field("question") else {
        inner
            .telemetry
            .metrics()
            .incr("platform.errors.bad_request", 1);
        return error_response(400, "bad_request", "missing string field `question`");
    };
    let workload = body.str_field("workload").unwrap_or("adhoc");

    let deadline = Duration::from_millis(inner.config.deadline_ms);
    // Queue wait already consumed the whole budget: give up before
    // doing any work.
    if arrived.elapsed() >= deadline {
        inner.telemetry.metrics().incr("server.timeouts", 1);
        return error_response(504, "deadline", "deadline exceeded while queued");
    }

    let Some(_permit) = inner.gate.try_acquire(&tenant) else {
        inner.telemetry.metrics().incr("server.rejected.tenant", 1);
        return error_response(429, "tenant_overloaded", "tenant inflight limit reached")
            .with_header("Retry-After", "1");
    };

    let session = inner.store.session(&tenant);
    let (response, breaker) = {
        let mut lab = session.lock().unwrap_or_else(|p| p.into_inner());
        let response = lab.query_as(workload, question);
        (response, lab.breaker_state())
    };
    let duration_us = arrived.elapsed().as_micros() as u64;

    // Attribute usage before the deadline check so even timed-out work
    // is billed to its tenant.
    let tokens = response.telemetry.total.total();
    inner
        .telemetry
        .metrics()
        .incr(&format!("server.tenant.tokens.{tenant}"), tokens);
    inner
        .telemetry
        .metrics()
        .incr(&format!("server.tenant.queries.{tenant}"), 1);

    // Mirror the session's per-query resilience deltas into the serving
    // registry, and publish this tenant's breaker state for /v1/health.
    let m = inner.telemetry.metrics();
    m.incr("server.resilience.faults", response.resilience.faults);
    m.incr(
        "server.resilience.retries",
        response.resilience.transport_retries,
    );
    m.incr(
        "server.resilience.breaker_trips",
        response.resilience.breaker_trips,
    );
    m.incr("server.resilience.degraded", response.resilience.degraded);
    m.gauge_set(&format!("llm.breaker.state.{tenant}"), breaker as i64);

    // A query that failed while the transport was down (breaker open or
    // retries exhausted) is a service-level outage for this tenant, not a
    // semantic failure: tell the client to back off and retry.
    if !response.success && (breaker == BreakerState::Open || response.resilience.faults > 0) {
        inner.telemetry.metrics().incr("server.rejected.breaker", 1);
        return error_response(
            503,
            "transport_unavailable",
            "model transport unavailable (circuit breaker open or retries exhausted)",
        )
        .with_header("Retry-After", "1");
    }

    // The platform query is uninterruptible, so a blown deadline is
    // detected after the fact: the session state advanced, but the
    // client gets the timeout it was promised.
    if arrived.elapsed() >= deadline {
        inner.telemetry.metrics().incr("server.timeouts", 1);
        return error_response(504, "deadline", "deadline exceeded during execution");
    }

    let plan: Vec<String> = response
        .plan
        .iter()
        .map(|role| format!("\"{}\"", json_escape(role)))
        .collect();
    let rows = response
        .frame
        .as_ref()
        .map(|df| df.n_rows().to_string())
        .unwrap_or_else(|| "null".to_string());
    Response::json(
        200,
        format!(
            "{{\"tenant\":\"{}\",\"workload\":\"{}\",\"success\":{},\"degraded\":{},\
             \"answer\":\"{}\",\
             \"rewritten_query\":\"{}\",\"plan\":[{}],\"tokens\":{},\"duration_us\":{},\
             \"cells_appended\":{},\"chart\":{},\"rows\":{}}}",
            json_escape(&tenant),
            json_escape(workload),
            response.success,
            response.degraded,
            json_escape(&response.answer),
            json_escape(&response.rewritten_query),
            plan.join(","),
            tokens,
            duration_us,
            response.new_cells.len(),
            response.chart.is_some(),
            rows
        ),
    )
}

/// The uniform error body: `{"error":{"kind":"...","detail":"..."}}`.
fn error_response(status: u16, kind: &str, detail: &str) -> Response {
    Response::json(
        status,
        format!(
            "{{\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
            json_escape(kind),
            json_escape(detail)
        ),
    )
}
