//! # datalab-server
//!
//! Multi-tenant HTTP serving layer for the DataLab platform (paper §V:
//! deployed "as a unified platform" serving analysts across business
//! groups). Zero external dependencies — `std::net` sockets, a
//! hand-rolled HTTP/1.1 framing layer, and a panic-free JSON parser —
//! matching the observability crate's dependency discipline.
//!
//! Endpoints (all JSON, one request per connection):
//!
//! | Route                | Purpose                                        |
//! |----------------------|------------------------------------------------|
//! | `POST /v1/query`     | Run a question in a tenant's session           |
//! | `POST /v1/tables`    | Register a CSV table in a tenant's session     |
//! | `GET /v1/tables`     | List a tenant's tables (row/column counts)     |
//! | `GET /v1/health`     | Liveness, breakers, per-tenant SLO burn rates  |
//! | `GET /v1/metrics`    | Full telemetry snapshot (counters/gauges/hist) |
//! | `GET /v1/traces`     | Tail-sampled trace summaries (filterable)      |
//! | `GET /v1/traces/:id` | One retained trace: spans, events, Chrome view |
//!
//! Operational behaviour:
//!
//! * **Isolation** — each tenant gets its own [`DataLab`] session in a
//!   sharded LRU [`SessionStore`]; tables registered by one tenant are
//!   invisible to every other.
//! * **Admission control** — a bounded global queue and a per-tenant
//!   inflight cap shed overload as `429` + `Retry-After` instead of
//!   queueing without bound.
//! * **Deadlines** — requests that blow their budget (queued or
//!   executing) answer `504`.
//! * **Tracing** — every request gets a trace ID (`X-Trace-Id` header,
//!   or server-derived), echoed on every response and threaded through
//!   the platform so spans, events, and LLM transport attempts carry
//!   it. Completed queries are tail-sampled into a bounded trace store
//!   (all errors, slowest-per-window, uniform 1-in-K).
//! * **SLOs** — per-tenant availability and latency SLIs over fast and
//!   slow sliding windows, with burn rates in `/v1/health` and gauge
//!   form in `/v1/metrics`.
//! * **Durability** — with a `data_dir` configured, tenant sessions are
//!   backed by a per-tenant snapshot + write-ahead log
//!   ([`datalab_store`]): mutations are write-through to the WAL, LRU
//!   eviction syncs first, and a miss (or a restart) rebuilds the
//!   session by restoring the snapshot and deterministically replaying
//!   the log tail.
//! * **Graceful shutdown** — [`Server::shutdown`] stops the acceptor and
//!   drains queued and in-flight requests (then syncs every WAL) before
//!   returning.
//!
//! ```no_run
//! use datalab_server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown();
//! ```
//!
//! [`DataLab`]: datalab_core::DataLab

#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod json;
pub mod server;
pub mod store;

pub use admission::{JobQueue, TenantGate, TenantPermit};
pub use datalab_store::{
    DiskFault, DurabilityConfig, DurableStore, FaultDisk, FaultDiskConfig, FsyncPolicy,
};
pub use http::{read_request, HttpError, Request, Response};
pub use json::{Json, JsonError};
pub use server::{Server, ServerConfig, MAX_TENANT_LEN};
pub use store::{SessionStore, StoreConfig};
