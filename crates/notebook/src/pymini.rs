//! `pymini` — a static analyser for the Python subset that appears in BI
//! notebooks. It extracts the information Algorithm 3 needs from each
//! Python cell: *global* variables the cell defines (assignments,
//! imports, function/class definitions) and *external* names it
//! references, plus a syntax sanity check.
//!
//! This substitutes CPython's `ast` module (see DESIGN.md): a tokenizer
//! with paren/string awareness feeding line-shape rules, which covers the
//! assignment/import/def/use patterns data-science cells actually contain.

use std::collections::HashSet;

/// The analysis of one Python cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PyAnalysis {
    /// Global names the cell defines (visible to other cells).
    pub defined: Vec<String>,
    /// External names the cell references but does not define anywhere
    /// (candidates for cross-cell dependencies).
    pub referenced: Vec<String>,
    /// Whether the source passed the syntax sanity check.
    pub syntax_ok: bool,
}

const PY_KEYWORDS: &[&str] = &[
    "and", "as", "assert", "async", "await", "break", "class", "continue", "def", "del", "elif",
    "else", "except", "finally", "for", "from", "global", "if", "import", "in", "is", "lambda",
    "nonlocal", "not", "or", "pass", "raise", "return", "try", "while", "with", "yield", "True",
    "False", "None", "match", "case",
];

const PY_BUILTINS: &[&str] = &[
    "print",
    "len",
    "sum",
    "min",
    "max",
    "range",
    "sorted",
    "list",
    "dict",
    "set",
    "tuple",
    "str",
    "int",
    "float",
    "bool",
    "enumerate",
    "zip",
    "map",
    "filter",
    "open",
    "abs",
    "round",
    "type",
    "isinstance",
    "repr",
    "any",
    "all",
    "reversed",
    "format",
    "hash",
    "id",
    "iter",
    "next",
    "super",
    "object",
    "Exception",
    "ValueError",
    "KeyError",
    "getattr",
    "setattr",
];

/// One token of interest: an identifier with context flags.
#[derive(Debug)]
struct IdentTok {
    name: String,
    /// Byte offset of the first char.
    start: usize,
    /// Preceded by `.` (attribute access — not a variable reference).
    after_dot: bool,
    /// Paren depth at the token.
    depth: usize,
    /// Followed (after spaces) by `=` that is not `==` (kwarg or assignment).
    before_assign: bool,
}

/// Strips comments and string literal *contents* (keeps quotes so syntax
/// checking still sees them), returning the cleaned text.
fn strip_strings_and_comments(src: &str) -> (String, bool) {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut ok = true;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '#' {
            // Comment to end of line.
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '\'' || c == '"' {
            let quote = bytes[i];
            // Triple-quoted?
            let triple = bytes.get(i + 1) == Some(&quote) && bytes.get(i + 2) == Some(&quote);
            let qlen = if triple { 3 } else { 1 };
            out.push(c);
            i += qlen;
            let mut closed = false;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == quote
                    && (!triple
                        || (bytes.get(i + 1) == Some(&quote) && bytes.get(i + 2) == Some(&quote)))
                {
                    i += qlen;
                    closed = true;
                    break;
                }
                // Keep string contents out of the identifier stream but
                // preserve newlines for line structure.
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
            out.push(c);
            if !closed && !triple {
                ok = false;
            }
            if !closed && triple {
                ok = false;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    (out, ok)
}

fn scan_idents(clean: &str) -> Vec<IdentTok> {
    let bytes = clean.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    let mut prev_non_space: Option<char> = None;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '(' | '[' | '{' => {
                depth += 1;
                prev_non_space = Some(c);
                i += 1;
            }
            ')' | ']' | '}' => {
                depth = depth.saturating_sub(1);
                prev_non_space = Some(c);
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let name = clean[start..i].to_string();
                // Look ahead for `=` (not `==`, `<=`, etc.).
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                    j += 1;
                }
                let before_assign = bytes.get(j) == Some(&b'=')
                    && bytes.get(j + 1) != Some(&b'=')
                    && !matches!(prev_non_space, Some('!' | '<' | '>'));
                out.push(IdentTok {
                    name,
                    start,
                    after_dot: prev_non_space == Some('.'),
                    depth,
                    before_assign,
                });
                prev_non_space = Some('x');
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            c => {
                prev_non_space = Some(c);
                i += 1;
            }
        }
    }
    out
}

fn line_start_indent(clean: &str, offset: usize) -> Option<usize> {
    // Returns the indent of the (physical) line containing `offset`, or
    // None if the offset is not the first identifier on its line.
    let line_start = clean[..offset].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let prefix = &clean[line_start..offset];
    if prefix.chars().all(|c| c == ' ' || c == '\t') {
        Some(prefix.len())
    } else {
        None
    }
}

/// Position of a bare `=` (not `==`, `<=`, `>=`, `!=`, `+=`, ...) at
/// bracket depth 0 in a line, if any.
fn top_level_assign_pos(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b'=' if depth == 0 => {
                let prev = if i > 0 { bytes[i - 1] } else { b' ' };
                let next = bytes.get(i + 1).copied().unwrap_or(b' ');
                if next != b'=' && !b"=<>!+-*/%&|^".contains(&prev) {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_balanced(clean: &str) -> bool {
    let mut stack = Vec::new();
    for c in clean.chars() {
        match c {
            '(' | '[' | '{' => stack.push(c),
            ')' | ']' | '}' => {
                let open = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                if stack.pop() != Some(open) {
                    return false;
                }
            }
            _ => {}
        }
    }
    stack.is_empty()
}

/// Analyses a Python cell.
pub fn analyze(src: &str) -> PyAnalysis {
    let (clean, strings_ok) = strip_strings_and_comments(src);
    let syntax_ok = strings_ok && check_balanced(&clean);

    let mut defined: Vec<String> = Vec::new();
    let mut assigned_anywhere: HashSet<String> = HashSet::new();
    let mut params_and_locals: HashSet<String> = HashSet::new();
    let push_defined = |name: &str, defined: &mut Vec<String>| {
        if !name.is_empty() && !defined.iter().any(|d| d == name) {
            defined.push(name.to_string());
        }
    };

    // Line-shape pass: imports, defs, classes, for-targets.
    // Track whether each physical line is a continuation (inside brackets).
    let mut depth = 0usize;
    for line in clean.lines() {
        let continued = depth > 0;
        let opens = line.matches(['(', '[', '{']).count();
        let closes = line.matches([')', ']', '}']).count();
        depth = (depth + opens).saturating_sub(closes);
        if continued {
            continue;
        }
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        let top = indent == 0;
        if let Some(rest) = trimmed.strip_prefix("import ") {
            for part in rest.split(',') {
                let part = part.trim();
                let name = match part.split_once(" as ") {
                    Some((_, alias)) => alias.trim(),
                    None => part.split('.').next().unwrap_or(part),
                };
                if top {
                    push_defined(name, &mut defined);
                } else {
                    params_and_locals.insert(name.to_string());
                }
            }
            // Module path words are import syntax, never variable uses.
            for w in rest.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
                params_and_locals.insert(w.to_string());
            }
        } else if let Some(rest) = trimmed.strip_prefix("from ") {
            if let Some((_, imports)) = rest.split_once(" import ") {
                for part in imports.split(',') {
                    let part = part.trim();
                    let name = match part.split_once(" as ") {
                        Some((_, alias)) => alias.trim(),
                        None => part,
                    };
                    if top {
                        push_defined(name, &mut defined);
                    } else {
                        params_and_locals.insert(name.to_string());
                    }
                }
            }
            for w in rest.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
                params_and_locals.insert(w.to_string());
            }
        } else if let Some(rest) = trimmed
            .strip_prefix("def ")
            .or_else(|| trimmed.strip_prefix("class "))
        {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if top {
                push_defined(&name, &mut defined);
            } else {
                params_and_locals.insert(name);
            }
            // Parameters become locals.
            if let Some(open) = rest.find('(') {
                let params = &rest[open + 1..rest.find(')').unwrap_or(rest.len())];
                for part in params.split(',') {
                    let p: String = part
                        .trim()
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !p.is_empty() {
                        params_and_locals.insert(p);
                    }
                }
            }
        } else if let Some(rest) = trimmed.strip_prefix("for ") {
            if let Some(end) = rest.find(" in ") {
                for part in rest[..end].split(',') {
                    let name: String = part
                        .trim()
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if name.is_empty() {
                        continue;
                    }
                    if top {
                        push_defined(&name, &mut defined);
                        assigned_anywhere.insert(name);
                    } else {
                        params_and_locals.insert(name);
                    }
                }
            }
        } else if trimmed.starts_with("with ") {
            if let Some(pos) = trimmed.find(" as ") {
                let name: String = trimmed[pos + 4..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    if top {
                        push_defined(&name, &mut defined);
                    }
                    assigned_anywhere.insert(name);
                }
            }
        } else if let Some(eq) = top_level_assign_pos(trimmed) {
            // Plain or tuple assignment: every comma-separated identifier
            // target on the LHS is defined.
            for part in trimmed[..eq].split(',') {
                let name: String = part
                    .trim()
                    .trim_start_matches(['(', '['])
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                // Skip attribute/index targets like df.x = or d[k] =.
                let clean_target = part
                    .trim()
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_ ([)]".contains(c));
                if !name.is_empty() && clean_target {
                    if top {
                        push_defined(&name, &mut defined);
                    } else {
                        params_and_locals.insert(name.clone());
                    }
                    assigned_anywhere.insert(name);
                }
            }
        }
    }

    // Token pass: assignments and references.
    let idents = scan_idents(&clean);
    for tok in &idents {
        if PY_KEYWORDS.contains(&tok.name.as_str()) || tok.after_dot {
            continue;
        }
        if tok.before_assign {
            if tok.depth > 0 {
                // Keyword argument — neither definition nor reference.
                continue;
            }
            match line_start_indent(&clean, tok.start) {
                Some(0) => {
                    push_defined(&tok.name, &mut defined);
                    assigned_anywhere.insert(tok.name.clone());
                }
                Some(_) => {
                    params_and_locals.insert(tok.name.clone());
                    assigned_anywhere.insert(tok.name.clone());
                }
                // Mid-line `=` (tuple targets handled by the line pass;
                // chained comparisons etc. are just not definitions).
                None => {
                    assigned_anywhere.insert(tok.name.clone());
                }
            }
        }
    }

    // References: identifiers used that are defined nowhere in this cell.
    let defined_set: HashSet<&String> = defined.iter().collect();
    let mut referenced: Vec<String> = Vec::new();
    for tok in &idents {
        if tok.after_dot
            || tok.before_assign
            || PY_KEYWORDS.contains(&tok.name.as_str())
            || PY_BUILTINS.contains(&tok.name.as_str())
        {
            continue;
        }
        if defined_set.contains(&tok.name)
            || assigned_anywhere.contains(&tok.name)
            || params_and_locals.contains(&tok.name)
        {
            continue;
        }
        if !referenced.contains(&tok.name) {
            referenced.push(tok.name.clone());
        }
    }

    PyAnalysis {
        defined,
        referenced,
        syntax_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_assignment_and_reference() {
        let a = analyze("y = x + 1\nprint(y)");
        assert_eq!(a.defined, vec!["y"]);
        assert_eq!(a.referenced, vec!["x"]);
        assert!(a.syntax_ok);
    }

    #[test]
    fn imports_define_globals() {
        let a =
            analyze("import pandas as pd\nfrom math import sqrt\ndf = pd.DataFrame()\nr = sqrt(2)");
        assert!(a.defined.contains(&"pd".to_string()));
        assert!(a.defined.contains(&"sqrt".to_string()));
        assert!(a.defined.contains(&"df".to_string()));
        assert!(a.referenced.is_empty(), "{:?}", a.referenced);
    }

    #[test]
    fn function_defs_and_locals_are_scoped() {
        let src =
            "def clean(frame):\n    tmp = frame.dropna()\n    return tmp\nresult = clean(raw_df)";
        let a = analyze(src);
        assert!(a.defined.contains(&"clean".to_string()));
        assert!(a.defined.contains(&"result".to_string()));
        // `frame` (param) and `tmp` (local) are not external references.
        assert_eq!(a.referenced, vec!["raw_df"]);
    }

    #[test]
    fn attributes_and_kwargs_are_not_references() {
        let a = analyze("out = df.groupby('region').agg(total=('amount', 'sum'))");
        assert_eq!(a.referenced, vec!["df"]);
        assert_eq!(a.defined, vec!["out"]);
    }

    #[test]
    fn strings_and_comments_ignored() {
        let a = analyze("# uses mystery_var\ns = 'mystery_var'\nprint(s)");
        assert_eq!(a.referenced, Vec::<String>::new());
    }

    #[test]
    fn tuple_assignment() {
        let a = analyze("a, b = compute(x)");
        assert!(a.defined.contains(&"a".to_string()));
        assert!(a.defined.contains(&"b".to_string()));
        assert!(a.referenced.contains(&"x".to_string()));
        assert!(a.referenced.contains(&"compute".to_string()));
    }

    #[test]
    fn augmented_assignment_is_both() {
        // `total += x`: scan treats `total +=` — our before_assign only
        // matches plain `=`; `+=` has prev '+', accept that total appears
        // as a reference here, which still creates the right edge.
        let a = analyze("total = total + x");
        assert!(a.defined.contains(&"total".to_string()));
        assert!(a.referenced.contains(&"x".to_string()));
    }

    #[test]
    fn syntax_check_catches_imbalance() {
        assert!(!analyze("f(x").syntax_ok);
        assert!(!analyze("s = 'unterminated").syntax_ok);
        assert!(analyze("f(x)").syntax_ok);
    }

    #[test]
    fn for_loop_target_defined() {
        let a = analyze("for row in rows:\n    print(row)");
        assert!(a.defined.contains(&"row".to_string()));
        assert_eq!(a.referenced, vec!["rows"]);
    }

    #[test]
    fn comparison_not_assignment() {
        let a = analyze("flag = x == y");
        assert_eq!(a.defined, vec!["flag"]);
        assert!(a.referenced.contains(&"x".to_string()));
        assert!(a.referenced.contains(&"y".to_string()));
    }

    #[test]
    fn multiline_call_continuation() {
        let src = "result = df.pivot(\n    index='a',\n    columns='b',\n)";
        let a = analyze(src);
        assert_eq!(a.defined, vec!["result"]);
        assert_eq!(a.referenced, vec!["df"]);
        assert!(a.syntax_ok);
    }
}
