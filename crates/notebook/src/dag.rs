//! Cell-dependency DAG construction (paper §VI, Algorithm 3) with
//! real-time incremental maintenance.

use crate::cell::{Cell, CellId, CellKind, Notebook};
use crate::pymini;
use std::collections::{HashMap, HashSet, VecDeque};

/// The variable analysis of one cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellAnalysis {
    /// Variables this cell defines for the rest of the notebook.
    pub defined: Vec<String>,
    /// External variables this cell references.
    pub referenced: Vec<String>,
    /// Whether the cell passed its language's syntax check.
    pub syntax_ok: bool,
}

/// Analyses one cell according to its kind (Algorithm 3, first loop).
pub fn analyze_cell(cell: &Cell) -> CellAnalysis {
    match cell.kind {
        CellKind::Python => {
            let a = pymini::analyze(&cell.source);
            CellAnalysis {
                defined: a.defined,
                referenced: a.referenced,
                syntax_ok: a.syntax_ok,
            }
        }
        CellKind::Sql => {
            // A SQL cell's SELECT output is stored in its data variable;
            // tables it reads that are other cells' outputs are external
            // variable references.
            let defined = cell.output_var.clone().into_iter().collect();
            let (referenced, syntax_ok) = match datalab_sql::parse_select(&cell.source) {
                Ok(sel) => {
                    let mut tables = Vec::new();
                    collect_tables(&sel, &mut tables);
                    (tables, true)
                }
                Err(_) => (scan_from_tables(&cell.source), false),
            };
            CellAnalysis {
                defined,
                referenced,
                syntax_ok,
            }
        }
        CellKind::Chart => {
            // The chart references its underlying data variable.
            let referenced = datalab_viz::ChartSpec::from_json(&cell.source)
                .ok()
                .map(|s| s.data)
                .filter(|d| !d.is_empty())
                .into_iter()
                .collect();
            let syntax_ok = datalab_viz::ChartSpec::from_json(&cell.source).is_ok();
            CellAnalysis {
                defined: Vec::new(),
                referenced,
                syntax_ok,
            }
        }
        // Markdown cells neither produce nor reference variables.
        CellKind::Markdown => CellAnalysis {
            syntax_ok: true,
            ..Default::default()
        },
    }
}

fn collect_tables(sel: &datalab_sql::Select, out: &mut Vec<String>) {
    let add_ref = |r: &datalab_sql::TableRef, out: &mut Vec<String>| match r {
        datalab_sql::TableRef::Named { name, .. } => {
            if !out.iter().any(|t| t.eq_ignore_ascii_case(name)) {
                out.push(name.clone());
            }
        }
        datalab_sql::TableRef::Derived { query, .. } => collect_tables(query, out),
    };
    if let Some(from) = &sel.from {
        add_ref(from, out);
    }
    for j in &sel.joins {
        add_ref(&j.table, out);
    }
}

/// Fallback table scan for unparseable SQL: tokens following FROM/JOIN.
fn scan_from_tables(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let toks: Vec<&str> = sql.split_whitespace().collect();
    for (i, t) in toks.iter().enumerate() {
        if t.eq_ignore_ascii_case("from") || t.eq_ignore_ascii_case("join") {
            if let Some(next) = toks.get(i + 1) {
                let name: String = next
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && !out.contains(&name) {
                    out.push(name);
                }
            }
        }
    }
    out
}

/// The notebook dependency DAG: nodes are cells, edges point from a cell
/// to the cells it depends on (its referenced-variable definers).
#[derive(Debug, Clone, Default)]
pub struct CellDag {
    /// Per-cell analysis.
    analyses: HashMap<CellId, CellAnalysis>,
    /// cell → cells it depends on.
    deps: HashMap<CellId, Vec<CellId>>,
    /// cell → cells depending on it.
    rdeps: HashMap<CellId, Vec<CellId>>,
}

impl CellDag {
    /// Full construction over a notebook (Algorithm 3).
    pub fn build(notebook: &Notebook) -> CellDag {
        let mut dag = CellDag::default();
        for cell in notebook.cells() {
            dag.analyses.insert(cell.id, analyze_cell(cell));
        }
        dag.rebuild_edges(notebook);
        dag
    }

    /// Incremental update after one cell was created or modified. Per the
    /// paper, the update is applied only when the cell passes the syntax
    /// check; otherwise the previous analysis is retained. Returns whether
    /// the DAG changed.
    pub fn update_cell(&mut self, notebook: &Notebook, id: CellId) -> bool {
        let cell = match notebook.get(id) {
            Some(c) => c,
            None => return false,
        };
        let analysis = analyze_cell(cell);
        if !analysis.syntax_ok && self.analyses.contains_key(&id) {
            return false;
        }
        let changed = self.analyses.get(&id) != Some(&analysis);
        self.analyses.insert(id, analysis);
        if changed {
            self.rebuild_edges(notebook);
        }
        changed
    }

    /// Incremental update after a cell deletion.
    pub fn remove_cell(&mut self, notebook: &Notebook, id: CellId) {
        self.analyses.remove(&id);
        self.rebuild_edges(notebook);
    }

    /// Recomputes the edge sets from the stored analyses (Algorithm 3,
    /// second loop). Edge resolution honours notebook order: a reference
    /// binds to the *closest preceding* definition, falling back to the
    /// first later definition (out-of-order notebooks happen in practice).
    fn rebuild_edges(&mut self, notebook: &Notebook) {
        self.deps.clear();
        self.rdeps.clear();
        // Variable → ordered list of defining cells.
        let mut var_hash: HashMap<String, Vec<(usize, CellId)>> = HashMap::new();
        for (pos, cell) in notebook.cells().iter().enumerate() {
            if let Some(a) = self.analyses.get(&cell.id) {
                for v in &a.defined {
                    var_hash
                        .entry(v.to_lowercase())
                        .or_default()
                        .push((pos, cell.id));
                }
            }
        }
        for (pos, cell) in notebook.cells().iter().enumerate() {
            let a = match self.analyses.get(&cell.id) {
                Some(a) => a,
                None => continue,
            };
            let mut cell_deps: Vec<CellId> = Vec::new();
            for v in &a.referenced {
                if let Some(defs) = var_hash.get(&v.to_lowercase()) {
                    let before = defs.iter().rev().find(|(p, c)| *p < pos && *c != cell.id);
                    let chosen =
                        before.or_else(|| defs.iter().find(|(p, c)| *p != pos && *c != cell.id));
                    if let Some((_, def_cell)) = chosen {
                        if !cell_deps.contains(def_cell) {
                            cell_deps.push(*def_cell);
                        }
                    }
                }
            }
            for d in &cell_deps {
                self.rdeps.entry(*d).or_default().push(cell.id);
            }
            self.deps.insert(cell.id, cell_deps);
        }
    }

    /// The cells `id` directly depends on.
    pub fn dependencies(&self, id: CellId) -> &[CellId] {
        self.deps.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The cells directly depending on `id`.
    pub fn dependents(&self, id: CellId) -> &[CellId] {
        self.rdeps.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The analysis of a cell.
    pub fn analysis(&self, id: CellId) -> Option<&CellAnalysis> {
        self.analyses.get(&id)
    }

    /// All transitive ancestors (dependencies) of a cell.
    pub fn ancestors(&self, id: CellId) -> Vec<CellId> {
        self.walk(id, |dag, c| dag.dependencies(c))
    }

    /// All transitive descendants (dependents) of a cell.
    pub fn descendants(&self, id: CellId) -> Vec<CellId> {
        self.walk(id, |dag, c| dag.dependents(c))
    }

    fn walk<'a, F>(&'a self, start: CellId, next: F) -> Vec<CellId>
    where
        F: Fn(&'a CellDag, CellId) -> &'a [CellId],
    {
        let mut seen: HashSet<CellId> = HashSet::from([start]);
        let mut order = Vec::new();
        let mut q = VecDeque::from([start]);
        while let Some(c) = q.pop_front() {
            for &n in next(self, c) {
                if seen.insert(n) {
                    order.push(n);
                    q.push_back(n);
                }
            }
        }
        order
    }

    /// Cells made stale by new rows in `name` (a base table or a
    /// variable): every cell referencing it plus all their transitive
    /// dependents, in notebook order. The ingestion path counts these
    /// as `dag.invalidated` so derived results are never read stale.
    pub fn invalidated_by(&self, notebook: &Notebook, name: &str) -> Vec<CellId> {
        let lower = name.to_lowercase();
        let mut stale: HashSet<CellId> = HashSet::new();
        for cell in notebook.cells() {
            let references_it = self
                .analyses
                .get(&cell.id)
                .map(|a| a.referenced.iter().any(|r| r.to_lowercase() == lower))
                .unwrap_or(false);
            if references_it && stale.insert(cell.id) {
                stale.extend(self.descendants(cell.id));
            }
        }
        notebook
            .cells()
            .iter()
            .map(|c| c.id)
            .filter(|id| stale.contains(id))
            .collect()
    }

    /// The cell that defines a variable (closest to the end of the
    /// notebook), used by notebook-level context retrieval.
    pub fn definer_of(&self, notebook: &Notebook, var: &str) -> Option<CellId> {
        let lower = var.to_lowercase();
        notebook
            .cells()
            .iter()
            .rev()
            .find(|c| {
                self.analyses
                    .get(&c.id)
                    .map(|a| a.defined.iter().any(|d| d.to_lowercase() == lower))
                    .unwrap_or(false)
            })
            .map(|c| c.id)
    }

    /// Every variable defined in the notebook with its defining cell.
    pub fn defined_variables(&self, notebook: &Notebook) -> Vec<(String, CellId)> {
        let mut out = Vec::new();
        for cell in notebook.cells() {
            if let Some(a) = self.analyses.get(&cell.id) {
                for v in &a.defined {
                    out.push((v.clone(), cell.id));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// sales (sql) -> clean (py) -> chart; md floats free.
    fn notebook() -> (Notebook, CellId, CellId, CellId, CellId) {
        let mut nb = Notebook::new();
        let sql = nb.push_sql("SELECT region, amount FROM sales", "df_sales");
        let py = nb.push(
            CellKind::Python,
            "clean = df_sales.dropna()\ntotal = clean.sum()",
        );
        let md = nb.push(CellKind::Markdown, "## Revenue analysis notes");
        let chart = nb.push(
            CellKind::Chart,
            r#"{"mark":"bar","data":"clean","x":{"field":"region"},"y":{"field":"amount","aggregate":"sum"}}"#,
        );
        (nb, sql, py, md, chart)
    }

    #[test]
    fn builds_expected_edges() {
        let (nb, sql, py, md, chart) = notebook();
        let dag = CellDag::build(&nb);
        assert_eq!(dag.dependencies(py), &[sql]);
        assert_eq!(dag.dependencies(chart), &[py]);
        assert!(dag.dependencies(sql).is_empty());
        assert!(dag.dependencies(md).is_empty());
        assert_eq!(dag.dependents(sql), &[py]);
    }

    #[test]
    fn ancestors_and_descendants_are_transitive() {
        let (nb, sql, py, _md, chart) = notebook();
        let dag = CellDag::build(&nb);
        let anc = dag.ancestors(chart);
        assert!(anc.contains(&py) && anc.contains(&sql));
        let desc = dag.descendants(sql);
        assert!(desc.contains(&py) && desc.contains(&chart));
    }

    #[test]
    fn update_rewires_on_modification() {
        let (mut nb, sql, py, _md, chart) = notebook();
        let mut dag = CellDag::build(&nb);
        // The chart now draws directly from the SQL output variable.
        nb.modify(
            chart,
            r#"{"mark":"bar","data":"df_sales","x":{"field":"region"},"y":{"field":"amount","aggregate":"sum"}}"#,
        );
        assert!(dag.update_cell(&nb, chart));
        assert_eq!(dag.dependencies(chart), &[sql]);
        assert_eq!(dag.dependents(py), &[] as &[CellId]);
    }

    #[test]
    fn syntax_error_updates_are_rejected() {
        let (mut nb, _sql, py, _md, _chart) = notebook();
        let mut dag = CellDag::build(&nb);
        let before = dag.analysis(py).cloned();
        nb.modify(py, "clean = df_sales.dropna(");
        assert!(!dag.update_cell(&nb, py));
        assert_eq!(dag.analysis(py).cloned(), before);
    }

    #[test]
    fn deletion_removes_edges() {
        let (mut nb, _sql, py, _md, chart) = notebook();
        let mut dag = CellDag::build(&nb);
        nb.delete(py);
        dag.remove_cell(&nb, py);
        assert!(dag.dependencies(chart).is_empty());
    }

    #[test]
    fn closest_preceding_definition_wins() {
        let mut nb = Notebook::new();
        let a = nb.push(CellKind::Python, "x = 1");
        let b = nb.push(CellKind::Python, "x = 2");
        let c = nb.push(CellKind::Python, "y = x + 1");
        let dag = CellDag::build(&nb);
        assert_eq!(dag.dependencies(c), &[b]);
        assert!(dag.dependents(a).is_empty());
        assert_eq!(dag.definer_of(&nb, "x"), Some(b));
    }

    #[test]
    fn ingesting_a_table_invalidates_referencers_and_descendants() {
        let (nb, sql, py, md, chart) = notebook();
        let dag = CellDag::build(&nb);
        // New rows in `sales` stale the SQL cell and, transitively, the
        // python cleanup and the chart — but not the markdown note.
        let stale = dag.invalidated_by(&nb, "SALES");
        assert_eq!(stale, vec![sql, py, chart]);
        assert!(!stale.contains(&md));
        assert!(dag.invalidated_by(&nb, "unknown_table").is_empty());
    }

    #[test]
    fn sql_cell_referencing_prior_output_var() {
        let mut nb = Notebook::new();
        let first = nb.push_sql("SELECT * FROM sales", "stage1");
        let second = nb.push_sql("SELECT region FROM stage1", "stage2");
        let dag = CellDag::build(&nb);
        assert_eq!(dag.dependencies(second), &[first]);
    }

    #[test]
    fn unparseable_sql_still_scans_tables() {
        let mut nb = Notebook::new();
        let first = nb.push_sql("SELECT * FROM sales", "stage1");
        // Invalid SQL, but the FROM target is still discoverable.
        let second = nb.push_sql("SELEC region FROM stage1 WHERE", "stage2");
        let dag = CellDag::build(&nb);
        assert_eq!(dag.dependencies(second), &[first]);
        assert!(!dag.analysis(second).unwrap().syntax_ok);
    }
}
