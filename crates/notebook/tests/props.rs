//! Property-based tests for the notebook subsystem: analyser totality,
//! DAG acyclicity, and incremental-update consistency with full rebuilds.

use datalab_notebook::{analyze, CellDag, CellKind, Notebook};
use proptest::prelude::*;

/// Builds a random (but structurally sensible) notebook: each Python cell
/// optionally references the variable defined by an earlier cell.
fn notebook_strategy() -> impl Strategy<Value = Notebook> {
    prop::collection::vec((0usize..5, any::<bool>()), 1..14).prop_map(|cells| {
        let mut nb = Notebook::new();
        for (i, (back_ref, markdown)) in cells.into_iter().enumerate() {
            if markdown && i % 3 == 0 {
                nb.push(CellKind::Markdown, format!("notes about step {i}"));
            } else if i == 0 {
                nb.push_sql("SELECT a, b FROM base", "v0");
            } else {
                let target = i - 1 - (back_ref % i).min(i - 1);
                nb.push(CellKind::Python, format!("v{i} = v{target}.dropna()"));
            }
        }
        nb
    })
}

proptest! {
    #[test]
    fn pymini_never_panics(src in ".{0,200}") {
        let _ = analyze(&src);
    }

    #[test]
    fn pymini_defined_and_referenced_disjoint(src in "[a-z0-9 =+().\n_]{0,120}") {
        let a = analyze(&src);
        for r in &a.referenced {
            prop_assert!(!a.defined.contains(r), "{:?}", a);
        }
    }

    #[test]
    fn dag_has_no_self_or_cyclic_deps(nb in notebook_strategy()) {
        let dag = CellDag::build(&nb);
        for cell in nb.cells() {
            let anc = dag.ancestors(cell.id);
            prop_assert!(!anc.contains(&cell.id), "cycle through {:?}", cell.id);
            // Every ancestor is an earlier cell (our generator only makes
            // backward references).
            let pos = nb.position(cell.id).unwrap();
            for a in anc {
                prop_assert!(nb.position(a).unwrap() < pos);
            }
        }
    }

    #[test]
    fn ancestors_and_descendants_are_converse(nb in notebook_strategy()) {
        let dag = CellDag::build(&nb);
        for cell in nb.cells() {
            for a in dag.ancestors(cell.id) {
                prop_assert!(
                    dag.descendants(a).contains(&cell.id),
                    "{:?} ancestor of {:?} but not converse",
                    a,
                    cell.id
                );
            }
        }
    }

    #[test]
    fn incremental_update_matches_full_rebuild(nb in notebook_strategy(), edit in 0usize..14) {
        let mut nb = nb;
        let mut dag = CellDag::build(&nb);
        // Apply a random (valid) edit.
        let ids: Vec<_> = nb.cells().iter().map(|c| c.id).collect();
        let target = ids[edit % ids.len()];
        if nb.get(target).map(|c| c.kind == CellKind::Python).unwrap_or(false) {
            nb.modify(target, "standalone = 1 + 1");
            dag.update_cell(&nb, target);
            let fresh = CellDag::build(&nb);
            for cell in nb.cells() {
                prop_assert_eq!(
                    dag.dependencies(cell.id),
                    fresh.dependencies(cell.id),
                    "incremental and full DAGs diverge at {:?}",
                    cell.id
                );
            }
        }
    }
}
