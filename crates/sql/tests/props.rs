//! Property-based tests for the SQL engine: lexer totality, parse/print
//! stability, LIKE semantics, and EX-comparison algebra.

use datalab_frame::{DataFrame, DataType, Value};
use datalab_sql::{ex_equal, like_match, parse_select, run_sql, Database};
use proptest::prelude::*;

/// Reference LIKE implementation (recursive, obviously correct).
fn like_ref(s: &[char], p: &[char]) -> bool {
    match (p.first(), s.first()) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some('%'), _) => like_ref(s, &p[1..]) || (!s.is_empty() && like_ref(&s[1..], p)),
        (Some('_'), Some(_)) => like_ref(&s[1..], &p[1..]),
        (Some(c), Some(d)) => *c == *d && like_ref(&s[1..], &p[1..]),
        (Some(_), None) => false,
    }
}

fn small_db(rows: Vec<(String, i64)>) -> Database {
    let mut db = Database::new();
    db.insert(
        "t",
        DataFrame::from_columns(vec![
            (
                "k",
                DataType::Str,
                rows.iter().map(|(k, _)| Value::Str(k.clone())).collect(),
            ),
            (
                "v",
                DataType::Int,
                rows.iter().map(|(_, v)| Value::Int(*v)).collect(),
            ),
        ])
        .expect("valid"),
    );
    db
}

proptest! {
    #[test]
    fn tokenizer_and_parser_never_panic(input in ".{0,80}") {
        let _ = parse_select(&input);
    }

    #[test]
    fn like_matches_reference(s in "[abc%_]{0,8}", p in "[abc%_]{0,6}") {
        let sc: Vec<char> = s.chars().collect();
        let pc: Vec<char> = p.chars().collect();
        prop_assert_eq!(like_match(&s, &p), like_ref(&sc, &pc));
    }

    #[test]
    fn parse_print_parse_is_stable(
        cols in prop::collection::vec("c[a-z]{1,5}", 1..4),
        n in 0i64..100,
        desc in any::<bool>(),
        limit in prop::option::of(1usize..20),
    ) {
        // Build a query from parts, print it, reparse, compare.
        let mut sql = format!("SELECT {} FROM t WHERE {} > {}", cols.join(", "), cols[0], n);
        sql.push_str(&format!(" ORDER BY {}{}", cols[0], if desc { " DESC" } else { "" }));
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let ast1 = parse_select(&sql).expect("constructed SQL parses");
        let printed = ast1.to_string();
        let ast2 = parse_select(&printed).expect("printed SQL parses");
        prop_assert_eq!(ast1, ast2);
    }

    #[test]
    fn execution_where_true_is_identity(rows in prop::collection::vec(("[ab]{1,3}", -50i64..50), 0..20)) {
        let rows: Vec<(String, i64)> = rows.into_iter().map(|(k, v)| (k, v)).collect();
        let db = small_db(rows.clone());
        let all = run_sql("SELECT k, v FROM t", &db).expect("runs");
        prop_assert_eq!(all.n_rows(), rows.len());
        // WHERE about half: the two halves partition the table.
        let hi = run_sql("SELECT k, v FROM t WHERE v >= 0", &db).expect("runs");
        let lo = run_sql("SELECT k, v FROM t WHERE v < 0", &db).expect("runs");
        prop_assert_eq!(hi.n_rows() + lo.n_rows(), rows.len());
    }

    #[test]
    fn group_by_matches_frame_group_by(rows in prop::collection::vec(("[abc]{1}", -50i64..50), 1..25)) {
        let rows: Vec<(String, i64)> = rows.into_iter().collect();
        let db = small_db(rows);
        let via_sql = run_sql("SELECT k, SUM(v) FROM t GROUP BY k", &db).expect("runs");
        let via_frame = db
            .get("t")
            .unwrap()
            .group_by(&["k"], &[datalab_frame::AggExpr::new(datalab_frame::AggFunc::Sum, "v", "s")])
            .expect("groups");
        prop_assert!(ex_equal(&via_sql, &via_frame, false));
    }

    #[test]
    fn ex_equal_is_reflexive_and_symmetric(rows in prop::collection::vec(("[ab]{1,2}", -9i64..9), 0..10)) {
        let db = small_db(rows.into_iter().collect());
        let a = run_sql("SELECT k, v FROM t", &db).expect("runs");
        let b = run_sql("SELECT v, k FROM t", &db).expect("runs");
        prop_assert!(ex_equal(&a, &a, false));
        prop_assert_eq!(ex_equal(&a, &b, false), ex_equal(&b, &a, false));
        prop_assert!(ex_equal(&a, &b, false), "column permutation is EX-equal");
    }

    #[test]
    fn order_by_limit_prefix_property(rows in prop::collection::vec(("[ab]{1}", -50i64..50), 1..25), k in 1usize..10) {
        let db = small_db(rows.into_iter().collect());
        let full = run_sql("SELECT v FROM t ORDER BY v DESC", &db).expect("runs");
        let top = run_sql(&format!("SELECT v FROM t ORDER BY v DESC LIMIT {k}"), &db).expect("runs");
        prop_assert_eq!(top.n_rows(), k.min(full.n_rows()));
        for i in 0..top.n_rows() {
            prop_assert_eq!(&top.column("v").unwrap()[i], &full.column("v").unwrap()[i]);
        }
    }
}
