//! Row-at-a-time SELECT executor.
//!
//! Evaluation is deliberately simple (nested-loop joins, hash grouping);
//! benchmark tables in this reproduction are small, and correctness — not
//! throughput — is what the EX metric depends on.

use crate::ast::*;
use crate::db::Database;
use crate::error::{Result, SqlError};
use datalab_frame::{AggFunc, DataFrame, DataType, Field, Schema, Value};
use std::collections::HashMap;

/// Executes a parsed SELECT against a database.
pub fn execute(sel: &Select, db: &Database) -> Result<DataFrame> {
    let source = build_source(sel, db)?;
    project(sel, source)
}

/// Parses and executes SQL text in one call.
pub fn run_sql(sql: &str, db: &Database) -> Result<DataFrame> {
    let sel = crate::parser::parse_select(sql)?;
    execute(&sel, db)
}

/// One in-scope column during evaluation.
#[derive(Debug, Clone)]
struct BindEntry {
    /// Lower-cased binding qualifier (table name or alias).
    qualifier: Option<String>,
    /// Column name (case preserved).
    name: String,
}

/// The evaluation scope: which (qualifier, column) pairs are visible.
#[derive(Debug, Clone, Default)]
struct Binding {
    entries: Vec<BindEntry>,
}

impl Binding {
    fn from_frame(df: &DataFrame, qualifier: &str) -> Binding {
        let q = qualifier.to_ascii_lowercase();
        Binding {
            entries: df
                .schema()
                .fields()
                .iter()
                .map(|f| BindEntry {
                    qualifier: Some(q.clone()),
                    name: f.name.clone(),
                })
                .collect(),
        }
    }

    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let tl = table.map(str::to_ascii_lowercase);
        let mut found = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(t) = &tl {
                if e.qualifier.as_deref() != Some(t.as_str()) {
                    continue;
                }
            }
            if found.is_none() {
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            SqlError::ColumnNotFound(match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_string(),
            })
        })
    }
}

/// The working set: a binding plus row-major data.
struct WorkSet {
    binding: Binding,
    rows: Vec<Vec<Value>>,
}

fn table_workset(tref: &TableRef, db: &Database) -> Result<WorkSet> {
    match tref {
        TableRef::Named { name, alias } => {
            let df = db.get(name)?;
            let qual = alias.as_deref().unwrap_or(name);
            let rows = (0..df.n_rows()).map(|i| df.row(i)).collect();
            Ok(WorkSet {
                binding: Binding::from_frame(df, qual),
                rows,
            })
        }
        TableRef::Derived { query, alias } => {
            let df = execute(query, db)?;
            let rows = (0..df.n_rows()).map(|i| df.row(i)).collect();
            Ok(WorkSet {
                binding: Binding::from_frame(&df, alias),
                rows,
            })
        }
    }
}

fn build_source(sel: &Select, db: &Database) -> Result<WorkSet> {
    let mut ws = match &sel.from {
        Some(t) => table_workset(t, db)?,
        // Table-less SELECT: a single empty row so literals evaluate once.
        None => WorkSet {
            binding: Binding::default(),
            rows: vec![Vec::new()],
        },
    };
    for join in &sel.joins {
        let right = table_workset(&join.table, db)?;
        let mut binding = ws.binding.clone();
        binding
            .entries
            .extend(right.binding.entries.iter().cloned());
        let mut rows = Vec::new();
        for lrow in &ws.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                combined.extend(lrow.iter().cloned());
                combined.extend(rrow.iter().cloned());
                if truthy(&eval(&join.on, &binding, &Ctx::Row(&combined))?) {
                    rows.push(combined);
                    matched = true;
                }
            }
            if !matched && join.kind == JoinType::Left {
                let mut combined = Vec::with_capacity(lrow.len() + right.binding.entries.len());
                combined.extend(lrow.iter().cloned());
                combined.extend(std::iter::repeat_n(
                    Value::Null,
                    right.binding.entries.len(),
                ));
                rows.push(combined);
            }
        }
        ws = WorkSet { binding, rows };
    }
    if let Some(pred) = &sel.where_clause {
        let binding = ws.binding.clone();
        let mut rows = Vec::with_capacity(ws.rows.len());
        for row in ws.rows {
            if truthy(&eval(pred, &binding, &Ctx::Row(&row))?) {
                rows.push(row);
            }
        }
        ws = WorkSet { binding, rows };
    }
    Ok(ws)
}

/// Evaluation context: a single row, or a group of rows (for aggregates).
enum Ctx<'a> {
    Row(&'a [Value]),
    Group(&'a [Vec<Value>]),
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Expands wildcards into explicit column expressions.
fn expand_items(sel: &Select, binding: &Binding) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for e in &binding.entries {
                    out.push((
                        Expr::Column {
                            table: e.qualifier.clone(),
                            name: e.name.clone(),
                        },
                        e.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let tl = t.to_ascii_lowercase();
                let before = out.len();
                for e in &binding.entries {
                    if e.qualifier.as_deref() == Some(tl.as_str()) {
                        out.push((
                            Expr::Column {
                                table: e.qualifier.clone(),
                                name: e.name.clone(),
                            },
                            e.name.clone(),
                        ));
                    }
                }
                if out.len() == before {
                    return Err(SqlError::TableNotFound(t.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    other => other.to_string(),
                });
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn project(sel: &Select, source: WorkSet) -> Result<DataFrame> {
    let binding = source.binding;
    let items = expand_items(sel, &binding)?;
    let is_aggregate = !sel.group_by.is_empty()
        || sel.having.is_some()
        || items.iter().any(|(e, _)| e.contains_aggregate());

    // Each output row plus the context rows it came from, retained so
    // ORDER BY expressions can still be evaluated against the source.
    let mut out_rows: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();

    if is_aggregate {
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut ordered: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
        for row in source.rows {
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(g, &binding, &Ctx::Row(&row))?);
            }
            match groups.get(&key) {
                Some(&i) => ordered[i].1.push(row),
                None => {
                    groups.insert(key.clone(), ordered.len());
                    ordered.push((key, vec![row]));
                }
            }
        }
        if sel.group_by.is_empty() && ordered.is_empty() {
            ordered.push((Vec::new(), Vec::new()));
        }
        for (_key, rows) in ordered {
            if let Some(h) = &sel.having {
                if !truthy(&eval(h, &binding, &Ctx::Group(&rows))?) {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(items.len());
            for (expr, _) in &items {
                out.push(eval(expr, &binding, &Ctx::Group(&rows))?);
            }
            out_rows.push((out, rows));
        }
    } else {
        for row in source.rows {
            let mut out = Vec::with_capacity(items.len());
            for (expr, _) in &items {
                out.push(eval(expr, &binding, &Ctx::Row(&row))?);
            }
            out_rows.push((out, vec![row]));
        }
    }

    if sel.distinct {
        let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
        out_rows.retain(|(row, _)| seen.insert(row.clone(), ()).is_none());
    }

    // ORDER BY: alias, ordinal, or arbitrary expression over the context.
    if !sel.order_by.is_empty() {
        let names: Vec<&String> = items.iter().map(|(_, n)| n).collect();
        // Pre-compute sort keys.
        let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(out_rows.len());
        for (i, (row, ctx_rows)) in out_rows.iter().enumerate() {
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for ok in &sel.order_by {
                let v = order_key_value(&ok.expr, row, ctx_rows, &names, &binding, is_aggregate)?;
                keys.push(v);
            }
            keyed.push((keys, i));
        }
        keyed.sort_by(|(ka, ia), (kb, ib)| {
            for (j, ok) in sel.order_by.iter().enumerate() {
                let ord = ka[j].total_cmp(&kb[j]);
                if ord != std::cmp::Ordering::Equal {
                    return if ok.ascending { ord } else { ord.reverse() };
                }
            }
            ia.cmp(ib) // stable
        });
        let order: Vec<usize> = keyed.into_iter().map(|(_, i)| i).collect();
        let mut reordered = Vec::with_capacity(out_rows.len());
        for i in order {
            reordered.push(out_rows[i].clone());
        }
        out_rows = reordered;
    }

    if let Some(n) = sel.limit {
        out_rows.truncate(n);
    }

    // Infer output column types from the produced values.
    let n_cols = items.len();
    let mut dtypes = vec![DataType::Null; n_cols];
    for (row, _) in &out_rows {
        for (c, v) in row.iter().enumerate() {
            dtypes[c] = unify_dtype(dtypes[c], v.dtype());
        }
    }
    let fields: Vec<Field> = items
        .iter()
        .zip(&dtypes)
        .map(|((_, name), t)| Field::new(dedup_name(name), *t))
        .collect();
    // Output columns may repeat names (e.g. `SELECT a, a`); make unique.
    let mut unique = Vec::with_capacity(fields.len());
    let mut used: HashMap<String, usize> = HashMap::new();
    for f in fields {
        let key = f.name.to_ascii_lowercase();
        let n = used.entry(key).or_insert(0);
        let name = if *n == 0 {
            f.name.clone()
        } else {
            format!("{}_{}", f.name, n)
        };
        *n += 1;
        unique.push(Field::new(name, f.dtype));
    }
    let mut df = DataFrame::new(Schema::new(unique)?);
    for (row, _) in out_rows {
        df.push_row(row)?;
    }
    Ok(df)
}

fn dedup_name(name: &str) -> String {
    name.to_string()
}

fn unify_dtype(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    match (a, b) {
        (Null, t) | (t, Null) => t,
        (x, y) if x == y => x,
        (Int, Float) | (Float, Int) => Float,
        _ => Str,
    }
}

fn order_key_value(
    expr: &Expr,
    out_row: &[Value],
    ctx_rows: &[Vec<Value>],
    names: &[&String],
    binding: &Binding,
    is_aggregate: bool,
) -> Result<Value> {
    // 1-based ordinal.
    if let Expr::Literal(Value::Int(i)) = expr {
        let idx = *i as usize;
        if idx >= 1 && idx <= out_row.len() {
            return Ok(out_row[idx - 1].clone());
        }
    }
    // Output alias.
    if let Expr::Column { table: None, name } = expr {
        if let Some(pos) = names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
            return Ok(out_row[pos].clone());
        }
    }
    // Fall back to evaluating against the retained context.
    if is_aggregate {
        eval(expr, binding, &Ctx::Group(ctx_rows))
    } else if let Some(first) = ctx_rows.first() {
        eval(expr, binding, &Ctx::Row(first))
    } else {
        Ok(Value::Null)
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

fn eval(expr: &Expr, binding: &Binding, ctx: &Ctx<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let idx = binding.resolve(table.as_deref(), name)?;
            match ctx {
                Ctx::Row(row) => Ok(row.get(idx).cloned().unwrap_or(Value::Null)),
                // Scalar column inside a group: representative first row
                // (SQLite-style loose grouping).
                Ctx::Group(rows) => Ok(rows
                    .first()
                    .and_then(|r| r.get(idx))
                    .cloned()
                    .unwrap_or(Value::Null)),
            }
        }
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => {
            let v = eval(expr, binding, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(SqlError::Eval(format!("cannot negate {}", other.dtype()))),
            }
        }
        Expr::Unary {
            op: UnOp::Not,
            expr,
        } => {
            let v = eval(expr, binding, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(SqlError::Eval(format!("cannot NOT {}", other.dtype()))),
            }
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, binding, ctx),
        Expr::Agg {
            func,
            arg,
            distinct,
        } => match ctx {
            Ctx::Group(rows) => eval_aggregate(*func, arg.as_deref(), *distinct, rows, binding),
            Ctx::Row(row) => {
                // Aggregate over a single row (occurs when aggregates are
                // used without GROUP BY and the caller didn't group — treat
                // the row as a singleton group).
                let rows = vec![row.to_vec()];
                eval_aggregate(*func, arg.as_deref(), *distinct, &rows, binding)
            }
        },
        Expr::Func { name, args } => eval_scalar_fn(name, args, binding, ctx),
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, result) in branches {
                if truthy(&eval(cond, binding, ctx)?) {
                    return eval(result, binding, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, binding, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, binding, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let w = eval(item, binding, ctx)?;
                if !w.is_null() && v == w {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, binding, ctx)?;
            let lo = eval(low, binding, ctx)?;
            let hi = eval(high, binding, ctx)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let inside = v.total_cmp(&lo) != std::cmp::Ordering::Less
                && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(Value::Bool(inside != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, binding, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
                other => Ok(Value::Bool(
                    like_match(&other.render(), pattern) != *negated,
                )),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, binding, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

fn eval_binary(
    op: BinOp,
    left: &Expr,
    right: &Expr,
    binding: &Binding,
    ctx: &Ctx<'_>,
) -> Result<Value> {
    // Kleene logic for AND/OR so NULLs behave like SQL.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(left, binding, ctx)?;
        // Short-circuit where the answer is already determined.
        match (op, &l) {
            (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = eval(right, binding, ctx)?;
        return Ok(match (op, l, r) {
            (BinOp::And, Value::Bool(a), Value::Bool(b)) => Value::Bool(a && b),
            (BinOp::And, Value::Null, Value::Bool(false))
            | (BinOp::And, Value::Bool(false), Value::Null) => Value::Bool(false),
            (BinOp::Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(a || b),
            (BinOp::Or, Value::Null, Value::Bool(true))
            | (BinOp::Or, Value::Bool(true), Value::Null) => Value::Bool(true),
            _ => Value::Null,
        });
    }
    let l = eval(left, binding, ctx)?;
    let r = eval(right, binding, ctx)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Eq => Ok(Value::Bool(l == r)),
        BinOp::NotEq => Ok(Value::Bool(l != r)),
        BinOp::Lt => Ok(Value::Bool(l.total_cmp(&r) == std::cmp::Ordering::Less)),
        BinOp::LtEq => Ok(Value::Bool(l.total_cmp(&r) != std::cmp::Ordering::Greater)),
        BinOp::Gt => Ok(Value::Bool(l.total_cmp(&r) == std::cmp::Ordering::Greater)),
        BinOp::GtEq => Ok(Value::Bool(l.total_cmp(&r) != std::cmp::Ordering::Less)),
        BinOp::Concat => Ok(Value::Str(format!("{}{}", l.render(), r.render()))),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Mod => arith(op, &l, &r),
        BinOp::Div => {
            let (a, b) = numeric_pair(&l, &r)?;
            if b == 0.0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(a / b))
            }
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn numeric_pair(l: &Value, r: &Value) -> Result<(f64, f64)> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(SqlError::Eval(format!(
            "arithmetic on non-numeric values ({}, {})",
            l.dtype(),
            r.dtype()
        ))),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Date ± int days.
    if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
        match op {
            BinOp::Add => return Ok(Value::Date(d.add_days(n))),
            BinOp::Sub => return Ok(Value::Date(d.add_days(-n))),
            _ => {}
        }
    }
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(Value::Int(match op {
            BinOp::Add => a.wrapping_add(*b),
            BinOp::Sub => a.wrapping_sub(*b),
            BinOp::Mul => a.wrapping_mul(*b),
            BinOp::Mod => {
                if *b == 0 {
                    return Ok(Value::Null);
                }
                a.rem_euclid(*b)
            }
            _ => unreachable!(),
        }));
    }
    let (a, b) = numeric_pair(l, r)?;
    Ok(Value::Float(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Mod => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a.rem_euclid(b)
        }
        _ => unreachable!(),
    }))
}

fn eval_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    rows: &[Vec<Value>],
    binding: &Binding,
) -> Result<Value> {
    match arg {
        None => Ok(Value::Int(rows.len() as i64)), // COUNT(*)
        Some(arg) => {
            let mut values = Vec::with_capacity(rows.len());
            for row in rows {
                values.push(eval(arg, binding, &Ctx::Row(row))?);
            }
            if distinct && func != AggFunc::CountDistinct {
                let mut seen = HashMap::new();
                values.retain(|v| seen.insert(v.clone(), ()).is_none());
            }
            let refs: Vec<&Value> = values.iter().collect();
            func.apply(&refs).map_err(SqlError::Frame)
        }
    }
}

fn eval_scalar_fn(name: &str, args: &[Expr], binding: &Binding, ctx: &Ctx<'_>) -> Result<Value> {
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(a, binding, ctx)?);
    }
    let arity_err = || {
        SqlError::Eval(format!(
            "wrong number of arguments for {name}({})",
            vals.len()
        ))
    };
    match name {
        "abs" => {
            let v = vals.first().ok_or_else(arity_err)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(SqlError::Eval(format!("abs on {}", other.dtype()))),
            }
        }
        "round" => {
            let v = vals.first().ok_or_else(arity_err)?;
            let digits = vals.get(1).and_then(|d| d.as_i64()).unwrap_or(0);
            match v.as_f64() {
                None if v.is_null() => Ok(Value::Null),
                None => Err(SqlError::Eval("round on non-numeric".into())),
                Some(f) => {
                    let m = 10f64.powi(digits as i32);
                    Ok(Value::Float((f * m).round() / m))
                }
            }
        }
        "upper" => Ok(str_fn(&vals, |s| s.to_uppercase()).ok_or_else(arity_err)?),
        "lower" => Ok(str_fn(&vals, |s| s.to_lowercase()).ok_or_else(arity_err)?),
        "trim" => Ok(str_fn(&vals, |s| s.trim().to_string()).ok_or_else(arity_err)?),
        "length" => {
            let v = vals.first().ok_or_else(arity_err)?;
            match v {
                Value::Null => Ok(Value::Null),
                other => Ok(Value::Int(other.render().chars().count() as i64)),
            }
        }
        "coalesce" | "ifnull" => {
            for v in &vals {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        "substr" | "substring" => {
            let v = vals.first().ok_or_else(arity_err)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let s = v.render();
            let start = vals.get(1).and_then(|x| x.as_i64()).unwrap_or(1).max(1) as usize - 1;
            let len = vals
                .get(2)
                .and_then(|x| x.as_i64())
                .map(|l| l.max(0) as usize);
            let chars: Vec<char> = s.chars().collect();
            let end = match len {
                Some(l) => (start + l).min(chars.len()),
                None => chars.len(),
            };
            if start >= chars.len() {
                return Ok(Value::Str(String::new()));
            }
            Ok(Value::Str(chars[start..end].iter().collect()))
        }
        "year" | "month" | "day" => {
            let v = vals.first().ok_or_else(arity_err)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Date(d) => Ok(Value::Int(match name {
                    "year" => d.year() as i64,
                    "month" => d.month() as i64,
                    _ => d.day() as i64,
                })),
                other => Err(SqlError::Eval(format!("{name} on {}", other.dtype()))),
            }
        }
        _ => Err(SqlError::Eval(format!("unknown function: {name}"))),
    }
}

fn str_fn(vals: &[Value], f: impl Fn(&str) -> String) -> Option<Value> {
    let v = vals.first()?;
    Some(match v {
        Value::Null => Value::Null,
        other => Value::Str(f(&other.render())),
    })
}

/// SQL LIKE pattern matching with `%` (any run) and `_` (any char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative DP over (pattern index, string index).
    let mut dp = vec![vec![false; s.len() + 1]; p.len() + 1];
    dp[0][0] = true;
    for i in 1..=p.len() {
        if p[i - 1] == '%' {
            dp[i][0] = dp[i - 1][0];
        }
    }
    for i in 1..=p.len() {
        for j in 1..=s.len() {
            dp[i][j] = match p[i - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && s[j - 1] == c,
            };
        }
    }
    dp[p.len()][s.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "sales",
            DataFrame::from_columns(vec![
                (
                    "region",
                    DataType::Str,
                    vec!["east".into(), "west".into(), "east".into(), "south".into()],
                ),
                (
                    "amount",
                    DataType::Int,
                    vec![10.into(), 20.into(), 30.into(), Value::Null],
                ),
                (
                    "day",
                    DataType::Date,
                    vec![
                        Value::Date(datalab_frame::Date::parse("2024-01-01").unwrap()),
                        Value::Date(datalab_frame::Date::parse("2024-01-02").unwrap()),
                        Value::Date(datalab_frame::Date::parse("2024-02-01").unwrap()),
                        Value::Date(datalab_frame::Date::parse("2024-02-02").unwrap()),
                    ],
                ),
            ])
            .unwrap(),
        );
        db.insert(
            "regions",
            DataFrame::from_columns(vec![
                ("name", DataType::Str, vec!["east".into(), "west".into()]),
                ("manager", DataType::Str, vec!["ann".into(), "bob".into()]),
            ])
            .unwrap(),
        );
        db
    }

    #[test]
    fn simple_projection_and_filter() {
        let out = run_sql("SELECT region, amount FROM sales WHERE amount > 15", &db()).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.schema().names(), vec!["region", "amount"]);
    }

    #[test]
    fn wildcard_select() {
        let out = run_sql("SELECT * FROM sales", &db()).unwrap();
        assert_eq!(out.n_cols(), 3);
        assert_eq!(out.n_rows(), 4);
    }

    #[test]
    fn group_by_having_order_limit() {
        let out = run_sql(
            "SELECT region, SUM(amount) AS total FROM sales GROUP BY region \
             HAVING COUNT(*) >= 1 ORDER BY total DESC LIMIT 2",
            &db(),
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.column("region").unwrap()[0], Value::Str("east".into()));
        assert_eq!(out.column("total").unwrap()[0], Value::Int(40));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let out = run_sql("SELECT COUNT(*), AVG(amount) FROM sales", &db()).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.column_at(0)[0], Value::Int(4));
        assert_eq!(out.column_at(1)[0], Value::Float(20.0));
    }

    #[test]
    fn join_with_aliases() {
        let out = run_sql(
            "SELECT s.region, r.manager FROM sales s JOIN regions r ON s.region = r.name \
             ORDER BY s.region",
            &db(),
        )
        .unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.column("manager").unwrap()[0], Value::Str("ann".into()));
    }

    #[test]
    fn left_join_pads_nulls() {
        let out = run_sql(
            "SELECT s.region, r.manager FROM sales s LEFT JOIN regions r ON s.region = r.name",
            &db(),
        )
        .unwrap();
        assert_eq!(out.n_rows(), 4);
        assert!(out.column("manager").unwrap().iter().any(Value::is_null));
    }

    #[test]
    fn where_with_dates_and_functions() {
        let out = run_sql(
            "SELECT COUNT(*) AS n FROM sales WHERE day >= '2024-02-01' AND month(day) = 2",
            &db(),
        )
        .unwrap();
        assert_eq!(out.column("n").unwrap()[0], Value::Int(2));
    }

    #[test]
    fn distinct_and_in_list() {
        let out = run_sql(
            "SELECT DISTINCT region FROM sales WHERE region IN ('east', 'west')",
            &db(),
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn case_expression() {
        let out = run_sql(
            "SELECT region, CASE WHEN amount >= 20 THEN 'big' ELSE 'small' END AS size \
             FROM sales WHERE amount IS NOT NULL ORDER BY amount",
            &db(),
        )
        .unwrap();
        assert_eq!(out.column("size").unwrap()[0], Value::Str("small".into()));
        assert_eq!(out.column("size").unwrap()[2], Value::Str("big".into()));
    }

    #[test]
    fn derived_table() {
        let out = run_sql(
            "SELECT t.region FROM (SELECT region, SUM(amount) AS total FROM sales GROUP BY region) t \
             WHERE t.total > 15",
            &db(),
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn order_by_ordinal() {
        let out = run_sql(
            "SELECT region, amount FROM sales WHERE amount IS NOT NULL ORDER BY 2 DESC",
            &db(),
        )
        .unwrap();
        assert_eq!(out.column("amount").unwrap()[0], Value::Int(30));
    }

    #[test]
    fn like_and_between() {
        let out = run_sql(
            "SELECT region FROM sales WHERE region LIKE '%st' AND amount BETWEEN 5 AND 25",
            &db(),
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2); // east(10), west(20)
    }

    #[test]
    fn tableless_select() {
        let out = run_sql("SELECT 1 + 2 AS three", &db()).unwrap();
        assert_eq!(out.column("three").unwrap()[0], Value::Int(3));
    }

    #[test]
    fn division_by_zero_yields_null() {
        let out = run_sql("SELECT 1 / 0 AS x, 5 % 0 AS y", &db()).unwrap();
        assert!(out.column("x").unwrap()[0].is_null());
        assert!(out.column("y").unwrap()[0].is_null());
    }

    #[test]
    fn null_comparisons_are_filtered_out() {
        let out = run_sql("SELECT region FROM sales WHERE amount > 0", &db()).unwrap();
        assert_eq!(out.n_rows(), 3); // the NULL amount row is excluded
    }

    #[test]
    fn unknown_column_errors() {
        assert!(run_sql("SELECT nope FROM sales", &db()).is_err());
        assert!(run_sql("SELECT * FROM nope", &db()).is_err());
    }

    #[test]
    fn like_match_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
    }

    #[test]
    fn duplicate_output_names_are_deduped() {
        let out = run_sql("SELECT region, region FROM sales", &db()).unwrap();
        assert_eq!(out.schema().names(), vec!["region", "region_1"]);
    }
}
