//! Execution-equivalence comparison — the EX metric used by Spider, BIRD,
//! and nvBench: two queries are equivalent when executing them yields the
//! same result multiset.

use datalab_frame::{DataFrame, Value};

const REL_TOL: f64 = 1e-6;

/// Compares two result frames for execution equivalence.
///
/// - Row order is ignored unless `ordered` is set (use it when the gold
///   query has an ORDER BY).
/// - Column *names* are ignored (generated queries alias freely).
/// - Column *order* is forgiven: if the widths match but the direct
///   comparison fails, every column permutation is tried (up to 7 columns,
///   past which benchmarks do not go).
/// - Floats compare with a small relative tolerance.
pub fn ex_equal(a: &DataFrame, b: &DataFrame, ordered: bool) -> bool {
    if a.n_cols() != b.n_cols() || a.n_rows() != b.n_rows() {
        return false;
    }
    let identity: Vec<usize> = (0..a.n_cols()).collect();
    if rows_equal(a, b, &identity, ordered) {
        return true;
    }
    if a.n_cols() <= 7 {
        for perm in permutations(a.n_cols()) {
            if perm != identity && rows_equal(a, b, &perm, ordered) {
                return true;
            }
        }
    }
    false
}

/// Compares with `b`'s columns reordered by `perm`.
fn rows_equal(a: &DataFrame, b: &DataFrame, perm: &[usize], ordered: bool) -> bool {
    let mut rows_a: Vec<Vec<&Value>> = (0..a.n_rows())
        .map(|i| (0..a.n_cols()).map(|c| &a.column_at(c)[i]).collect())
        .collect();
    let mut rows_b: Vec<Vec<&Value>> = (0..b.n_rows())
        .map(|i| perm.iter().map(|&c| &b.column_at(c)[i]).collect())
        .collect();
    if !ordered {
        let key = |row: &Vec<&Value>| -> Vec<String> { row.iter().map(|v| v.render()).collect() };
        rows_a.sort_by_key(key);
        rows_b.sort_by_key(key);
    }
    rows_a.iter().zip(&rows_b).all(|(ra, rb)| {
        ra.iter()
            .zip(rb.iter())
            .all(|(x, y)| x.approx_eq(y, REL_TOL))
    })
}

/// All permutations of `0..n` (n ≤ 7 keeps this bounded at 5040).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::DataType;

    fn f(cols: Vec<(&str, DataType, Vec<Value>)>) -> DataFrame {
        DataFrame::from_columns(cols).unwrap()
    }

    #[test]
    fn equal_up_to_row_order() {
        let a = f(vec![("x", DataType::Int, vec![1.into(), 2.into()])]);
        let b = f(vec![("y", DataType::Int, vec![2.into(), 1.into()])]);
        assert!(ex_equal(&a, &b, false));
        assert!(!ex_equal(&a, &b, true));
    }

    #[test]
    fn equal_up_to_column_order() {
        let a = f(vec![
            ("x", DataType::Int, vec![1.into()]),
            ("y", DataType::Str, vec!["a".into()]),
        ]);
        let b = f(vec![
            ("p", DataType::Str, vec!["a".into()]),
            ("q", DataType::Int, vec![1.into()]),
        ]);
        assert!(ex_equal(&a, &b, false));
    }

    #[test]
    fn float_tolerance() {
        let a = f(vec![(
            "x",
            DataType::Float,
            vec![Value::Float(0.333333333)],
        )]);
        let b = f(vec![("x", DataType::Float, vec![Value::Float(1.0 / 3.0)])]);
        assert!(ex_equal(&a, &b, false));
    }

    #[test]
    fn different_content_not_equal() {
        let a = f(vec![("x", DataType::Int, vec![1.into()])]);
        let b = f(vec![("x", DataType::Int, vec![2.into()])]);
        assert!(!ex_equal(&a, &b, false));
        let c = f(vec![("x", DataType::Int, vec![1.into(), 1.into()])]);
        assert!(!ex_equal(&a, &c, false));
    }

    #[test]
    fn int_float_cross_type_equal() {
        let a = f(vec![("x", DataType::Int, vec![3.into()])]);
        let b = f(vec![("x", DataType::Float, vec![Value::Float(3.0)])]);
        assert!(ex_equal(&a, &b, false));
    }
}
