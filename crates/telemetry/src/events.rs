//! The query flight recorder: a bounded, thread-safe ring buffer of
//! typed, monotonically-sequenced events.
//!
//! Spans answer "how long did each stage take"; the event log answers
//! "what happened, in order" — every model call, retry, FSM transition,
//! sandbox failure, knowledge hit/miss, and cell append lands here with a
//! sequence number. When a query fails, the tail of the ring is attached
//! to the response as a *flight record* for forensics, the way an
//! aircraft recorder preserves the moments before an incident.
//!
//! The ring is bounded (old events are evicted), but per-kind counts are
//! kept forever, so aggregate error taxonomies survive eviction.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: generous enough to hold several queries' worth
/// of events while bounding memory for long sessions.
pub const DEFAULT_EVENT_CAPACITY: usize = 512;

/// Maximum bytes of detail stored per event. Details come from arbitrary
/// sources (full question text, error chains), so without a cap the ring
/// buffer's memory is bounded in entry *count* but not in bytes. Longer
/// details are cut at a char boundary and marked with `…`.
pub const MAX_EVENT_DETAIL_BYTES: usize = 256;

/// Bounds a detail string to [`MAX_EVENT_DETAIL_BYTES`], appending `…`
/// when truncated (the marker may push the result a few bytes past the
/// cap; the bound that matters is per-entry, not exact).
fn bound_detail(detail: String) -> String {
    if detail.len() <= MAX_EVENT_DETAIL_BYTES {
        return detail;
    }
    let mut cut = MAX_EVENT_DETAIL_BYTES;
    while cut > 0 && !detail.is_char_boundary(cut) {
        cut -= 1;
    }
    let mut out = String::with_capacity(cut + '…'.len_utf8());
    out.push_str(&detail[..cut]);
    out.push('…');
    out
}

/// The kind of a recorded event. Kinds are a closed set so fleet-level
/// error taxonomies can key on them without string drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum EventKind {
    /// A query began (detail: the question).
    QueryStart,
    /// A query finished (detail: `ok` or `failed`).
    QueryEnd,
    /// One model call (detail: prompt/completion token counts).
    LlmCall,
    /// An agent or grounding loop re-attempted after a failure.
    Retry,
    /// The communication FSM moved an agent between states.
    FsmTransition,
    /// The dscript sandbox rejected or failed to execute a program.
    SandboxFailure,
    /// An agent exhausted its call budget and gave up.
    AgentFailure,
    /// Knowledge retrieval returned at least one grounding item.
    KnowledgeHit,
    /// Knowledge retrieval came back empty.
    KnowledgeMiss,
    /// The platform appended cells to the notebook.
    CellAppend,
    /// A platform API call (CSV registration, import) returned an error.
    PlatformError,
    /// The model transport observed a fault (injected or real; detail:
    /// the fault kind and message).
    LlmFault,
    /// The resilient transport re-attempted a call after a fault.
    TransportRetry,
    /// The circuit breaker tripped open.
    BreakerTrip,
    /// A response was served by a rule-based fallback path (detail: the
    /// degraded roles).
    Degraded,
    /// The session store evicted a tenant session to make room (detail:
    /// the evicted tenant).
    SessionEvicted,
    /// An ingest batch was applied to a table (detail: table name and
    /// appended/updated/invalidated counts).
    IngestBatch,
}

impl EventKind {
    /// Every kind, for taxonomy enumeration.
    pub const ALL: &'static [EventKind] = &[
        EventKind::QueryStart,
        EventKind::QueryEnd,
        EventKind::LlmCall,
        EventKind::Retry,
        EventKind::FsmTransition,
        EventKind::SandboxFailure,
        EventKind::AgentFailure,
        EventKind::KnowledgeHit,
        EventKind::KnowledgeMiss,
        EventKind::CellAppend,
        EventKind::PlatformError,
        EventKind::LlmFault,
        EventKind::TransportRetry,
        EventKind::BreakerTrip,
        EventKind::Degraded,
        EventKind::SessionEvicted,
        EventKind::IngestBatch,
    ];

    /// Stable snake_case name, used as the taxonomy/JSON key.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::QueryStart => "query_start",
            EventKind::QueryEnd => "query_end",
            EventKind::LlmCall => "llm_call",
            EventKind::Retry => "retry",
            EventKind::FsmTransition => "fsm_transition",
            EventKind::SandboxFailure => "sandbox_failure",
            EventKind::AgentFailure => "agent_failure",
            EventKind::KnowledgeHit => "knowledge_hit",
            EventKind::KnowledgeMiss => "knowledge_miss",
            EventKind::CellAppend => "cell_append",
            EventKind::PlatformError => "platform_error",
            EventKind::LlmFault => "llm_fault",
            EventKind::TransportRetry => "transport_retry",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::Degraded => "degraded",
            EventKind::SessionEvicted => "session_evicted",
            EventKind::IngestBatch => "ingest_batch",
        }
    }

    /// Whether the kind belongs in an error taxonomy (as opposed to
    /// routine progress events).
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            EventKind::SandboxFailure
                | EventKind::AgentFailure
                | EventKind::PlatformError
                | EventKind::Degraded
        )
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number, unique per [`EventLog`] lifetime.
    pub seq: u64,
    /// Microseconds since the log's epoch.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context (question text, error message, counts),
    /// bounded to roughly [`MAX_EVENT_DETAIL_BYTES`].
    pub detail: String,
    /// The request trace this event belongs to, when one was active.
    pub trace: Option<String>,
}

impl Event {
    /// One-line rendering (`#seq +offset kind detail`).
    pub fn render(&self) -> String {
        format!(
            "#{:<5} +{:>9.3}ms {:<16} {}",
            self.seq,
            self.at_us as f64 / 1000.0,
            self.kind.as_str(),
            self.detail
        )
    }
}

#[derive(Debug, Default)]
struct LogState {
    ring: VecDeque<Event>,
    next_seq: u64,
    counts: BTreeMap<&'static str, u64>,
}

/// Bounded, thread-safe ring buffer of [`Event`]s with lifetime per-kind
/// counts. Cheap to record into (one mutex, no allocation beyond the
/// detail string) and safe to share across every instrumented layer.
#[derive(Debug)]
pub struct EventLog {
    epoch: Instant,
    capacity: usize,
    state: Mutex<LogState>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// A fresh log holding at most `capacity` events (older events are
    /// evicted first; per-kind counts are never evicted).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(LogState::default()),
        }
    }

    /// Records one event, returning its sequence number.
    pub fn record(&self, kind: EventKind, detail: impl Into<String>) -> u64 {
        self.record_traced(kind, detail, None)
    }

    /// Records one event tagged with the trace it belongs to. Details
    /// longer than [`MAX_EVENT_DETAIL_BYTES`] are truncated with a `…`
    /// marker so the ring's memory stays bounded in bytes, not just in
    /// entry count.
    pub fn record_traced(
        &self,
        kind: EventKind,
        detail: impl Into<String>,
        trace: Option<String>,
    ) -> u64 {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let detail = bound_detail(detail.into());
        let mut state = self.state.lock().expect("event log lock");
        let seq = state.next_seq;
        state.next_seq += 1;
        *state.counts.entry(kind.as_str()).or_insert(0) += 1;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(Event {
            seq,
            at_us,
            kind,
            detail,
            trace,
        });
        seq
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently in the ring.
    pub fn len(&self) -> usize {
        self.state.lock().expect("event log lock").ring.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (evicted ones included). Also the next
    /// sequence number to be assigned.
    pub fn total_recorded(&self) -> u64 {
        self.state.lock().expect("event log lock").next_seq
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let state = self.state.lock().expect("event log lock");
        let skip = state.ring.len().saturating_sub(n);
        state.ring.iter().skip(skip).cloned().collect()
    }

    /// Every retained event with `seq >= from_seq`, oldest first. This is
    /// the flight-record read: mark `total_recorded()` when a query
    /// starts, and on failure collect what happened since.
    pub fn since(&self, from_seq: u64) -> Vec<Event> {
        let state = self.state.lock().expect("event log lock");
        state
            .ring
            .iter()
            .filter(|e| e.seq >= from_seq)
            .cloned()
            .collect()
    }

    /// Lifetime count of events per kind (survives ring eviction),
    /// keyed by [`EventKind::as_str`].
    pub fn kind_counts(&self) -> BTreeMap<String, u64> {
        let state = self.state.lock().expect("event log lock");
        state
            .counts
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }
}

/// True when `name` is the [`EventKind::as_str`] form of an error kind —
/// the filter fleet-level error taxonomies apply to kind counts.
pub fn is_error_kind(name: &str) -> bool {
    EventKind::ALL
        .iter()
        .any(|k| k.is_error() && k.as_str() == name)
}

/// Renders a slice of events as an indented flight-record block.
pub fn render_flight_record(events: &[Event]) -> String {
    let mut out = String::from("flight record:\n");
    for e in events {
        out.push_str("  ");
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_kind_names_match_is_error() {
        for kind in EventKind::ALL {
            assert_eq!(is_error_kind(kind.as_str()), kind.is_error(), "{kind:?}");
        }
        assert!(!is_error_kind("not_a_kind"));
    }

    #[test]
    fn events_are_monotonically_sequenced() {
        let log = EventLog::default();
        let a = log.record(EventKind::QueryStart, "q1");
        let b = log.record(EventKind::LlmCall, "p=10 c=2");
        let c = log.record(EventKind::QueryEnd, "ok");
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(log.total_recorded(), 3);
        let tail = log.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].kind, EventKind::LlmCall);
        assert!(tail[0].at_us <= tail[1].at_us);
    }

    #[test]
    fn ring_evicts_oldest_but_counts_survive() {
        let log = EventLog::with_capacity(3);
        for i in 0..10 {
            log.record(EventKind::Retry, format!("attempt {i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.capacity(), 3);
        assert_eq!(log.total_recorded(), 10);
        let tail = log.tail(10);
        assert_eq!(tail.first().unwrap().seq, 7);
        assert_eq!(tail.last().unwrap().seq, 9);
        assert_eq!(log.kind_counts().get("retry"), Some(&10));
    }

    #[test]
    fn since_reads_the_flight_record_window() {
        let log = EventLog::default();
        log.record(EventKind::QueryStart, "old query");
        log.record(EventKind::QueryEnd, "ok");
        let mark = log.total_recorded();
        log.record(EventKind::QueryStart, "failing query");
        log.record(EventKind::SandboxFailure, "parse error at line 1");
        let flight = log.since(mark);
        assert_eq!(flight.len(), 2);
        assert_eq!(flight[0].kind, EventKind::QueryStart);
        assert_eq!(flight[1].kind, EventKind::SandboxFailure);
        assert!(flight[1].kind.is_error());
        assert!(!flight[0].kind.is_error());
        let text = render_flight_record(&flight);
        assert!(text.contains("sandbox_failure"), "{text}");
        assert!(text.contains("failing query"), "{text}");
    }

    #[test]
    fn long_details_are_truncated_with_a_marker() {
        let log = EventLog::default();
        let long = "q".repeat(MAX_EVENT_DETAIL_BYTES * 4);
        log.record(EventKind::QueryStart, long);
        let stored = &log.tail(1)[0];
        assert!(stored.detail.ends_with('…'), "{}", stored.detail);
        assert!(
            stored.detail.len() <= MAX_EVENT_DETAIL_BYTES + '…'.len_utf8(),
            "detail not bounded: {} bytes",
            stored.detail.len()
        );
        // Truncation lands on a char boundary even mid-multibyte.
        let multibyte = "é".repeat(MAX_EVENT_DETAIL_BYTES);
        log.record(EventKind::QueryStart, multibyte);
        let stored = &log.tail(1)[0];
        assert!(stored.detail.ends_with('…'));
        // Short details pass through untouched.
        log.record(EventKind::QueryEnd, "ok");
        assert_eq!(log.tail(1)[0].detail, "ok");
    }

    #[test]
    fn traced_records_carry_the_trace_and_plain_records_do_not() {
        let log = EventLog::default();
        log.record(EventKind::QueryStart, "untraced");
        log.record_traced(EventKind::QueryEnd, "traced", Some("t-1".into()));
        let tail = log.tail(2);
        assert_eq!(tail[0].trace, None);
        assert_eq!(tail[1].trace, Some("t-1".to_string()));
    }

    #[test]
    fn concurrent_records_never_lose_counts() {
        let log = std::sync::Arc::new(EventLog::with_capacity(16));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    log.record(EventKind::FsmTransition, "t");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.total_recorded(), 4000);
        assert_eq!(log.len(), 16);
        assert_eq!(log.kind_counts().get("fsm_transition"), Some(&4000));
        // Sequence numbers in the ring are strictly increasing.
        let tail = log.tail(16);
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
