//! Tail-sampled store of completed request traces.
//!
//! Head sampling (deciding at request start) would throw away exactly the
//! traces worth keeping — the slow and the broken ones are only
//! recognisable *after* they finish. So the store decides at completion
//! time, with a three-part keep policy evaluated in order:
//!
//! 1. **errors** — every failed request is retained, always;
//! 2. **slowest-N per window** — an online top-N of durations inside a
//!    rolling completion-count window catches tail latency even when
//!    nothing errors;
//! 3. **uniform 1-in-K** — a deterministic sample of ordinary traffic
//!    keeps the baseline visible (`sample_every = 0` disables this leg,
//!    degrading to "errors + slowest only").
//!
//! The store is bounded: when full, the *oldest ok* trace is evicted
//! first; error traces are only evicted once no ok traces remain. All
//! decisions are counter-based (no clocks, no randomness), so a replayed
//! run retains an identical set.

use crate::events::Event;
use crate::span::SpanNode;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Keep/evict policy knobs for a [`TraceStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStorePolicy {
    /// Maximum retained traces (≥ 1 is enforced).
    pub capacity: usize,
    /// Keep the N slowest completions per window (0 disables this leg).
    pub slowest_per_window: usize,
    /// Window length, in completions, for the slowest-N leg.
    pub window: usize,
    /// Keep 1 in every K completions unconditionally (0 disables).
    pub sample_every: usize,
}

impl Default for TraceStorePolicy {
    fn default() -> Self {
        TraceStorePolicy {
            capacity: 256,
            slowest_per_window: 4,
            window: 64,
            sample_every: 16,
        }
    }
}

/// Why a trace was retained (first matching leg of the keep policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainReason {
    /// The request failed; error traces are always kept.
    Error,
    /// Among the slowest N completions of its window.
    Slow,
    /// Picked by the uniform 1-in-K sampler.
    Sampled,
}

impl RetainReason {
    /// Stable snake_case name for JSON/report output.
    pub fn as_str(&self) -> &'static str {
        match self {
            RetainReason::Error => "error",
            RetainReason::Slow => "slow",
            RetainReason::Sampled => "sampled",
        }
    }
}

/// A completed request offered to the store.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The request's trace ID.
    pub trace_id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Workload family label.
    pub workload: String,
    /// Final HTTP status of the request.
    pub status: u16,
    /// Whether the request succeeded end to end.
    pub ok: bool,
    /// End-to-end duration in microseconds.
    pub duration_us: u64,
    /// The drained span forest for this request.
    pub spans: Vec<SpanNode>,
    /// Flight-record events captured for this request (errors only in
    /// the current server wiring; empty for clean requests).
    pub events: Vec<Event>,
}

/// A retained trace plus the retention decision.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTrace {
    /// 1-based completion sequence number at which this was offered.
    pub seq: u64,
    /// Which keep-policy leg retained it.
    pub reason: RetainReason,
    /// The trace itself.
    pub record: TraceRecord,
}

#[derive(Debug, Default)]
struct StoreState {
    /// Completions ever offered (retained or not).
    seen: u64,
    /// Completions in the current slowest-N window.
    window_pos: usize,
    /// Top-N durations of the current window, descending.
    window_slowest: Vec<u64>,
    /// Retained traces, oldest first.
    retained: VecDeque<StoredTrace>,
}

/// Bounded, thread-safe tail-sampling trace store. See the module docs
/// for the keep policy.
#[derive(Debug)]
pub struct TraceStore {
    policy: TraceStorePolicy,
    state: Mutex<StoreState>,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new(TraceStorePolicy::default())
    }
}

impl TraceStore {
    /// A fresh store with the given policy (capacity is clamped to ≥ 1).
    pub fn new(mut policy: TraceStorePolicy) -> Self {
        policy.capacity = policy.capacity.max(1);
        policy.window = policy.window.max(1);
        TraceStore {
            policy,
            state: Mutex::new(StoreState::default()),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &TraceStorePolicy {
        &self.policy
    }

    /// Offers a completed trace; returns the retention reason if kept,
    /// `None` if dropped. Never panics regardless of policy degeneracy
    /// (zero sampling, zero slowest-N).
    pub fn offer(&self, record: TraceRecord) -> Option<RetainReason> {
        let mut state = self.state.lock().expect("trace store lock");
        state.seen += 1;
        let seq = state.seen;

        if state.window_pos == self.policy.window {
            state.window_pos = 0;
            state.window_slowest.clear();
        }
        state.window_pos += 1;
        let slow = if self.policy.slowest_per_window == 0 {
            false
        } else if state.window_slowest.len() < self.policy.slowest_per_window {
            state.window_slowest.push(record.duration_us);
            state.window_slowest.sort_unstable_by(|a, b| b.cmp(a));
            true
        } else if record.duration_us > *state.window_slowest.last().expect("non-empty top-N") {
            state.window_slowest.pop();
            state.window_slowest.push(record.duration_us);
            state.window_slowest.sort_unstable_by(|a, b| b.cmp(a));
            true
        } else {
            false
        };

        let sampled = self.policy.sample_every > 0
            && (seq - 1).is_multiple_of(self.policy.sample_every as u64);
        let reason = if !record.ok {
            RetainReason::Error
        } else if slow {
            RetainReason::Slow
        } else if sampled {
            RetainReason::Sampled
        } else {
            return None;
        };

        if state.retained.len() >= self.policy.capacity {
            // Evict the oldest *ok* trace; error traces go last, and only
            // when nothing else is left to evict.
            match state.retained.iter().position(|t| t.record.ok) {
                Some(idx) => {
                    state.retained.remove(idx);
                }
                None => {
                    state.retained.pop_front();
                }
            }
        }
        state.retained.push_back(StoredTrace {
            seq,
            reason,
            record,
        });
        Some(reason)
    }

    /// Completions ever offered (retained or not).
    pub fn seen(&self) -> u64 {
        self.state.lock().expect("trace store lock").seen
    }

    /// Number of currently retained traces.
    pub fn len(&self) -> usize {
        self.state.lock().expect("trace store lock").retained.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a retained trace by ID (most recent first, so a reused
    /// ID resolves to its latest completion).
    pub fn get(&self, trace_id: &str) -> Option<StoredTrace> {
        let state = self.state.lock().expect("trace store lock");
        state
            .retained
            .iter()
            .rev()
            .find(|t| t.record.trace_id == trace_id)
            .cloned()
    }

    /// Clones the span forests of every retained trace, oldest first —
    /// the input for collapsed-stack profile aggregation over whatever
    /// the tail sampler kept (`GET /v1/profile`). Bounded by the store
    /// capacity, so the copy is as bounded as the store itself.
    pub fn span_forest(&self) -> Vec<SpanNode> {
        let state = self.state.lock().expect("trace store lock");
        state
            .retained
            .iter()
            .flat_map(|t| t.record.spans.iter().cloned())
            .collect()
    }

    /// Retained traces, newest first, optionally filtered by tenant
    /// and/or outcome, truncated to `limit`. Span trees and events are
    /// *not* cloned — this is the cheap listing read.
    pub fn summaries(
        &self,
        tenant: Option<&str>,
        only_errors: Option<bool>,
        limit: usize,
    ) -> Vec<TraceSummary> {
        let state = self.state.lock().expect("trace store lock");
        state
            .retained
            .iter()
            .rev()
            .filter(|t| tenant.is_none_or(|want| t.record.tenant == want))
            .filter(|t| only_errors.is_none_or(|errs| t.record.ok != errs))
            .take(limit)
            .map(|t| TraceSummary {
                trace_id: t.record.trace_id.clone(),
                tenant: t.record.tenant.clone(),
                workload: t.record.workload.clone(),
                status: t.record.status,
                ok: t.record.ok,
                duration_us: t.record.duration_us,
                reason: t.reason,
                seq: t.seq,
                spans: t.record.spans.iter().map(|s| s.total_spans()).sum(),
                events: t.record.events.len(),
            })
            .collect()
    }
}

/// Listing-level view of one retained trace (no span tree payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// The request's trace ID.
    pub trace_id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Workload family label.
    pub workload: String,
    /// Final HTTP status.
    pub status: u16,
    /// Whether the request succeeded.
    pub ok: bool,
    /// End-to-end duration in microseconds.
    pub duration_us: u64,
    /// Which keep-policy leg retained it.
    pub reason: RetainReason,
    /// Completion sequence number.
    pub seq: u64,
    /// Total spans in the retained tree.
    pub spans: usize,
    /// Flight-record events retained with the trace.
    pub events: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, ok: bool, duration_us: u64) -> TraceRecord {
        TraceRecord {
            trace_id: id.to_string(),
            tenant: "t0".to_string(),
            workload: "nl2sql".to_string(),
            status: if ok { 200 } else { 503 },
            ok,
            duration_us,
            spans: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn span_forest_concatenates_retained_traces_oldest_first() {
        let store = TraceStore::default();
        assert!(store.span_forest().is_empty());
        for (id, dur) in [("a", 100), ("b", 200)] {
            let mut r = record(id, false, dur);
            r.spans.push(SpanNode {
                name: format!("query-{id}"),
                start_us: 0,
                dur_us: dur,
                cpu_us: 0,
                allocs: 0,
                alloc_bytes: 0,
                attrs: vec![],
                children: vec![],
            });
            store.offer(r);
        }
        let forest = store.span_forest();
        let names: Vec<&str> = forest.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["query-a", "query-b"]);
    }

    #[test]
    fn errors_are_always_retained() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 8,
            slowest_per_window: 0,
            window: 4,
            sample_every: 0,
        });
        for i in 0..20 {
            let kept = store.offer(record(&format!("e{i}"), false, 10));
            assert_eq!(kept, Some(RetainReason::Error));
        }
        assert_eq!(store.len(), 8);
        assert_eq!(store.seen(), 20);
    }

    #[test]
    fn zero_sampling_degrades_to_errors_plus_slowest() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 32,
            slowest_per_window: 1,
            window: 8,
            sample_every: 0,
        });
        // Ascending durations: within each 8-completion window only the
        // running max enters the top-1.
        for i in 0..16u64 {
            store.offer(record(&format!("ok{i}"), true, i + 1));
        }
        let kept = store.summaries(None, None, 64);
        for t in &kept {
            assert_eq!(t.reason, RetainReason::Slow, "{t:?}");
        }
        // First completion of each window always seeds the top-N; later
        // ascending ones replace it.
        assert!(kept.iter().any(|t| t.trace_id == "ok15"));
        let errs = store.offer(record("boom", false, 1));
        assert_eq!(errs, Some(RetainReason::Error));
    }

    #[test]
    fn uniform_sampler_keeps_one_in_k() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 64,
            slowest_per_window: 0,
            window: 4,
            sample_every: 5,
        });
        for i in 0..20 {
            store.offer(record(&format!("r{i}"), true, 10));
        }
        let kept = store.summaries(None, None, 64);
        assert_eq!(kept.len(), 4, "{kept:?}");
        for t in &kept {
            assert_eq!(t.reason, RetainReason::Sampled);
            assert_eq!((t.seq - 1) % 5, 0);
        }
    }

    #[test]
    fn eviction_prefers_oldest_ok_over_any_error() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 3,
            slowest_per_window: 0,
            window: 4,
            sample_every: 1,
        });
        store.offer(record("err0", false, 10));
        store.offer(record("ok0", true, 10));
        store.offer(record("ok1", true, 10));
        // Full. The next keep evicts ok0 (oldest ok), not err0.
        store.offer(record("ok2", true, 10));
        assert!(store.get("err0").is_some());
        assert!(store.get("ok0").is_none());
        assert!(store.get("ok1").is_some());
        // Fill with errors: oks evicted first, then oldest errors.
        store.offer(record("err1", false, 10));
        store.offer(record("err2", false, 10));
        assert!(store.get("ok1").is_none());
        assert!(store.get("ok2").is_none());
        store.offer(record("err3", false, 10));
        assert!(store.get("err0").is_none(), "oldest error evicted last");
        assert!(store.get("err3").is_some());
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn summaries_filter_by_tenant_and_status_newest_first() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 16,
            slowest_per_window: 0,
            window: 4,
            sample_every: 1,
        });
        let mut other = record("other", true, 5);
        other.tenant = "t1".to_string();
        store.offer(other);
        store.offer(record("good", true, 5));
        store.offer(record("bad", false, 5));
        let all = store.summaries(None, None, 10);
        assert_eq!(
            all.iter().map(|t| t.trace_id.as_str()).collect::<Vec<_>>(),
            vec!["bad", "good", "other"]
        );
        let t0_errors = store.summaries(Some("t0"), Some(true), 10);
        assert_eq!(t0_errors.len(), 1);
        assert_eq!(t0_errors[0].trace_id, "bad");
        let t0_ok = store.summaries(Some("t0"), Some(false), 10);
        assert_eq!(t0_ok.len(), 1);
        assert_eq!(t0_ok[0].trace_id, "good");
        assert_eq!(store.summaries(None, None, 1).len(), 1);
    }

    #[test]
    fn get_returns_the_latest_completion_for_a_reused_id() {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 16,
            slowest_per_window: 0,
            window: 4,
            sample_every: 1,
        });
        store.offer(record("dup", true, 5));
        store.offer(record("dup", false, 9));
        let got = store.get("dup").unwrap();
        assert_eq!(got.record.duration_us, 9);
        assert!(!got.record.ok);
        assert!(store.get("missing").is_none());
    }
}
