//! Property-based tests for the tail-sampling trace store's keep policy.
//!
//! The two invariants pinned here come straight from the policy's
//! contract: error traces outlive ok traces under eviction pressure, and
//! degenerate configurations (sampling off, slowest-N off) never panic
//! and still retain exactly what the remaining legs promise.

use datalab_telemetry::{RetainReason, TraceRecord, TraceStore, TraceStorePolicy};
use proptest::prelude::*;

fn record(idx: usize, ok: bool, duration_us: u64) -> TraceRecord {
    TraceRecord {
        trace_id: format!("t{idx}"),
        tenant: format!("tenant{}", idx % 3),
        workload: "nl2sql".to_string(),
        status: if ok { 200 } else { 503 },
        ok,
        duration_us,
        spans: Vec::new(),
        events: Vec::new(),
    }
}

proptest! {
    /// Under any offer sequence, an error trace is only ever evicted
    /// once no ok traces remain in the store: while the retained error
    /// count is within capacity, every offered error is still present.
    #[test]
    fn errors_never_evicted_before_ok_traces(
        outcomes in proptest::collection::vec((any::<bool>(), 0u64..10_000), 1..200),
        capacity in 1usize..16,
        sample_every in 0usize..8,
        slowest in 0usize..4,
        window in 1usize..32,
    ) {
        let store = TraceStore::new(TraceStorePolicy {
            capacity,
            slowest_per_window: slowest,
            window,
            sample_every,
        });
        let mut error_ids: Vec<String> = Vec::new();
        for (idx, (ok, duration_us)) in outcomes.iter().enumerate() {
            let kept = store.offer(record(idx, *ok, *duration_us));
            if !ok {
                prop_assert_eq!(kept, Some(RetainReason::Error));
                error_ids.push(format!("t{idx}"));
            }
            // The newest `capacity` errors must all still be retained —
            // ok traces are evicted first, so errors only fall off once
            // errors alone exceed capacity.
            let start = error_ids.len().saturating_sub(capacity);
            for id in &error_ids[start..] {
                prop_assert!(
                    store.get(id).is_some(),
                    "error {} evicted while ok traces may remain (len={})",
                    id,
                    store.len()
                );
            }
            prop_assert!(store.len() <= capacity);
        }
        prop_assert_eq!(store.seen(), outcomes.len() as u64);
    }

    /// `sample_every = 0` (and any slowest-N setting, including 0)
    /// degrades to "errors + slowest only": no panics, every error kept,
    /// and with both optional legs off nothing but errors is retained.
    #[test]
    fn zero_sampling_degrades_without_panics(
        outcomes in proptest::collection::vec((any::<bool>(), 0u64..10_000), 1..200),
        slowest in 0usize..3,
        window in 1usize..16,
    ) {
        let store = TraceStore::new(TraceStorePolicy {
            capacity: 256,
            slowest_per_window: slowest,
            window,
            sample_every: 0,
        });
        let mut errors = 0usize;
        for (idx, (ok, duration_us)) in outcomes.iter().enumerate() {
            let kept = store.offer(record(idx, *ok, *duration_us));
            match kept {
                Some(RetainReason::Error) => {
                    prop_assert!(!ok);
                    errors += 1;
                }
                Some(RetainReason::Slow) => {
                    prop_assert!(*ok);
                    prop_assert!(slowest > 0);
                }
                Some(RetainReason::Sampled) => {
                    prop_assert!(false, "uniform sampler fired with sample_every=0");
                }
                None => prop_assert!(*ok),
            }
        }
        prop_assert!(store.len() >= errors.min(256));
        if slowest == 0 {
            // Errors-only mode: retained set is exactly the errors.
            prop_assert_eq!(store.len(), errors.min(256));
            for t in store.summaries(None, None, 512) {
                prop_assert_eq!(t.reason, RetainReason::Error);
            }
        }
    }
}
