//! Write-path chaos gate: streams ingest batches through the durable
//! store under a sweep of seeded disk-fault schedules (EIO, ENOSPC,
//! short writes, fsync failures, latency, blackout), SIGKILL-reboots
//! each run, and gates on batch atomicity, acknowledged-write
//! durability, exactly-once retry convergence, and zero-rate control
//! equivalence. Writes a JSON report under `target/telemetry/` and
//! leaves each schedule's data directory in place as an inspectable
//! artifact.
//!
//! ```text
//! cargo run -p datalab-bench --bin write_chaos -- [--seed N]
//!     [--tasks N] [--snapshot-every N] [--batches N] [--rows N]
//!     [--max-tables N] [--data-dir PATH] [--out PATH]
//! ```
//!
//! Gate violations exit 1; usage errors exit 2.

use datalab_bench::telemetry_dir;
use datalab_workloads::{render_write_chaos_report, run_write_chaos, WriteChaosConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    config: WriteChaosConfig,
    data_dir: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        config: WriteChaosConfig::default(),
        data_dir: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        match arg.as_str() {
            "--seed" => {
                parsed.config.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--tasks" => {
                parsed.config.tasks_per_workload = take("--tasks")?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?
            }
            "--snapshot-every" => {
                parsed.config.snapshot_every = take("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?
            }
            "--batches" => {
                parsed.config.batches_per_table = take("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--rows" => {
                parsed.config.rows_per_batch = take("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--max-tables" => {
                parsed.config.max_tables = take("--max-tables")?
                    .parse()
                    .map_err(|e| format!("--max-tables: {e}"))?
            }
            "--data-dir" => parsed.data_dir = Some(PathBuf::from(take("--data-dir")?)),
            "--out" => parsed.out = Some(PathBuf::from(take("--out")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn run() -> Result<u8, String> {
    let args = parse_args()?;
    let base = match &args.data_dir {
        Some(p) => p.clone(),
        None => telemetry_dir()
            .map_err(|e| format!("cannot create target/telemetry: {e}"))?
            .join("write_chaos_data"),
    };
    eprintln!(
        "write_chaos: seed={} tasks_per_workload={} snapshot_every={} batches_per_table={} \
         rows_per_batch={} max_tables={} data_dir={}",
        args.config.seed,
        args.config.tasks_per_workload,
        args.config.snapshot_every,
        args.config.batches_per_table,
        args.config.rows_per_batch,
        args.config.max_tables,
        base.display()
    );

    // Each sweep starts from empty directories but leaves WAL and
    // snapshot files behind as an inspectable artifact.
    std::fs::remove_dir_all(&base)
        .or_else(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Ok(())
            } else {
                Err(e)
            }
        })
        .map_err(|e| format!("cannot clear {}: {e}", base.display()))?;
    let report = run_write_chaos(&args.config, &base).map_err(|e| format!("sweep: {e}"))?;
    print!("{}", render_write_chaos_report(&report));

    let path = match args.out {
        Some(p) => p,
        None => telemetry_dir()
            .map_err(|e| format!("cannot create target/telemetry: {e}"))?
            .join("write_chaos.json"),
    };
    std::fs::write(&path, report.to_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("write chaos report written: {}", path.display());

    if report.ok() {
        println!(
            "write chaos gate: ok ({} schedules)",
            report.schedules.len()
        );
        Ok(0)
    } else {
        for schedule in &report.schedules {
            for failure in &schedule.failures {
                eprintln!("write_chaos: FAILED: {}: {failure}", schedule.name);
            }
            if !schedule.ok() && schedule.failures.is_empty() {
                eprintln!("write_chaos: FAILED: {}: gate failed", schedule.name);
            }
        }
        for failure in &report.failures {
            eprintln!("write_chaos: FAILED: {failure}");
        }
        Ok(1)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("write_chaos: {message}");
            eprintln!(
                "usage: write_chaos [--seed N] [--tasks N] [--snapshot-every N] [--batches N] \
                 [--rows N] [--max-tables N] [--data-dir PATH] [--out PATH]"
            );
            ExitCode::from(2)
        }
    }
}
