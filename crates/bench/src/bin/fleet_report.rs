//! Generates a workload-driven fleet report: sampled nl2sql / nl2code /
//! nl2vis / insight tasks run through the full platform, one run record
//! per task, aggregated and written as JSON for `obsdiff` to gate.
//!
//! ```text
//! cargo run -p datalab-bench --bin fleet_report -- [--seed N] [--tasks N] [--out PATH]
//! ```
//!
//! Defaults: seed 7, 3 tasks per workload family, output
//! `target/telemetry/fleet_report.json`.

use datalab_bench::telemetry_dir;
use datalab_workloads::{run_fleet, FleetConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = FleetConfig::default();
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        let result = match arg.as_str() {
            "--seed" => take("--seed").and_then(|v| {
                v.parse()
                    .map(|n| config.seed = n)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--tasks" => take("--tasks").and_then(|v| {
                v.parse()
                    .map(|n| config.tasks_per_workload = n)
                    .map_err(|e| format!("--tasks: {e}"))
            }),
            "--out" => take("--out").map(|v| out = Some(PathBuf::from(v))),
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("fleet_report: {e}");
            eprintln!("usage: fleet_report [--seed N] [--tasks N] [--out PATH]");
            return ExitCode::from(2);
        }
    }

    let report = run_fleet(&config);
    print!("{}", report.render());

    let path = match out {
        Some(p) => p,
        None => match telemetry_dir() {
            Ok(dir) => dir.join("fleet_report.json"),
            Err(e) => {
                eprintln!("fleet_report: cannot create target/telemetry: {e}");
                return ExitCode::from(2);
            }
        },
    };
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("fleet_report: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!("fleet report written: {}", path.display());
    ExitCode::SUCCESS
}
