//! Generates a workload-driven fleet report: sampled nl2sql / nl2code /
//! nl2vis / insight tasks run through the full platform, one run record
//! per task, aggregated and written as JSON for `obsdiff` to gate.
//!
//! ```text
//! cargo run -p datalab-bench --bin fleet_report -- [--seed N] [--tasks N] [--workers W]
//!     [--chaos-rate R] [--chaos-seed N] [--out PATH]
//! ```
//!
//! Defaults: seed 7, 3 tasks per workload family, 1 worker (serial),
//! chaos rate 0.0 (no fault injection), output
//! `target/telemetry/fleet_report.json`. With `--workers W > 1` the
//! sharded parallel executor is used; the report is identical to the
//! serial one except for its wall-clock fields. `--chaos-rate R > 0`
//! injects transport faults at total rate R (deterministic in
//! `--chaos-seed`); the report then carries nonzero resilience counters.

use datalab_bench::telemetry_dir;
use datalab_workloads::{run_fleet, FleetConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = FleetConfig::default();
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        let result = match arg.as_str() {
            "--seed" => take("--seed").and_then(|v| {
                v.parse()
                    .map(|n| config.seed = n)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--tasks" => take("--tasks").and_then(|v| {
                v.parse()
                    .map(|n| config.tasks_per_workload = n)
                    .map_err(|e| format!("--tasks: {e}"))
            }),
            "--workers" => take("--workers").and_then(|v| {
                v.parse()
                    .map(|n| config.workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--chaos-rate" => take("--chaos-rate").and_then(|v| {
                v.parse()
                    .map(|n| config.chaos_rate = n)
                    .map_err(|e| format!("--chaos-rate: {e}"))
            }),
            "--chaos-seed" => take("--chaos-seed").and_then(|v| {
                v.parse()
                    .map(|n| config.chaos_seed = n)
                    .map_err(|e| format!("--chaos-seed: {e}"))
            }),
            "--out" => take("--out").map(|v| out = Some(PathBuf::from(v))),
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("fleet_report: {e}");
            eprintln!(
                "usage: fleet_report [--seed N] [--tasks N] [--workers W] \
                 [--chaos-rate R] [--chaos-seed N] [--out PATH]"
            );
            return ExitCode::from(2);
        }
    }

    eprintln!(
        "fleet_report: seed={} tasks_per_workload={} workers={} chaos_rate={} chaos_seed={}",
        config.seed,
        config.tasks_per_workload,
        config.workers.max(1),
        config.chaos_rate,
        config.chaos_seed
    );
    let report = run_fleet(&config);
    print!("{}", report.render());

    let path = match out {
        Some(p) => p,
        None => match telemetry_dir() {
            Ok(dir) => dir.join("fleet_report.json"),
            Err(e) => {
                eprintln!("fleet_report: cannot create target/telemetry: {e}");
                return ExitCode::from(2);
            }
        },
    };
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("fleet_report: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!("fleet report written: {}", path.display());
    ExitCode::SUCCESS
}
