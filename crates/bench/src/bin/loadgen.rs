//! Open-loop load generator for the DataLab serving layer.
//!
//! Replays the deterministic fleet request corpus over real sockets at a
//! target request rate, then prints and writes a latency/error report:
//!
//! ```text
//! cargo run -p datalab-bench --bin loadgen -- [--addr HOST:PORT | --boot]
//!     [--rps N] [--duration 10s] [--seed N] [--tasks N]
//!     [--write-rate R] [--chaos-rate R] [--chaos-seed N] [--out PATH]
//! ```
//!
//! `--boot` starts an in-process server on a free port (used by tests
//! and local runs); `--addr` targets an already-running server (used by
//! the CI smoke). `--write-rate R` (0..=1) turns that fraction of slots
//! into `POST /v1/tables/:name/rows` ingest batches interleaved with the
//! queries; write latency and the write 5xx taxonomy are reported
//! separately from reads. `--chaos-rate R > 0` (boot mode only) injects
//! transport faults into every tenant session at total rate R; `503
//! transport_unavailable` responses are then expected back-pressure, not
//! failures. Exit code 0 means the run finished with zero 5xx responses
//! (excluding tolerated chaos 503s) and zero transport errors; anything
//! else exits 1.

use datalab_bench::telemetry_dir;
use datalab_core::{ChaosConfig, DataLabConfig, LATENCY_BUCKETS_US};
use datalab_server::{Json, Server, ServerConfig};
use datalab_telemetry::{json_escape, CountingAlloc, HistogramSnapshot, MetricsRegistry};
use datalab_workloads::request_corpus;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// In `--boot` mode the in-process server shares this process, so the
/// counting allocator gives its spans and `/v1/metrics` real `alloc.*`
/// attribution — the CI serving smoke exercises exactly that path.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

struct Args {
    addr: Option<String>,
    boot: bool,
    rps: u64,
    duration: Duration,
    seed: u64,
    tasks: usize,
    write_rate: f64,
    chaos_rate: f64,
    chaos_seed: u64,
    out: Option<PathBuf>,
}

#[derive(Debug)]
struct Sample {
    status: u16,
    latency_us: u64,
    workload: String,
    write: bool,
    error_kind: Option<String>,
}

/// Precomputed ingest material for one corpus table: a write slot sends
/// the header plus one recycled data row (always schema-compatible).
struct IngestTarget {
    tenant: String,
    name: String,
    header: String,
    rows: Vec<String>,
}

fn parse_duration(text: &str) -> Result<Duration, String> {
    let digits = text.strip_suffix('s').unwrap_or(text);
    digits
        .parse::<u64>()
        .map(Duration::from_secs)
        .map_err(|e| format!("--duration: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        addr: None,
        boot: false,
        rps: 50,
        duration: Duration::from_secs(10),
        seed: 7,
        tasks: 3,
        write_rate: 0.0,
        chaos_rate: 0.0,
        chaos_seed: 7,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        match arg.as_str() {
            "--addr" => parsed.addr = Some(take("--addr")?),
            "--boot" => parsed.boot = true,
            "--rps" => parsed.rps = take("--rps")?.parse().map_err(|e| format!("--rps: {e}"))?,
            "--duration" => parsed.duration = parse_duration(&take("--duration")?)?,
            "--seed" => {
                parsed.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--tasks" => {
                parsed.tasks = take("--tasks")?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?
            }
            "--write-rate" => {
                parsed.write_rate = take("--write-rate")?
                    .parse()
                    .map_err(|e| format!("--write-rate: {e}"))?
            }
            "--chaos-rate" => {
                parsed.chaos_rate = take("--chaos-rate")?
                    .parse()
                    .map_err(|e| format!("--chaos-rate: {e}"))?
            }
            "--chaos-seed" => {
                parsed.chaos_seed = take("--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?
            }
            "--out" => parsed.out = Some(PathBuf::from(take("--out")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if parsed.boot == parsed.addr.is_some() {
        return Err("exactly one of --addr or --boot is required".to_string());
    }
    if parsed.rps == 0 {
        return Err("--rps must be positive".to_string());
    }
    if !(0.0..=1.0).contains(&parsed.write_rate) {
        return Err("--write-rate must be between 0 and 1".to_string());
    }
    if parsed.chaos_rate > 0.0 && !parsed.boot {
        return Err(
            "--chaos-rate requires --boot (faults are injected into the booted server's sessions)"
                .to_string(),
        );
    }
    Ok(parsed)
}

/// One HTTP request over a fresh connection; returns (status, body).
/// A `trace` is sent as `X-Trace-Id` so server-side samples and traces
/// can be correlated with loadgen's own report.
fn http(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    trace: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(5))))
        .map_err(|e| format!("timeout: {e}"))?;
    let body = body.unwrap_or("");
    let trace_header = trace
        .map(|t| format!("X-Trace-Id: {t}\r\n"))
        .unwrap_or_default();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\n{trace_header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {text:?}"))?;
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head:?}"))?;
    Ok((status, body.to_string()))
}

/// Serialises a latency histogram for the JSON report. Bucket bounds
/// and counts ride along so downstream tools (the SLO report) can
/// compute threshold fractions, not just read the fixed percentiles.
fn latency_json(h: &HistogramSnapshot) -> String {
    let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
    let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{},\
         \"bounds\":[{}],\"counts\":[{}]}}",
        h.count,
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999(),
        h.max,
        bounds.join(","),
        counts.join(",")
    )
}

/// Extracts `error.kind` from an error body, tolerating non-JSON.
fn error_kind(body: &str) -> String {
    Json::parse(body)
        .ok()
        .and_then(|v| {
            v.get("error")
                .and_then(|e| e.str_field("kind").map(String::from))
        })
        .unwrap_or_else(|| "unparseable".to_string())
}

fn run() -> Result<u8, String> {
    let args = parse_args()?;

    let booted = if args.boot {
        let config = ServerConfig {
            lab_config: DataLabConfig {
                record_runs: false,
                chaos: (args.chaos_rate > 0.0)
                    .then(|| ChaosConfig::uniform(args.chaos_seed, args.chaos_rate)),
                ..DataLabConfig::default()
            },
            ..ServerConfig::default()
        };
        Some(Server::start(config).map_err(|e| format!("boot: {e}"))?)
    } else {
        None
    };
    let addr = match (&booted, &args.addr) {
        (Some(server), _) => server.addr().to_string(),
        (None, Some(addr)) => addr.clone(),
        (None, None) => unreachable!("validated in parse_args"),
    };

    eprintln!(
        "loadgen: target={addr} rps={} duration={}s seed={} tasks={} write_rate={} \
         chaos_rate={} chaos_seed={}",
        args.rps,
        args.duration.as_secs(),
        args.seed,
        args.tasks,
        args.write_rate,
        args.chaos_rate,
        args.chaos_seed
    );

    // Register the corpus tables up front (not counted in the report).
    let corpus = request_corpus(args.seed, args.tasks);
    for table in &corpus.tables {
        let body = format!(
            "{{\"tenant\":\"{}\",\"name\":\"{}\",\"csv\":\"{}\"}}",
            json_escape(&table.tenant),
            json_escape(&table.name),
            json_escape(&table.csv)
        );
        let (status, response) = http(&addr, "POST", "/v1/tables", Some(&body), None)?;
        if status != 200 {
            return Err(format!(
                "registering {}/{} failed with {status}: {response}",
                table.tenant, table.name
            ));
        }
    }
    eprintln!(
        "loadgen: registered {} tables for {} tenants",
        corpus.tables.len(),
        corpus.tenants().len()
    );
    let ingest_targets: Vec<IngestTarget> = corpus
        .tables
        .iter()
        .filter_map(|table| {
            let mut lines = table.csv.lines();
            let header = lines.next()?.to_string();
            let rows: Vec<String> = lines
                .filter(|l| !l.trim().is_empty())
                .map(str::to_string)
                .collect();
            (!rows.is_empty()).then(|| IngestTarget {
                tenant: table.tenant.clone(),
                name: table.name.clone(),
                header,
                rows,
            })
        })
        .collect();
    if args.write_rate > 0.0 && ingest_targets.is_empty() {
        return Err("--write-rate needs at least one corpus table with data rows".to_string());
    }

    // Open-loop replay: request i fires at start + i/rps, regardless of
    // how long earlier requests took (so server slowness shows up as
    // latency, not reduced offered load).
    let total = (args.rps * args.duration.as_secs()) as usize;
    let interval = Duration::from_micros(1_000_000 / args.rps.max(1));
    let threads = (args.rps / 4).clamp(2, 16) as usize;
    let next_slot = Arc::new(AtomicUsize::new(0));
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::with_capacity(total)));
    let requests = Arc::new(corpus.requests);
    let ingest_targets = Arc::new(ingest_targets);
    let write_rate = args.write_rate;
    let start = Instant::now();

    let mut handles = Vec::new();
    for _ in 0..threads {
        let next_slot = Arc::clone(&next_slot);
        let samples = Arc::clone(&samples);
        let requests = Arc::clone(&requests);
        let ingest_targets = Arc::clone(&ingest_targets);
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || loop {
            let slot = next_slot.fetch_add(1, Ordering::Relaxed);
            if slot >= total {
                break;
            }
            let fire_at = start + interval * slot as u32;
            if let Some(wait) = fire_at.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            // Deterministic interleave: slot s is a write iff the
            // cumulative write quota crosses an integer at s, spreading
            // writes evenly through the schedule at `write_rate`.
            let is_write = write_rate > 0.0
                && ((slot + 1) as f64 * write_rate).floor() > (slot as f64 * write_rate).floor();
            let trace = format!("loadgen-{slot}");
            let begun = Instant::now();
            let (method, path, body, workload) = if is_write {
                let target = &ingest_targets[slot % ingest_targets.len()];
                let csv = format!(
                    "{}\n{}\n",
                    target.header,
                    target.rows[slot % target.rows.len()]
                );
                (
                    "POST".to_string(),
                    format!("/v1/tables/{}/rows", target.name),
                    format!(
                        "{{\"tenant\":\"{}\",\"csv\":\"{}\",\"idempotency_key\":\"loadgen-{slot}\"}}",
                        json_escape(&target.tenant),
                        json_escape(&csv)
                    ),
                    "ingest".to_string(),
                )
            } else {
                let request = &requests[slot % requests.len()];
                (
                    "POST".to_string(),
                    "/v1/query".to_string(),
                    format!(
                        "{{\"tenant\":\"{}\",\"workload\":\"{}\",\"question\":\"{}\"}}",
                        json_escape(&request.tenant),
                        json_escape(&request.workload),
                        json_escape(&request.question)
                    ),
                    request.workload.clone(),
                )
            };
            let sample = match http(&addr, &method, &path, Some(&body), Some(&trace)) {
                Ok((status, response)) => Sample {
                    status,
                    latency_us: begun.elapsed().as_micros() as u64,
                    workload,
                    write: is_write,
                    error_kind: (status != 200).then(|| error_kind(&response)),
                },
                Err(e) => Sample {
                    status: 0,
                    latency_us: begun.elapsed().as_micros() as u64,
                    workload,
                    write: is_write,
                    error_kind: Some(format!("transport: {e}")),
                },
            };
            samples.lock().unwrap().push(sample);
        }));
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| "a loadgen thread panicked".to_string())?;
    }
    let wall_us = start.elapsed().as_micros() as u64;
    let samples = Arc::try_unwrap(samples)
        .map_err(|_| "sample sink still shared".to_string())?
        .into_inner()
        .unwrap();

    // Aggregate: status counts, error taxonomy, latency percentiles —
    // overall, split by reads vs writes, and per workload kind.
    let mut status_counts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut read_statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut write_statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut errors: BTreeMap<String, u64> = BTreeMap::new();
    let mut read_errors: BTreeMap<String, u64> = BTreeMap::new();
    let mut write_errors: BTreeMap<String, u64> = BTreeMap::new();
    let mut workloads: Vec<String> = Vec::new();
    let registry = MetricsRegistry::new();
    registry.histogram_with_buckets("loadgen.request_us", LATENCY_BUCKETS_US);
    registry.histogram_with_buckets("loadgen.query_us", LATENCY_BUCKETS_US);
    registry.histogram_with_buckets("loadgen.ingest_us", LATENCY_BUCKETS_US);
    for sample in &samples {
        *status_counts.entry(sample.status).or_insert(0) += 1;
        registry.observe("loadgen.request_us", sample.latency_us);
        let (statuses, taxonomy, series) = if sample.write {
            (&mut write_statuses, &mut write_errors, "loadgen.ingest_us")
        } else {
            (&mut read_statuses, &mut read_errors, "loadgen.query_us")
        };
        *statuses.entry(sample.status).or_insert(0) += 1;
        if let Some(kind) = &sample.error_kind {
            *errors.entry(kind.clone()).or_insert(0) += 1;
            *taxonomy.entry(kind.clone()).or_insert(0) += 1;
        }
        registry.observe(series, sample.latency_us);
        if !sample.write {
            let per_workload = format!("loadgen.query_us.{}", sample.workload);
            if !workloads.contains(&sample.workload) {
                workloads.push(sample.workload.clone());
                registry.histogram_with_buckets(&per_workload, LATENCY_BUCKETS_US);
            }
            registry.observe(&per_workload, sample.latency_us);
        }
    }
    workloads.sort();
    let latency = registry
        .histogram("loadgen.request_us")
        .ok_or_else(|| "latency histogram missing".to_string())?;
    let read_latency = registry
        .histogram("loadgen.query_us")
        .ok_or_else(|| "read latency histogram missing".to_string())?;
    let write_latency = registry
        .histogram("loadgen.ingest_us")
        .ok_or_else(|| "write latency histogram missing".to_string())?;
    let fivexx: u64 = status_counts
        .iter()
        .filter(|(status, _)| **status >= 500)
        .map(|(_, n)| n)
        .sum();
    let transport = status_counts.get(&0).copied().unwrap_or(0);
    let achieved_rps = if wall_us > 0 {
        samples.len() as f64 * 1_000_000.0 / wall_us as f64
    } else {
        0.0
    };

    println!("loadgen report: POST /v1/query + POST /v1/tables/:name/rows");
    println!(
        "  sent       {} ({achieved_rps:.1} rps achieved, {} reads / {} writes)",
        samples.len(),
        read_latency.count,
        write_latency.count
    );
    for (status, count) in &status_counts {
        if *status == 0 {
            println!("  transport  {count}");
        } else {
            println!("  {status}        {count}");
        }
    }
    println!(
        "  latency_us p50={} p90={} p99={} p999={} max={}",
        latency.p50(),
        latency.p90(),
        latency.p99(),
        latency.p999(),
        latency.max
    );
    println!(
        "  reads      n={} p50={} p99={} max={}",
        read_latency.count,
        read_latency.p50(),
        read_latency.p99(),
        read_latency.max
    );
    if args.write_rate > 0.0 {
        println!(
            "  writes     n={} p50={} p99={} max={}",
            write_latency.count,
            write_latency.p50(),
            write_latency.p99(),
            write_latency.max
        );
        for (status, count) in &write_statuses {
            if *status >= 500 {
                println!("  write 5xx  {status}: {count}");
            }
        }
        for (kind, count) in &write_errors {
            println!("  write err  {kind}: {count}");
        }
    }
    for workload in &workloads {
        let h = registry
            .histogram(&format!("loadgen.query_us.{workload}"))
            .ok_or_else(|| format!("missing per-workload histogram for {workload}"))?;
        println!(
            "  workload   {workload}: n={} p50={} p90={} p99={} p999={} max={}",
            h.count,
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999(),
            h.max
        );
    }
    for (kind, count) in &errors {
        println!("  error      {kind}: {count}");
    }

    let path = match args.out {
        Some(p) => p,
        None => telemetry_dir()
            .map_err(|e| format!("cannot create target/telemetry: {e}"))?
            .join("loadgen_report.json"),
    };
    let status_json = |m: &BTreeMap<u16, u64>| {
        let parts: Vec<String> = m
            .iter()
            .map(|(status, count)| format!("\"{status}\":{count}"))
            .collect();
        format!("{{{}}}", parts.join(","))
    };
    let taxonomy_json = |m: &BTreeMap<String, u64>| {
        let parts: Vec<String> = m
            .iter()
            .map(|(kind, count)| format!("\"{}\":{count}", json_escape(kind)))
            .collect();
        format!("{{{}}}", parts.join(","))
    };
    let side_json = |statuses: &BTreeMap<u16, u64>,
                     taxonomy: &BTreeMap<String, u64>,
                     latency: &HistogramSnapshot| {
        format!(
            "{{\"sent\":{},\"statuses\":{},\"errors\":{},\"latency_us\":{}}}",
            latency.count,
            status_json(statuses),
            taxonomy_json(taxonomy),
            latency_json(latency)
        )
    };
    let per_workload: Vec<String> = workloads
        .iter()
        .map(|workload| {
            let h = registry
                .histogram(&format!("loadgen.query_us.{workload}"))
                .expect("per-workload histogram registered above");
            format!("\"{}\":{}", json_escape(workload), latency_json(&h))
        })
        .collect();
    let report = format!(
        "{{\"endpoint\":\"POST /v1/query\",\"sent\":{},\"wall_us\":{wall_us},\
         \"target_rps\":{},\"achieved_rps\":{achieved_rps:.1},\"write_rate\":{},\
         \"statuses\":{},\"errors\":{},\"latency_us\":{},\"reads\":{},\"writes\":{},\
         \"workloads\":{{{}}}}}",
        samples.len(),
        args.rps,
        args.write_rate,
        status_json(&status_counts),
        taxonomy_json(&errors),
        latency_json(&latency),
        side_json(&read_statuses, &read_errors, &read_latency),
        side_json(&write_statuses, &write_errors, &write_latency),
        per_workload.join(",")
    );
    std::fs::write(&path, report).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("loadgen report written: {}", path.display());

    if let Some(server) = booted {
        server.shutdown();
    }
    // Under injected chaos, 503 transport_unavailable is expected
    // back-pressure (the breaker doing its job), not a server failure.
    // Only read 503s qualify: chaos hits the model transport, so a
    // write 503 would mean the storage path degraded.
    let tolerated = if args.chaos_rate > 0.0 {
        let n = read_statuses.get(&503).copied().unwrap_or(0);
        if n > 0 {
            eprintln!(
                "loadgen: tolerating {n} chaos 503s (chaos_rate={})",
                args.chaos_rate
            );
        }
        n
    } else {
        0
    };
    if fivexx > tolerated || transport > 0 {
        eprintln!("loadgen: FAILED ({fivexx} server errors, {transport} transport errors)");
        Ok(1)
    } else {
        Ok(0)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("loadgen: {e}");
            eprintln!(
                "usage: loadgen (--addr HOST:PORT | --boot) [--rps N] [--duration 10s] \
                 [--seed N] [--tasks N] [--write-rate R] [--chaos-rate R] [--chaos-seed N] \
                 [--out PATH]"
            );
            ExitCode::from(2)
        }
    }
}
