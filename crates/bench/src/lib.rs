//! Shared helpers for the DataLab benchmark harness.

#![warn(missing_docs)]

/// Prints a section header for a reproduced table/figure.
pub fn header(title: &str, paper_ref: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; paper values quoted for shape comparison)");
    println!("==================================================================");
}

/// Prints one metric row: benchmark, metric, and per-method values.
pub fn row(benchmark: &str, metric: &str, cells: &[(&str, String)]) {
    let body: Vec<String> = cells.iter().map(|(m, v)| format!("{m}={v}")).collect();
    println!("{benchmark:<18} {metric:<22} {}", body.join("  "));
}
