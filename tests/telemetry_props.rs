//! Property-based tests for pipeline observability: every `query()`
//! must produce a single-root, well-formed span tree whose token
//! attribution agrees with the global meter, and whose Chrome trace
//! export is valid JSON.

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Value};
use proptest::prelude::*;

fn lab_with_sales(n: usize) -> DataLab {
    let mut lab = DataLab::new(DataLabConfig::default());
    let df = DataFrame::from_columns(vec![
        (
            "region",
            DataType::Str,
            (0..n)
                .map(|i| Value::Str(["east", "west", "north"][i % 3].into()))
                .collect(),
        ),
        (
            "amount",
            DataType::Int,
            (0..n).map(|i| Value::Int(5 + 7 * i as i64)).collect(),
        ),
        (
            "cost",
            DataType::Int,
            (0..n).map(|i| Value::Int(1 + i as i64)).collect(),
        ),
    ])
    .expect("valid frame");
    lab.register_table("sales", df).expect("registers");
    lab
}

proptest! {
    // Queries are full pipeline runs; a handful of cases is plenty.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_query_yields_a_well_formed_attributed_span_tree(
        measure in prop::sample::select(vec!["amount", "cost"]),
        verb in prop::sample::select(vec!["total", "average", "maximum"]),
        chart in any::<bool>(),
        rows in 3usize..12,
    ) {
        let mut lab = lab_with_sales(rows);
        let question = if chart {
            format!("draw a bar chart of {verb} {measure} by region")
        } else {
            format!("what is the {verb} {measure} by region?")
        };
        let before = lab.tokens_used();
        let r = lab.query(&question);
        let spent = lab.tokens_used() - before;

        // Single root named "query", children nested within parents.
        prop_assert_eq!(r.telemetry.spans.len(), 1, "{:#?}", r.telemetry.spans);
        let root = r.telemetry.root().expect("single root");
        prop_assert_eq!(root.name.as_str(), "query");
        prop_assert!(root.well_formed(), "{}", r.telemetry.render());

        // At least four named pipeline stages under the root.
        let stages = r.telemetry.stage_names();
        prop_assert!(stages.len() >= 4, "stages: {stages:?}");
        for want in ["rewrite", "plan", "execute", "synthesize"] {
            prop_assert!(stages.contains(&want), "missing {want} in {stages:?}");
        }

        // Attribution is complete: the per-stage/per-agent breakdown sums
        // to exactly what the global meter charged for this query.
        prop_assert!(spent > 0);
        prop_assert_eq!(r.telemetry.total.total(), spent);
        let by_parts: u64 = r.telemetry.attribution.iter().map(|a| a.usage.total()).sum();
        prop_assert_eq!(by_parts, spent);

        // The Chrome trace export is valid JSON with complete (ph:"X")
        // events carrying ts + dur.
        let trace: serde_json::Value =
            serde_json::from_str(&r.telemetry.chrome_trace()).expect("valid trace JSON");
        let events = trace["traceEvents"].as_array().expect("traceEvents array");
        prop_assert!(events.len() >= root.total_spans());
        for e in events {
            prop_assert_eq!(&e["ph"], "X");
            prop_assert!(e["ts"].is_u64());
            prop_assert!(e["dur"].is_u64());
            prop_assert!(e["name"].is_string());
        }
    }
}
