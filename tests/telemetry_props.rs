//! Property-based tests for pipeline observability: every `query()`
//! must produce a single-root, well-formed span tree whose token
//! attribution agrees with the global meter, and whose Chrome trace
//! export is valid JSON; histogram percentile readouts must be ordered
//! and bucket-bounded; and the session fleet report must partition the
//! meter delta across multiple queries.

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Value};
use proptest::prelude::*;

fn lab_with_sales(n: usize) -> DataLab {
    let mut lab = DataLab::new(DataLabConfig::default());
    let df = DataFrame::from_columns(vec![
        (
            "region",
            DataType::Str,
            (0..n)
                .map(|i| Value::Str(["east", "west", "north"][i % 3].into()))
                .collect(),
        ),
        (
            "amount",
            DataType::Int,
            (0..n).map(|i| Value::Int(5 + 7 * i as i64)).collect(),
        ),
        (
            "cost",
            DataType::Int,
            (0..n).map(|i| Value::Int(1 + i as i64)).collect(),
        ),
    ])
    .expect("valid frame");
    lab.register_table("sales", df).expect("registers");
    lab
}

proptest! {
    // Queries are full pipeline runs; a handful of cases is plenty.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_query_yields_a_well_formed_attributed_span_tree(
        measure in prop::sample::select(vec!["amount", "cost"]),
        verb in prop::sample::select(vec!["total", "average", "maximum"]),
        chart in any::<bool>(),
        rows in 3usize..12,
    ) {
        let mut lab = lab_with_sales(rows);
        let question = if chart {
            format!("draw a bar chart of {verb} {measure} by region")
        } else {
            format!("what is the {verb} {measure} by region?")
        };
        let before = lab.tokens_used();
        let r = lab.query(&question);
        let spent = lab.tokens_used() - before;

        // Single root named "query", children nested within parents.
        prop_assert_eq!(r.telemetry.spans.len(), 1, "{:#?}", r.telemetry.spans);
        let root = r.telemetry.root().expect("single root");
        prop_assert_eq!(root.name.as_str(), "query");
        prop_assert!(root.well_formed(), "{}", r.telemetry.render());

        // At least four named pipeline stages under the root.
        let stages = r.telemetry.stage_names();
        prop_assert!(stages.len() >= 4, "stages: {stages:?}");
        for want in ["rewrite", "plan", "execute", "synthesize"] {
            prop_assert!(stages.contains(&want), "missing {want} in {stages:?}");
        }

        // Attribution is complete: the per-stage/per-agent breakdown sums
        // to exactly what the global meter charged for this query.
        prop_assert!(spent > 0);
        prop_assert_eq!(r.telemetry.total.total(), spent);
        let by_parts: u64 = r.telemetry.attribution.iter().map(|a| a.usage.total()).sum();
        prop_assert_eq!(by_parts, spent);

        // The Chrome trace export is valid JSON with complete (ph:"X")
        // events carrying ts + dur.
        let trace: serde_json::Value =
            serde_json::from_str(&r.telemetry.chrome_trace()).expect("valid trace JSON");
        let events = trace["traceEvents"].as_array().expect("traceEvents array");
        prop_assert!(events.len() >= root.total_spans());
        for e in events {
            prop_assert_eq!(&e["ph"], "X");
            prop_assert!(e["ts"].is_u64());
            prop_assert!(e["dur"].is_u64());
            prop_assert!(e["name"].is_string());
        }
    }
}

/// The bucket a value falls in: index into `bounds` (upper-inclusive),
/// or `bounds.len()` for the overflow bucket.
fn bucket_of(bounds: &[u64], v: u64) -> usize {
    bounds.iter().position(|b| v <= *b).unwrap_or(bounds.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_percentiles_are_ordered_and_bucket_bounded(
        values in prop::collection::vec(0u64..5_000, 1..200),
    ) {
        use datalab::telemetry::MetricsRegistry;
        let bounds = [10u64, 100, 500, 1_000, 2_500];
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("h", &bounds);
        for v in &values {
            m.observe("h", *v);
        }
        let s = m.histogram("h").expect("registered above");

        // Monotone and bounded by the true maximum.
        prop_assert!(s.p50() <= s.p90());
        prop_assert!(s.p90() <= s.p99());
        prop_assert!(s.p99() <= *values.iter().max().unwrap());

        // Each percentile lies in the same bucket as the exact rank
        // statistic it approximates, and never under-reports it.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let reported = s.percentile(q);
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            prop_assert_eq!(
                bucket_of(&bounds, reported),
                bucket_of(&bounds, exact),
                "q={} reported={} exact={}",
                q,
                reported,
                exact
            );
            prop_assert!(reported >= exact, "q={q} reported={reported} exact={exact}");
        }
    }
}

proptest! {
    // Each case runs several full queries; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn fleet_report_partitions_the_meter_delta_across_queries(
        measures in prop::collection::vec(
            prop::sample::select(vec!["total amount", "average cost", "maximum amount"]),
            2..5,
        ),
    ) {
        let mut lab = lab_with_sales(9);
        let before = lab.tokens_used();
        for (i, m) in measures.iter().enumerate() {
            let workload = if i % 2 == 0 { "nl2sql" } else { "followup" };
            lab.query_as(workload, &format!("what is the {m} by region?"));
        }
        let report = lab.fleet_report();
        let delta = lab.tokens_used() - before;

        // Fleet totals equal the meter delta, and both the per-stage and
        // per-workload breakdowns partition the same total.
        prop_assert_eq!(report.runs as usize, measures.len());
        prop_assert_eq!(report.tokens.total, delta);
        let by_stage: u64 = report.stages.iter().map(|s| s.tokens).sum();
        prop_assert_eq!(by_stage, delta);
        let by_workload: u64 = report.workloads.values().map(|w| w.tokens).sum();
        prop_assert_eq!(by_workload, delta);

        // The report survives its JSON round-trip.
        let parsed = datalab::core::FleetReport::from_json(&report.to_json())
            .expect("fleet report parses");
        prop_assert_eq!(parsed, report);
    }
}
