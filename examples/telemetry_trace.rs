//! Observability walkthrough: run a couple of queries and inspect what
//! the telemetry layer recorded — the per-query span tree, the token
//! attribution by pipeline stage and agent, the platform-wide metrics
//! registry, and a Chrome `trace_event` export you can load at
//! `chrome://tracing` (or <https://ui.perfetto.dev>).
//!
//! ```sh
//! cargo run --example telemetry_trace
//! ```

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Value};

fn main() {
    let n = 18;
    let sales = DataFrame::from_columns(vec![
        (
            "region",
            DataType::Str,
            (0..n)
                .map(|i| Value::Str(["east", "west", "south"][i % 3].to_string()))
                .collect(),
        ),
        (
            "amount",
            DataType::Int,
            (0..n).map(|i| Value::Int(100 + 7 * i as i64)).collect(),
        ),
        (
            "cost",
            DataType::Int,
            (0..n).map(|i| Value::Int(40 + 3 * i as i64)).collect(),
        ),
    ])
    .expect("valid frame");

    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("sales", sales)
        .expect("profiling succeeds");

    // Every query comes back with a QuerySummary: one span tree rooted at
    // "query", and the token spend broken down by (stage, agent).
    for question in [
        "What is the total amount by region?",
        "Draw a bar chart of total cost by region",
    ] {
        println!("=== Q: {question}\n");
        let r = lab.query(question);
        print!("{}", r.telemetry.render());

        // Machine-readable exports ride along on the same summary.
        let trace = r.telemetry.chrome_trace();
        println!(
            "chrome trace: {} bytes, {} events (load at chrome://tracing)",
            trace.len(),
            r.telemetry
                .root()
                .map(|root| root.total_spans())
                .unwrap_or(0),
        );
        println!();
    }

    // The platform-wide registry accumulates across queries: model-call
    // counters, retry counters from every agent, histograms of call sizes.
    println!("=== metrics registry\n");
    let snapshot = lab.telemetry().metrics().snapshot();
    for (name, value) in &snapshot.counters {
        println!("  {name:<26} {value}");
    }
    for (name, h) in &snapshot.histograms {
        println!("  {name:<26} count={} mean={:.1}", h.count, h.mean());
    }
    println!("\nmeter total: {} tokens", lab.tokens_used());
    println!(
        "attributed:  {} tokens",
        lab.telemetry().token_totals().total()
    );
}
