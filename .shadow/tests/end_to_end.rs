//! Integration tests exercising the full platform across crates: data
//! registration → knowledge incorporation → multi-agent execution →
//! notebook reflection.

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Date, Value};
use datalab::knowledge::{Lineage, Script};
use datalab::llm::ModelProfile;
use datalab::notebook::CellKind;
use datalab::sql::run_sql;

fn sales(n: usize) -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "region",
            DataType::Str,
            (0..n)
                .map(|i| Value::Str(["east", "west", "south"][i % 3].into()))
                .collect(),
        ),
        (
            "amount",
            DataType::Int,
            (0..n).map(|i| Value::Int(50 + 3 * i as i64)).collect(),
        ),
        (
            "cost",
            DataType::Int,
            (0..n).map(|i| Value::Int(20 + i as i64)).collect(),
        ),
        (
            "day",
            DataType::Date,
            (0..n)
                .map(|i| Value::Date(Date::new(2026, 1, 1).unwrap().add_days(9 * i as i64)))
                .collect(),
        ),
    ])
    .expect("valid frame")
}

#[test]
fn query_answers_match_direct_sql() {
    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("sales", sales(24)).unwrap();
    let r = lab.query("What is the total amount by region?");
    assert!(r.success);
    let produced = r.frame.expect("frame produced");
    let gold = run_sql(
        "SELECT region, SUM(amount) FROM sales GROUP BY region",
        lab.database(),
    )
    .expect("gold runs");
    assert!(datalab::sql::ex_equal(&produced, &gold, false));
}

#[test]
fn notebook_accumulates_a_session_and_dag_tracks_it() {
    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("sales", sales(18)).unwrap();
    lab.query("total amount by region");
    lab.query("draw a bar chart of total amount by region");
    let nb = lab.notebook();
    assert!(nb.len() >= 3, "cells: {}", nb.len());
    assert!(nb.cells().iter().any(|c| c.kind == CellKind::Sql));
    assert!(nb.cells().iter().any(|c| c.kind == CellKind::Chart));
    assert!(nb.cells().iter().any(|c| c.kind == CellKind::Markdown));
    // Every appended cell is tracked by the DAG.
    for cell in nb.cells() {
        assert!(
            lab.dag().analysis(cell.id).is_some(),
            "untracked cell {:?}",
            cell.id
        );
    }
}

#[test]
fn knowledge_changes_grounding_outcomes() {
    // The same dirty-schema question fails without knowledge and succeeds
    // with it — the paper's core claim, end to end.
    let dirty = DataFrame::from_columns(vec![
        (
            "rgn_cd",
            DataType::Str,
            vec!["east".into(), "west".into(), "east".into()],
        ),
        (
            "shouldincome_after",
            DataType::Float,
            vec![Value::Float(10.0), Value::Float(20.0), Value::Float(30.0)],
        ),
    ])
    .unwrap();

    let question = "total income by region";

    let mut bare = DataLab::new(DataLabConfig::default());
    bare.register_table("dwd_x", dirty.clone()).unwrap();
    let before = bare.query(question);
    let grounded_before = before.dsl_json.contains("shouldincome_after");

    let mut informed = DataLab::new(DataLabConfig::default());
    informed.register_table("dwd_x", dirty).unwrap();
    informed.ingest_scripts(
        "dwd_x",
        &[Script::sql(
            "-- daily income rollup by region\n\
             SELECT rgn_cd, SUM(shouldincome_after) AS t FROM dwd_x GROUP BY rgn_cd",
        )],
        &Lineage::default(),
    );
    let after = informed.query(question);
    assert!(
        after.dsl_json.contains("shouldincome_after"),
        "knowledge failed to ground the measure: {}",
        after.dsl_json
    );
    assert!(
        !grounded_before,
        "baseline unexpectedly grounded: {}",
        before.dsl_json
    );
}

#[test]
fn multi_stage_query_produces_chart_and_forecast() {
    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("sales", sales(30)).unwrap();
    let r = lab.query(
        "Query the total amount by region. Forecast the amount for next month. \
         Then draw a bar chart of the total amount by region.",
    );
    assert!(r.plan.contains(&"sql_agent".to_string()), "{:?}", r.plan);
    assert!(
        r.plan.contains(&"forecast_agent".to_string()),
        "{:?}",
        r.plan
    );
    assert!(r.plan.contains(&"vis_agent".to_string()), "{:?}", r.plan);
    assert!(r.chart.is_some());
    assert!(r.success, "{:?}", r.plan);
}

#[test]
fn weaker_models_fail_more_often_end_to_end() {
    let questions: Vec<String> = (0..60)
        .map(|i| format!("What is the average amount by region with cost greater than {i}?"))
        .collect();
    let mut ok = Vec::new();
    for profile in [ModelProfile::gpt4(), ModelProfile::llama31()] {
        let mut lab = DataLab::new(DataLabConfig {
            model: profile,
            ..Default::default()
        });
        lab.register_table("sales", sales(24)).unwrap();
        let gold = run_sql(
            // Gold per question is recomputed below; just count grounded successes here.
            "SELECT 1",
            lab.database(),
        );
        assert!(gold.is_ok());
        let mut hits = 0;
        for (i, q) in questions.iter().enumerate() {
            let r = lab.query(q);
            let gold = run_sql(
                &format!("SELECT region, AVG(amount) FROM sales WHERE cost > {i} GROUP BY region"),
                lab.database(),
            )
            .expect("gold runs");
            if let Some(frame) = r.frame {
                if datalab::sql::ex_equal(&frame, &gold, false) {
                    hits += 1;
                }
            }
        }
        ok.push(hits);
    }
    // The platform's retries narrow the gap on easy questions; weak models
    // must at least never come out ahead, and must show some failures.
    assert!(ok[0] >= ok[1], "gpt4={} llama={}", ok[0], ok[1]);
    assert!(ok[1] < questions.len(), "llama unexpectedly perfect");
}

#[test]
fn multi_round_context_carries_over() {
    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("sales", sales(12)).unwrap();
    lab.query("total amount by region for east");
    let follow = lab.query("what about west");
    assert!(follow.rewritten_query.contains("west"));
    assert!(follow.rewritten_query.to_lowercase().contains("amount"));
}
