//! Cross-crate consistency tests: the three artifact languages (SQL,
//! dscript, chart specs) compiled from the same DSL must agree on the
//! data they produce.

use datalab::frame::{DataFrame, DataType, Date, Value};
use datalab::knowledge::{validate_dsl_json, DslColumn, DslCondition, DslMeasure, DslSpec};
use datalab::llm::{LanguageModel, Prompt, SimLlm};
use datalab::sql::{ex_equal, run_sql, Database};
use datalab::viz::render;
use datalab_agents::run_dscript;

fn db() -> Database {
    let n = 20;
    let mut db = Database::new();
    db.insert(
        "orders",
        DataFrame::from_columns(vec![
            (
                "region",
                DataType::Str,
                (0..n)
                    .map(|i| Value::Str(["east", "west"][i % 2].into()))
                    .collect(),
            ),
            (
                "amount",
                DataType::Int,
                (0..n).map(|i| Value::Int(10 + i as i64)).collect(),
            ),
            (
                "day",
                DataType::Date,
                (0..n)
                    .map(|i| Value::Date(Date::new(2024, 3, 1).unwrap().add_days(i as i64)))
                    .collect(),
            ),
        ])
        .unwrap(),
    );
    db
}

fn spec() -> DslSpec {
    DslSpec {
        measure_list: vec![DslMeasure {
            table: Some("orders".into()),
            column: Some("amount".into()),
            aggregate: "sum".into(),
            expr: None,
            alias: Some("total".into()),
        }],
        dimension_list: vec![DslColumn {
            table: "orders".into(),
            column: "region".into(),
        }],
        condition_list: vec![DslCondition {
            table: "orders".into(),
            column: "amount".into(),
            op: ">".into(),
            value: serde_json::json!(12),
        }],
        projection_list: vec![],
        order_by: None,
        limit: None,
        chart: Some("bar".into()),
        clean: None,
    }
}

#[test]
fn sql_and_dscript_compilations_agree() {
    let db = db();
    let spec = spec();
    let via_sql = run_sql(&spec.to_sql(None), &db).expect("sql runs");
    let via_dscript = run_dscript(&spec.to_dscript(), &db).expect("dscript runs");
    assert!(ex_equal(&via_sql, &via_dscript, false));
}

#[test]
fn chart_rendering_agrees_with_sql_aggregation() {
    let db = db();
    let spec = spec();
    let chart_spec = spec.to_chart();
    let chart = render(&chart_spec, db.get("orders").unwrap()).expect("renders");
    let table = run_sql(&spec.to_sql(None), &db).expect("runs");
    // Every chart point appears in the SQL result.
    let regions = table.column("region").unwrap();
    let totals = table.column("total").unwrap();
    assert_eq!(chart.points.len(), table.n_rows());
    for (x, _, v) in &chart.points {
        let found = regions
            .iter()
            .zip(totals.iter())
            .any(|(r, t)| r == x && t.approx_eq(v, 1e-9));
        assert!(found, "chart point {x:?}={v:?} missing from SQL result");
    }
}

#[test]
fn model_generated_artifacts_execute_against_engines() {
    let db = db();
    let llm = SimLlm::gpt4();
    let schema =
        "table orders: region (str), amount (int), day (date)\nvalues orders.region: east, west";
    // SQL path.
    let sql = llm.complete(
        &Prompt::new("nl2sql")
            .section("schema", schema)
            .section("question", "total amount by region")
            .render(),
    );
    let a = run_sql(&sql, &db).expect("generated SQL runs");
    // Code path.
    let code = llm.complete(
        &Prompt::new("nl2code")
            .section("schema", schema)
            .section("question", "total amount by region")
            .render(),
    );
    let b = run_dscript(&code, &db).expect("generated pipeline runs");
    assert!(ex_equal(&a, &b, false), "sql and dscript disagree");
    // Vis path: same aggregation rendered as a chart.
    let spec_json = llm.complete(
        &Prompt::new("nl2vis")
            .section("schema", schema)
            .section("question", "bar chart of total amount by region")
            .render(),
    );
    let chart_spec = datalab::viz::ChartSpec::from_json(&spec_json).expect("valid spec");
    let chart = render(&chart_spec, db.get("orders").unwrap()).expect("renders");
    assert_eq!(chart.points.len(), a.n_rows());
}

#[test]
fn dsl_validator_accepts_model_output() {
    let llm = SimLlm::gpt4();
    let out = llm.complete(
        &Prompt::new("nl2dsl")
            .section(
                "schema",
                "table orders: region (str), amount (int), day (date)",
            )
            .section("question", "average amount by region in 2024")
            .render(),
    );
    let spec = validate_dsl_json(&out).expect("model emits schema-valid DSL");
    assert_eq!(spec.measure_list[0].aggregate, "avg");
}
