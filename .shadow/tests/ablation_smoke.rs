//! Small-scale smoke versions of the paper's ablations: the orderings the
//! full benches reproduce must already hold at reduced size, so CI
//! catches regressions without bench-scale runtimes.

use datalab::agents::CommunicationConfig;
use datalab::knowledge::KnowledgeSetting;
use datalab::llm::SimLlm;
use datalab::workloads::ablations::{
    eval_multiagent, eval_nl2dsl, eval_schema_linking, multiagent_tasks,
};
use datalab::workloads::enterprise::{
    downstream_tasks, enterprise_corpus, generate_corpus_knowledge,
};
use datalab::workloads::notebooks::{context_tasks, eval_context, notebook_corpus};

#[test]
fn table2_shape_holds_at_small_scale() {
    let corpus = enterprise_corpus(31, 8);
    let llm = SimLlm::gpt4();
    let gk = generate_corpus_knowledge(&corpus, &llm);
    let (linking, dsl) = downstream_tasks(&corpus, 31, 48, 48);
    let l1 = eval_schema_linking(&corpus, &gk, &linking, KnowledgeSetting::None, &llm);
    let l3 = eval_schema_linking(&corpus, &gk, &linking, KnowledgeSetting::Full, &llm);
    assert!(l3 > l1 + 10.0, "linking S1={l1} S3={l3}");
    let d1 = eval_nl2dsl(&corpus, &gk, &dsl, KnowledgeSetting::None, &llm);
    let d2 = eval_nl2dsl(&corpus, &gk, &dsl, KnowledgeSetting::Partial, &llm);
    let d3 = eval_nl2dsl(&corpus, &gk, &dsl, KnowledgeSetting::Full, &llm);
    assert!(d2 > d1 + 10.0, "dsl S1={d1} S2={d2}");
    assert!(d3 > d2 + 5.0, "dsl S2={d2} S3={d3}");
}

#[test]
fn table3_shape_holds_at_small_scale() {
    let corpus = enterprise_corpus(33, 5);
    let llm = SimLlm::gpt4();
    let gk = generate_corpus_knowledge(&corpus, &llm);
    let tasks = multiagent_tasks(&corpus, 33, 10);
    let s1 = eval_multiagent(
        &corpus,
        &gk,
        &tasks,
        &CommunicationConfig {
            use_fsm: false,
            ..Default::default()
        },
        &llm,
    );
    let s3 = eval_multiagent(&corpus, &gk, &tasks, &CommunicationConfig::default(), &llm);
    assert!(s3.accuracy > s1.accuracy + 5.0, "S1={:?} S3={:?}", s1, s3);
    assert!(s3.success_rate >= s1.success_rate, "S1={s1:?} S3={s3:?}");
}

#[test]
fn table4_shape_holds_at_small_scale() {
    let corpus = notebook_corpus(55, 20, 40);
    let tasks = context_tasks(&corpus, 55);
    let without = eval_context(&corpus, &tasks, false);
    let with = eval_context(&corpus, &tasks, true);
    assert!(
        with.token_cost_k < without.token_cost_k * 0.7,
        "{with:?} vs {without:?}"
    );
    assert!(without.accuracy >= with.accuracy);
    assert!(
        without.accuracy - with.accuracy < 12.0,
        "{with:?} vs {without:?}"
    );
}
