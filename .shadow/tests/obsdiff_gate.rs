//! Exit-code contract of the `obsdiff` regression gate: identical
//! reports pass, an inflated `tokens.total` or `alloc.bytes_per_query`
//! fails, unreadable input is a usage error.

use datalab::core::{AllocTotals, FleetReport, LatencyStats, LlmTotals, TokenTotals};
use std::path::PathBuf;
use std::process::Command;

fn write_report(name: &str, report: &FleetReport) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("obsdiff_gate_{}_{name}.json", std::process::id()));
    std::fs::write(&path, report.to_json()).expect("temp dir writable");
    path
}

fn obsdiff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_obsdiff"))
        .args(args)
        .output()
        .expect("obsdiff runs")
}

fn sample_report() -> FleetReport {
    FleetReport {
        runs: 4,
        passed: 4,
        tokens: TokenTotals {
            prompt: 800,
            completion: 200,
            total: 1000,
        },
        llm: LlmTotals { calls: 12 },
        latency: LatencyStats {
            count: 4,
            p50_us: 900,
            p90_us: 1600,
            p99_us: 2000,
            max_us: 2100,
        },
        alloc: AllocTotals {
            allocs: 4_000_000,
            bytes: 400_000_000,
            count_per_query: 1_000_000,
            bytes_per_query: 100_000_000,
        },
        ..FleetReport::default()
    }
}

#[test]
fn identical_reports_exit_zero() {
    let base = write_report("identical_base", &sample_report());
    let cand = write_report("identical_cand", &sample_report());
    let out = obsdiff(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK"), "{stdout}");
    std::fs::remove_file(base).ok();
    std::fs::remove_file(cand).ok();
}

#[test]
fn inflated_tokens_exit_nonzero() {
    let baseline = sample_report();
    let mut inflated = sample_report();
    inflated.tokens.total *= 3;
    let base = write_report("inflated_base", &baseline);
    let cand = write_report("inflated_cand", &inflated);
    let out = obsdiff(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION tokens.total"), "{stdout}");
    // A generous threshold lets the same inflation through.
    let out = obsdiff(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--threshold-pct",
        "500",
    ]);
    assert!(out.status.success());
    std::fs::remove_file(base).ok();
    std::fs::remove_file(cand).ok();
}

#[test]
fn inflated_alloc_bytes_per_query_exit_nonzero() {
    // The acceptance scenario for allocation gating: +20% per-query
    // bytes against a clean baseline must fail the default 10% gate.
    let baseline = sample_report();
    let mut inflated = sample_report();
    inflated.alloc.bytes_per_query = baseline.alloc.bytes_per_query * 12 / 10;
    let base = write_report("alloc_base", &baseline);
    let cand = write_report("alloc_cand", &inflated);
    let out = obsdiff(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("REGRESSION alloc.bytes_per_query"),
        "{stdout}"
    );

    // A pre-profiling baseline (zero alloc block) never gates alloc:
    // the same inflated candidate passes against it.
    let mut legacy = sample_report();
    legacy.alloc = AllocTotals::default();
    let legacy_base = write_report("alloc_legacy_base", &legacy);
    let out = obsdiff(&[legacy_base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(base).ok();
    std::fs::remove_file(cand).ok();
    std::fs::remove_file(legacy_base).ok();
}

#[test]
fn unreadable_or_missing_input_is_a_usage_error() {
    let out = obsdiff(&["/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsdiff(&[]);
    assert_eq!(out.status.code(), Some(2));
}
