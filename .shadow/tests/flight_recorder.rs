//! Integration coverage for the query flight recorder and fleet report:
//! a deliberately failing query must surface an error taxonomy and a
//! flight record, and a multi-query session's fleet report must agree
//! with the session-wide token meter.

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Value};
use datalab::telemetry::{render_flight_record, EventKind};

fn sales_lab() -> DataLab {
    let mut lab = DataLab::new(DataLabConfig::default());
    let df = DataFrame::from_columns(vec![
        (
            "region",
            DataType::Str,
            (0..9)
                .map(|i| Value::Str(["east", "west", "north"][i % 3].into()))
                .collect(),
        ),
        (
            "amount",
            DataType::Int,
            (0..9).map(|i| Value::Int(10 + 3 * i as i64)).collect(),
        ),
    ])
    .expect("valid frame");
    lab.register_table("sales", df).expect("registers");
    lab
}

#[test]
fn failing_query_produces_flight_record_and_error_taxonomy() {
    // No registered tables: the vis agent has no data source, so the
    // subtask fails deterministically.
    let mut lab = DataLab::new(DataLabConfig::default());
    let r = lab.query("draw a bar chart of revenue by region");
    assert!(!r.success);

    // The flight record spans exactly this query: starts at its
    // QueryStart, ends at its (failed) QueryEnd, and contains the agent
    // failure in between.
    assert!(!r.flight_record.is_empty());
    assert_eq!(r.flight_record.first().unwrap().kind, EventKind::QueryStart);
    let end = r.flight_record.last().unwrap();
    assert_eq!(end.kind, EventKind::QueryEnd);
    assert_eq!(end.detail, "failed");
    assert!(r
        .flight_record
        .iter()
        .any(|e| e.kind == EventKind::AgentFailure));
    // Sequence numbers are strictly increasing within the record.
    assert!(r.flight_record.windows(2).all(|w| w[0].seq < w[1].seq));
    let text = render_flight_record(&r.flight_record);
    assert!(text.contains("agent_failure"), "{text}");

    // The fleet report carries the taxonomy.
    let report = lab.fleet_report();
    assert_eq!((report.runs, report.passed, report.failed), (1, 0, 1));
    assert!(
        report.errors.get("agent_failure").copied().unwrap_or(0) >= 1,
        "{:?}",
        report.errors
    );
    let record = lab.run_records().last().expect("run recorded");
    assert!(!record.success);
    assert_eq!(record.flight_record.len(), r.flight_record.len());
}

#[test]
fn fleet_report_tokens_match_the_session_meter_across_queries() {
    let mut lab = sales_lab();
    // Registration profiles tables through the model; only the spend
    // after this point belongs to the queries.
    let before = lab.tokens_used();

    let questions = [
        ("nl2sql", "What is the total amount by region?"),
        ("nl2sql", "What is the average amount by region?"),
        ("nl2vis", "Draw a bar chart of total amount by region"),
    ];
    let mut per_query_sum = 0u64;
    for (workload, q) in questions {
        let r = lab.query_as(workload, q);
        assert!(r.success, "{q}");
        per_query_sum += r.telemetry.total.total();
    }

    let report = lab.fleet_report();
    let meter_delta = lab.tokens_used() - before;
    // The fleet total, the sum of per-query summaries, and the global
    // meter delta all agree...
    assert_eq!(report.tokens.total, per_query_sum);
    assert_eq!(report.tokens.total, meter_delta);
    // ...and the per-stage breakdown partitions the same total.
    let by_stage: u64 = report.stages.iter().map(|s| s.tokens).sum();
    assert_eq!(by_stage, report.tokens.total);

    // Latency stats cover every run, percentile-ordered.
    assert_eq!(report.latency.count, 3);
    assert!(report.latency.p50_us <= report.latency.p90_us);
    assert!(report.latency.p90_us <= report.latency.p99_us);
    assert!(report.latency.p99_us <= report.latency.max_us);
    let execute = report.stage("execute").expect("execute stats");
    assert_eq!(execute.spans, 3);

    // Workload rollups partition the runs.
    assert_eq!(report.workloads["nl2sql"].runs, 2);
    assert_eq!(report.workloads["nl2vis"].runs, 1);
    let workload_tokens: u64 = report.workloads.values().map(|w| w.tokens).sum();
    assert_eq!(workload_tokens, report.tokens.total);
}
