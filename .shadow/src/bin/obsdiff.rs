//! CI perf-regression gate: diffs two fleet-report JSONs and exits
//! non-zero when a gated metric regresses beyond the threshold.
//!
//! ```text
//! cargo run --bin obsdiff -- <baseline.json> <candidate.json> [--threshold-pct N]
//! ```
//!
//! Gated metrics: `tokens.total`, `llm.calls`, whole-query p99 latency,
//! per-query allocation count and bytes (`alloc.count_per_query`,
//! `alloc.bytes_per_query` — zero baselines are skipped, grandfathering
//! reports that predate allocation accounting), and the p99 latency of
//! every stage present in both reports. The default threshold is 10%.
//! Exit codes: 0 = within threshold, 1 = at least one regression, 2 =
//! usage or parse error.

use datalab_core::{diff_reports, FleetReport};
use std::process::ExitCode;

const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

fn usage() -> ExitCode {
    eprintln!("usage: obsdiff <baseline.json> <candidate.json> [--threshold-pct N]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<FleetReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    FleetReport::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold-pct" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(n)) if n >= 0.0 => threshold_pct = n,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => paths.push(arg),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return usage();
    };

    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("obsdiff: {e}");
            }
            return ExitCode::from(2);
        }
    };

    println!(
        "obsdiff: baseline {} runs / candidate {} runs, threshold {threshold_pct}%",
        baseline.runs, candidate.runs
    );
    println!(
        "  tokens.total    {:>10} -> {:>10}",
        baseline.tokens.total, candidate.tokens.total
    );
    println!(
        "  llm.calls       {:>10} -> {:>10}",
        baseline.llm.calls, candidate.llm.calls
    );
    println!(
        "  latency.p99_us  {:>10} -> {:>10}",
        baseline.latency.p99_us, candidate.latency.p99_us
    );
    println!(
        "  alloc.count/q   {:>10} -> {:>10}",
        baseline.alloc.count_per_query, candidate.alloc.count_per_query
    );
    println!(
        "  alloc.bytes/q   {:>10} -> {:>10}",
        baseline.alloc.bytes_per_query, candidate.alloc.bytes_per_query
    );

    let regressions = diff_reports(&baseline, &candidate, threshold_pct);
    if regressions.is_empty() {
        println!("obsdiff: OK — no gated metric regressed beyond {threshold_pct}%");
        return ExitCode::SUCCESS;
    }
    for r in &regressions {
        println!(
            "REGRESSION {}: {} -> {} (+{:.1}%, threshold {threshold_pct}%)",
            r.metric, r.baseline, r.candidate, r.change_pct
        );
    }
    ExitCode::FAILURE
}
