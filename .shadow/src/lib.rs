//! # DataLab
//!
//! A from-scratch Rust reproduction of **"DataLab: A Unified Platform for
//! LLM-Powered Business Intelligence"** (ICDE 2025): a one-stop LLM-based
//! agent framework fused with a computational-notebook model, including
//! the paper's three core modules — Domain Knowledge Incorporation,
//! Inter-Agent Communication, and Cell-based Context Management — and
//! every substrate they depend on (DataFrame engine, SQL engine,
//! simulated LLM, chart grammar, notebook DAG, benchmark workloads).
//!
//! Start with [`DataLab`](datalab_core::DataLab):
//!
//! ```
//! use datalab::core::{DataLab, DataLabConfig};
//! use datalab::frame::{DataFrame, DataType};
//!
//! let mut lab = DataLab::new(DataLabConfig::default());
//! let sales = DataFrame::from_columns(vec![
//!     ("region", DataType::Str, vec!["east".into(), "west".into()]),
//!     ("amount", DataType::Int, vec![10.into(), 20.into()]),
//! ]).unwrap();
//! lab.register_table("sales", sales).unwrap();
//! let response = lab.query("What is the total amount by region?");
//! assert!(response.success);
//! ```
//!
//! Each subsystem is its own crate, re-exported here:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `datalab-core` | the unified platform façade (§III) |
//! | [`frame`] | `datalab-frame` | columnar DataFrame engine |
//! | [`sql`] | `datalab-sql` | SQL parser/executor + EX metric |
//! | [`llm`] | `datalab-llm` | simulated LLM, embeddings, token metering |
//! | [`viz`] | `datalab-viz` | chart grammar, rendering, chart EX |
//! | [`knowledge`] | `datalab-knowledge` | Domain Knowledge Incorporation (§IV) |
//! | [`notebook`] | `datalab-notebook` | Cell-based Context Management (§VI) |
//! | [`agents`] | `datalab-agents` | Inter-Agent Communication + agents (§V) |
//! | [`workloads`] | `datalab-workloads` | benchmark generators + metrics (§VII) |
//! | [`telemetry`] | `datalab-telemetry` | span-tree tracing, metrics, token attribution |
//! | [`server`] | `datalab-server` | multi-tenant HTTP serving layer |

#![warn(missing_docs)]

pub use datalab_agents as agents;
pub use datalab_core as core;
pub use datalab_frame as frame;
pub use datalab_knowledge as knowledge;
pub use datalab_llm as llm;
pub use datalab_notebook as notebook;
pub use datalab_server as server;
pub use datalab_sql as sql;
pub use datalab_telemetry as telemetry;
pub use datalab_viz as viz;
pub use datalab_workloads as workloads;
