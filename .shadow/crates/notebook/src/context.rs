//! Adaptive context retrieval (paper §VI): given a query, walk the cell
//! DAG to find the minimum set of relevant cells, prune by task type, and
//! assemble the context text whose token cost Table IV measures.

use crate::cell::{CellId, CellKind, Notebook};
use crate::dag::CellDag;
use datalab_llm::{count_tokens, text_similarity};

/// Whole-word (identifier-boundary) containment check.
fn contains_word(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let mut start = 0;
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0 || !ident(haystack.as_bytes()[abs - 1]);
        let end = abs + needle.len();
        let after_ok = end >= haystack.len() || !ident(haystack.as_bytes()[end]);
        if before_ok && after_ok {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Where the query is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryScope {
    /// Cell-level query: initiated from an existing cell; ancestors are
    /// the relevant context.
    Cell(CellId),
    /// Notebook-level query: the agent will create new cells; the data
    /// variable's defining cell and its descendants are relevant.
    Notebook,
}

/// The task type contained in the query (detected by the proxy agent's
/// LLM); used to prune irrelevant cell kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskType {
    /// NL2SQL — SQL cells matter.
    Sql,
    /// NL2DSCode — Python cells matter.
    DsCode,
    /// NL2VIS — chart and data-producing cells matter.
    Vis,
    /// Open-ended insight work — keep everything.
    Insight,
}

impl TaskType {
    /// Maps the proxy agent's task label to a pruning class.
    pub fn from_label(label: &str) -> TaskType {
        match label {
            "nl2sql" => TaskType::Sql,
            "nl2dscode" | "nl2code" => TaskType::DsCode,
            "nl2vis" => TaskType::Vis,
            _ => TaskType::Insight,
        }
    }

    fn keeps(&self, kind: CellKind) -> bool {
        match self {
            TaskType::Sql => matches!(kind, CellKind::Sql),
            TaskType::DsCode => matches!(kind, CellKind::Python | CellKind::Sql),
            TaskType::Vis => matches!(kind, CellKind::Chart | CellKind::Sql | CellKind::Python),
            TaskType::Insight => true,
        }
    }
}

/// Retrieval configuration.
#[derive(Debug, Clone)]
pub struct ContextConfig {
    /// When false (ablation S1 of Table IV), every cell is supplied.
    pub use_dag: bool,
    /// Cosine threshold for including Markdown cells by similarity.
    pub markdown_threshold: f64,
    /// Whether to apply task-type pruning.
    pub prune_by_task: bool,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            use_dag: true,
            markdown_threshold: 0.28,
            prune_by_task: true,
        }
    }
}

/// The selected context.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextSelection {
    /// Selected cells, notebook order.
    pub cells: Vec<CellId>,
    /// Rendered context text (what goes into the prompt).
    pub text: String,
    /// Token cost of the rendered text.
    pub tokens: usize,
}

/// Runs context retrieval.
pub fn retrieve_context(
    notebook: &Notebook,
    dag: &CellDag,
    query: &str,
    scope: QueryScope,
    task: TaskType,
    config: &ContextConfig,
) -> ContextSelection {
    let mut selected: Vec<CellId> = if !config.use_dag {
        notebook.cells().iter().map(|c| c.id).collect()
    } else {
        let mut set: Vec<CellId> = match scope {
            QueryScope::Cell(id) => {
                let mut v = dag.ancestors(id);
                v.push(id);
                v
            }
            QueryScope::Notebook => {
                // Determine the related data variable: explicit mention in
                // the query, else the defining cell most similar to it.
                let vars = dag.defined_variables(notebook);
                let lower_q = query.to_lowercase();
                let explicit = vars
                    .iter()
                    .find(|(v, _)| contains_word(&lower_q, &v.to_lowercase()));
                let start = match explicit {
                    Some((_, cell)) => Some(*cell),
                    None => {
                        let mut best: Option<(CellId, f64)> = None;
                        for (_, cell) in &vars {
                            if let Some(c) = notebook.get(*cell) {
                                let sim = text_similarity(query, &c.source);
                                match best {
                                    Some((_, bs)) if bs >= sim => {}
                                    _ => best = Some((*cell, sim)),
                                }
                            }
                        }
                        best.map(|(c, _)| c)
                    }
                };
                match start {
                    Some(cs) => {
                        let mut v = vec![cs];
                        v.extend(dag.descendants(cs));
                        v
                    }
                    None => Vec::new(),
                }
            }
        };
        // Markdown cells lack references: select by textual similarity.
        for cell in notebook.cells() {
            if cell.kind == CellKind::Markdown
                && !set.contains(&cell.id)
                && text_similarity(query, &cell.source) >= config.markdown_threshold
            {
                set.push(cell.id);
            }
        }
        set
    };

    // Task-type pruning towards the minimum relevant set. Markdown cells
    // selected by similarity always survive (they carry narrative context).
    if config.use_dag && config.prune_by_task {
        selected.retain(|id| {
            notebook
                .get(*id)
                .map(|c| c.kind == CellKind::Markdown || task.keeps(c.kind))
                .unwrap_or(false)
        });
    }

    // Notebook order, deduped.
    let mut ordered: Vec<CellId> = notebook
        .cells()
        .iter()
        .map(|c| c.id)
        .filter(|id| selected.contains(id))
        .collect();
    ordered.dedup();

    let mut text = String::new();
    for (i, id) in ordered.iter().enumerate() {
        if let Some(cell) = notebook.get(*id) {
            let kind = match cell.kind {
                CellKind::Sql => "sql",
                CellKind::Python => "python",
                CellKind::Markdown => "markdown",
                CellKind::Chart => "chart",
            };
            text.push_str(&format!("[cell {i} {kind}]\n{}\n", cell.source));
            if let Some(var) = &cell.output_var {
                text.push_str(&format!("-- output variable: {var}\n"));
            }
            if let Some(out) = &cell.output {
                text.push_str(out);
                text.push('\n');
            }
        }
    }
    let tokens = count_tokens(&text);
    ContextSelection {
        cells: ordered,
        text,
        tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notebook() -> (Notebook, CellDag, CellId, CellId, CellId, CellId, CellId) {
        let mut nb = Notebook::new();
        let sql = nb.push_sql("SELECT region, amount FROM sales", "df_sales");
        let py = nb.push(CellKind::Python, "clean = df_sales.dropna()");
        let chart = nb.push(
            CellKind::Chart,
            r#"{"mark":"bar","data":"clean","x":{"field":"region"},"y":{"field":"amount","aggregate":"sum"}}"#,
        );
        let md = nb.push(CellKind::Markdown, "Revenue by region analysis notes");
        // An unrelated side investigation.
        let other = nb.push(
            CellKind::Python,
            "users = load_users()\nsignups = users.count()",
        );
        let dag = CellDag::build(&nb);
        (nb, dag, sql, py, chart, md, other)
    }

    #[test]
    fn cell_scope_selects_ancestors() {
        let (nb, dag, sql, py, chart, _md, other) = notebook();
        let sel = retrieve_context(
            &nb,
            &dag,
            "improve this chart",
            QueryScope::Cell(chart),
            TaskType::Vis,
            &ContextConfig::default(),
        );
        assert!(sel.cells.contains(&sql));
        assert!(sel.cells.contains(&py));
        assert!(sel.cells.contains(&chart));
        assert!(!sel.cells.contains(&other));
    }

    #[test]
    fn notebook_scope_follows_explicit_variable() {
        let (nb, dag, sql, py, chart, _md, other) = notebook();
        let sel = retrieve_context(
            &nb,
            &dag,
            "plot df_sales by region",
            QueryScope::Notebook,
            TaskType::Insight,
            &ContextConfig::default(),
        );
        assert!(sel.cells.contains(&sql));
        // Descendants of the defining cell.
        assert!(sel.cells.contains(&py));
        assert!(sel.cells.contains(&chart));
        assert!(!sel.cells.contains(&other));
    }

    #[test]
    fn task_pruning_reduces_cells() {
        let (nb, dag, sql, py, chart, _md, _other) = notebook();
        let sel = retrieve_context(
            &nb,
            &dag,
            "rewrite the sql for df_sales",
            QueryScope::Notebook,
            TaskType::Sql,
            &ContextConfig::default(),
        );
        assert!(sel.cells.contains(&sql));
        assert!(!sel.cells.contains(&py));
        assert!(!sel.cells.contains(&chart));
    }

    #[test]
    fn markdown_included_by_similarity() {
        let (nb, dag, _sql, _py, _chart, md, _other) = notebook();
        let sel = retrieve_context(
            &nb,
            &dag,
            "summarize the revenue by region analysis",
            QueryScope::Notebook,
            TaskType::Insight,
            &ContextConfig::default(),
        );
        assert!(sel.cells.contains(&md), "{:?}", sel.cells);
    }

    #[test]
    fn no_dag_ablation_takes_everything_and_costs_more() {
        let (nb, dag, _sql, _py, _chart, _md, _other) = notebook();
        let with_dag = retrieve_context(
            &nb,
            &dag,
            "rewrite the sql for df_sales",
            QueryScope::Notebook,
            TaskType::Sql,
            &ContextConfig::default(),
        );
        let without = retrieve_context(
            &nb,
            &dag,
            "rewrite the sql for df_sales",
            QueryScope::Notebook,
            TaskType::Sql,
            &ContextConfig {
                use_dag: false,
                ..Default::default()
            },
        );
        assert_eq!(without.cells.len(), nb.len());
        assert!(without.tokens > with_dag.tokens);
    }

    #[test]
    fn rendered_text_contains_sources() {
        let (nb, dag, sql, ..) = notebook();
        let sel = retrieve_context(
            &nb,
            &dag,
            "df_sales",
            QueryScope::Cell(sql),
            TaskType::Sql,
            &ContextConfig::default(),
        );
        assert!(sel.text.contains("SELECT region, amount FROM sales"));
        assert!(sel.text.contains("output variable: df_sales"));
        assert!(sel.tokens > 0);
    }
}
