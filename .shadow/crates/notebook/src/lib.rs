//! # datalab-notebook
//!
//! DataLab's **Cell-based Context Management** module (paper §VI): the
//! multi-language notebook model, the `pymini` Python analyser, Algorithm
//! 3 dependency-DAG construction with incremental updates, and adaptive
//! context retrieval with task-type pruning.

#![warn(missing_docs)]

pub mod cell;
pub mod context;
pub mod dag;
pub mod pymini;

pub use cell::{Cell, CellId, CellKind, Notebook};
pub use context::{retrieve_context, ContextConfig, ContextSelection, QueryScope, TaskType};
pub use dag::{CellAnalysis, CellDag};
pub use pymini::{analyze, PyAnalysis};
