//! Notebook cells — the multi-language cell model of DataLab's augmented
//! computational notebook (paper §III).

use serde::{Deserialize, Serialize};

/// Cell identifier, unique within a notebook for its whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u64);

/// The four cell languages DataLab notebooks wrangle together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// SQL cell; its result is stored into a data variable.
    Sql,
    /// Python (analysed by the `pymini` subset analyser).
    Python,
    /// Markdown narrative.
    Markdown,
    /// Chart cell holding a chart-spec JSON.
    Chart,
}

/// One notebook cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Identifier.
    pub id: CellId,
    /// Language.
    pub kind: CellKind,
    /// Source text (SQL text, Python code, Markdown, or chart JSON).
    pub source: String,
    /// For SQL cells: the data variable the SELECT's output is stored in.
    pub output_var: Option<String>,
    /// Last execution output (rendered), if any.
    pub output: Option<String>,
}

/// An ordered collection of cells.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Notebook {
    cells: Vec<Cell>,
    next_id: u64,
}

impl Notebook {
    /// An empty notebook.
    pub fn new() -> Self {
        Notebook::default()
    }

    /// Appends a cell, returning its id.
    pub fn push(&mut self, kind: CellKind, source: impl Into<String>) -> CellId {
        let id = CellId(self.next_id);
        self.next_id += 1;
        self.cells.push(Cell {
            id,
            kind,
            source: source.into(),
            output_var: None,
            output: None,
        });
        id
    }

    /// Appends a SQL cell whose result is bound to `var`.
    pub fn push_sql(&mut self, source: impl Into<String>, var: impl Into<String>) -> CellId {
        let id = self.push(CellKind::Sql, source);
        if let Some(c) = self.get_mut(id) {
            c.output_var = Some(var.into());
        }
        id
    }

    /// Cells in notebook order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// A cell by id.
    pub fn get(&self, id: CellId) -> Option<&Cell> {
        self.cells.iter().find(|c| c.id == id)
    }

    /// Mutable cell access.
    pub fn get_mut(&mut self, id: CellId) -> Option<&mut Cell> {
        self.cells.iter_mut().find(|c| c.id == id)
    }

    /// Replaces a cell's source (a user or agent edit).
    pub fn modify(&mut self, id: CellId, source: impl Into<String>) -> bool {
        match self.get_mut(id) {
            Some(c) => {
                c.source = source.into();
                true
            }
            None => false,
        }
    }

    /// Removes a cell.
    pub fn delete(&mut self, id: CellId) -> bool {
        let before = self.cells.len();
        self.cells.retain(|c| c.id != id);
        self.cells.len() != before
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The position of a cell in notebook order.
    pub fn position(&self, id: CellId) -> Option<usize> {
        self.cells.iter().position(|c| c.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_modify_delete() {
        let mut nb = Notebook::new();
        let a = nb.push(CellKind::Python, "x = 1");
        let b = nb.push_sql("SELECT 1", "df");
        assert_eq!(nb.len(), 2);
        assert_eq!(nb.get(b).unwrap().output_var.as_deref(), Some("df"));
        assert!(nb.modify(a, "x = 2"));
        assert_eq!(nb.get(a).unwrap().source, "x = 2");
        assert!(nb.delete(a));
        assert!(!nb.delete(a));
        assert_eq!(nb.len(), 1);
        assert_eq!(nb.position(b), Some(0));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut nb = Notebook::new();
        let a = nb.push(CellKind::Markdown, "hello");
        nb.delete(a);
        let b = nb.push(CellKind::Markdown, "world");
        assert_ne!(a, b);
    }
}
