//! Session-store behaviour: LRU eviction order, tenant isolation, and
//! concurrent access from many threads.

use datalab_server::{SessionStore, StoreConfig};
use datalab_telemetry::Telemetry;
use std::sync::Arc;
use std::thread;

fn store(capacity: usize, shards: usize) -> (SessionStore, Telemetry) {
    let telemetry = Telemetry::default();
    let store = SessionStore::new(
        StoreConfig {
            capacity,
            shards,
            ..StoreConfig::default()
        },
        telemetry.clone(),
    );
    (store, telemetry)
}

#[test]
fn evicts_the_least_recently_used_tenant() {
    // One shard so all three tenants compete for the same capacity.
    let (store, telemetry) = store(2, 1);
    store.session("a");
    store.session("b");
    // Touch `a` so `b` becomes the LRU entry.
    store.session("a");
    store.session("c");

    assert!(store.contains("a"), "recently used tenant evicted");
    assert!(!store.contains("b"), "LRU tenant survived");
    assert!(store.contains("c"));
    assert_eq!(store.len(), 2);
    assert_eq!(telemetry.metrics().counter("server.sessions.created"), 3);
    assert_eq!(telemetry.metrics().counter("server.sessions.evicted"), 1);
    assert_eq!(telemetry.metrics().gauge("server.sessions.active"), 2);

    // A re-created session starts empty: the evicted tenant's state is
    // gone, not resurrected.
    let b = store.session("b");
    assert!(b.lock().unwrap().database().is_empty());
}

#[test]
fn an_in_flight_handle_survives_eviction() {
    let (store, _) = store(1, 1);
    let a = store.session("a");
    a.lock()
        .unwrap()
        .register_csv("sales", "region,amount\neast,10\n")
        .unwrap();
    // `b` evicts `a` from the store, but the held handle still works.
    store.session("b");
    assert!(!store.contains("a"));
    assert!(a.lock().unwrap().database().contains("sales"));
}

#[test]
fn tenants_get_isolated_sessions() {
    let (store, _) = store(8, 4);
    let a = store.session("acme");
    a.lock()
        .unwrap()
        .register_csv("sales", "region,amount\neast,10\nwest,20\n")
        .unwrap();

    let b = store.session("globex");
    assert!(
        b.lock().unwrap().database().is_empty(),
        "tenant state leaked"
    );
    assert!(a.lock().unwrap().database().contains("sales"));

    // Repeated lookups return the same session, not a fresh one.
    let a2 = store.session("acme");
    assert!(Arc::ptr_eq(&a, &a2));
    let mut tenants = store.tenants();
    tenants.sort();
    assert_eq!(tenants, vec!["acme".to_string(), "globex".to_string()]);
}

#[test]
fn concurrent_access_from_many_threads_is_safe() {
    let telemetry = Telemetry::default();
    let store = Arc::new(SessionStore::new(
        StoreConfig {
            // Capacity is split per shard (16 each here), so even if the
            // hash sent every tenant to one shard nothing would evict.
            capacity: 64,
            shards: 4,
            ..StoreConfig::default()
        },
        telemetry.clone(),
    ));

    let mut handles = Vec::new();
    for thread_id in 0..8 {
        let store = Arc::clone(&store);
        handles.push(thread::spawn(move || {
            for round in 0..20 {
                let tenant = format!("tenant-{}", (thread_id + round) % 16);
                let session = store.session(&tenant);
                let mut lab = session.lock().unwrap();
                let table = format!("t{thread_id}");
                lab.register_csv(&table, "k,v\na,1\n").unwrap();
                assert!(lab.database().contains(&table));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("no thread panicked");
    }

    // All 16 distinct tenants fit: nothing was evicted, and every
    // creation is accounted for.
    assert_eq!(store.len(), 16);
    assert_eq!(telemetry.metrics().counter("server.sessions.created"), 16);
    assert_eq!(telemetry.metrics().counter("server.sessions.evicted"), 0);
    assert_eq!(telemetry.metrics().gauge("server.sessions.active"), 16);
}
