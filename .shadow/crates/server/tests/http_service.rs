//! End-to-end tests for the HTTP serving layer over real sockets:
//! happy paths, malformed input on every endpoint, overload shedding,
//! deadlines, tenant isolation, and graceful shutdown.

use datalab_server::{Server, ServerConfig};
use datalab_telemetry::CountingAlloc;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

/// Run the suite under the counting allocator — the configuration the
/// shipped binaries use — so `/v1/profile?weight=alloc` and the
/// `alloc.*` metrics exercise real attribution end to end.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const SALES_CSV: &str = "region,amount\neast,10\nwest,20\neast,5\n";
const CHART_QUESTION: &str = "draw a bar chart of sales by region";

fn boot(config: ServerConfig) -> Server {
    Server::start(config).expect("server boots")
}

/// Writes raw bytes, reads to EOF, returns (status, head, body).
fn send_raw(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("write");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn get_traced(addr: SocketAddr, path: &str, trace: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nX-Trace-Id: {trace}\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send_raw(addr, raw.as_bytes())
}

fn post_traced(addr: SocketAddr, path: &str, body: &str, trace: &str) -> (u16, String, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nX-Trace-Id: {trace}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send_raw(addr, raw.as_bytes())
}

/// Case-insensitive response-header lookup in a raw head.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        k.trim()
            .eq_ignore_ascii_case(name)
            .then(|| v.trim().to_string())
    })
}

/// Every span name in a `/v1/traces/:id` span forest, depth-first.
fn span_names(spans: &Value, out: &mut Vec<String>) {
    for node in spans.as_array().into_iter().flatten() {
        if let Some(name) = node["name"].as_str() {
            out.push(name.to_string());
        }
        span_names(&node["children"], out);
    }
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn error_kind(body: &str) -> String {
    json(body)["error"]["kind"]
        .as_str()
        .unwrap_or_else(|| panic!("no error.kind in {body}"))
        .to_string()
}

fn register_sales(addr: SocketAddr, tenant: &str) {
    let body = serde_json::json!({"tenant": tenant, "name": "sales", "csv": SALES_CSV});
    let (status, _, response) = post(addr, "/v1/tables", &body.to_string());
    assert_eq!(status, 200, "{response}");
    let v = json(&response);
    assert_eq!(v["ok"], Value::Bool(true));
    assert_eq!(v["rows"], 3);
}

fn run_query(addr: SocketAddr, tenant: &str, question: &str) -> (u16, Value) {
    let body = serde_json::json!({"tenant": tenant, "question": question});
    let (status, _, response) = post(addr, "/v1/query", &body.to_string());
    (status, json(&response))
}

#[test]
fn health_and_metrics_respond() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();

    let (status, _, body) = get(addr, "/v1/health");
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    assert_eq!(v["status"], "ok");
    assert_eq!(v["sessions"], 0);

    let (status, _, body) = get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    let v = json(&body);
    // Pre-registered endpoint histograms are visible before any query.
    assert!(
        v["histograms"]["server.latency.query_us"].is_object(),
        "{body}"
    );
    assert!(v["counters"]["server.requests.health"].as_u64() >= Some(1));
    server.shutdown();
}

#[test]
fn tables_then_query_round_trip() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();
    register_sales(addr, "acme");

    let (status, v) = run_query(addr, "acme", CHART_QUESTION);
    assert_eq!(status, 200, "{v}");
    assert_eq!(v["tenant"], "acme");
    assert_eq!(v["workload"], "adhoc");
    assert_eq!(v["success"], Value::Bool(true));
    assert_eq!(v["degraded"], Value::Bool(false));
    assert_eq!(v["chart"], Value::Bool(true));
    assert!(v["tokens"].as_u64() > Some(0), "{v}");
    assert!(v["duration_us"].as_u64() > Some(0));
    assert!(!v["plan"].as_array().unwrap().is_empty());

    // Per-tenant attribution shows up in the metrics snapshot.
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["counters"]["server.tenant.tokens.acme"].as_u64() > Some(0),
        "{metrics}"
    );
    assert_eq!(m["counters"]["server.tenant.queries.acme"], 1);
    // Fault-free serving still enumerates the resilience taxonomy at
    // zero and publishes a closed breaker for the tenant.
    assert_eq!(m["counters"]["server.resilience.faults"], 0);
    assert_eq!(m["counters"]["server.resilience.degraded"], 0);
    let (_, _, health) = get(addr, "/v1/health");
    assert_eq!(json(&health)["breakers"]["acme"], "closed", "{health}");
    server.shutdown();
}

#[test]
fn chaos_transport_degrades_and_publishes_breaker_health() {
    use datalab_core::{ChaosConfig, DataLabConfig};
    let server = boot(ServerConfig {
        lab_config: DataLabConfig {
            record_runs: false,
            chaos: Some(ChaosConfig::uniform(7, 0.9)),
            ..DataLabConfig::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.addr();
    register_sales(addr, "acme");

    let mut saw_degraded = false;
    let mut saw_503 = false;
    for _ in 0..6 {
        let body = serde_json::json!({"tenant": "acme", "question": "What is the total amount by region?"});
        let (status, head, response) = post(addr, "/v1/query", &body.to_string());
        match status {
            200 => {
                let v = json(&response);
                saw_degraded |= v["degraded"] == Value::Bool(true);
                // Structured degradation never leaks transport poison.
                let answer = v["answer"].as_str().unwrap_or("");
                assert!(!answer.contains("<<llm-error"), "{answer}");
            }
            503 => {
                saw_503 = true;
                assert!(head.contains("Retry-After: 1"), "{head}");
                assert_eq!(error_kind(&response), "transport_unavailable");
            }
            other => panic!("unexpected status {other}: {response}"),
        }
    }
    assert!(
        saw_degraded || saw_503,
        "90% fault rate produced neither degradation nor 503s"
    );

    // Health exposes the tenant's breaker state by name.
    let (_, _, health) = get(addr, "/v1/health");
    let state = json(&health)["breakers"]["acme"].clone();
    assert!(
        ["closed", "open", "half_open"].iter().any(|s| state == *s),
        "{health}"
    );

    // The serving registry mirrored the sessions' resilience activity.
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["counters"]["server.resilience.faults"].as_u64() > Some(0),
        "{metrics}"
    );
    assert!(
        m["counters"]["server.resilience.retries"].as_u64() > Some(0),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn garbage_bytes_yield_structured_errors_not_panics() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();

    // Non-HTTP bytes on the wire.
    let (status, _, body) = send_raw(addr, b"\x13\x37garbage\x00bytes\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind(&body), "bad_request");

    // Valid HTTP, garbage JSON, on both POST endpoints.
    for path in ["/v1/query", "/v1/tables"] {
        let (status, _, body) = post(addr, path, "{not json at all");
        assert_eq!(status, 400, "{path}: {body}");
        assert_eq!(error_kind(&body), "bad_request");

        let (status, _, body) = post(addr, path, "\u{0}\u{1}\u{2}");
        assert_eq!(status, 400, "{path}: {body}");

        // Valid JSON, wrong shape.
        let (status, _, body) = post(addr, path, "{\"tenant\":5}");
        assert_eq!(status, 400, "{path}: {body}");
        assert_eq!(error_kind(&body), "bad_request");
    }

    // Tenant validation: empty, oversized, control characters.
    for tenant in ["", &"x".repeat(65), "bad\ttenant"] {
        let body = serde_json::json!({"tenant": tenant, "question": "hi"});
        let (status, _, response) = post(addr, "/v1/query", &body.to_string());
        assert_eq!(status, 400, "tenant {tenant:?}: {response}");
        assert_eq!(error_kind(&response), "bad_request");
    }

    // Unregisterable CSV is a structured 400, not a panic.
    let body = serde_json::json!({"tenant": "acme", "name": "t", "csv": "\"unterminated"});
    let (status, _, response) = post(addr, "/v1/tables", &body.to_string());
    assert_eq!(status, 400, "{response}");
    assert_eq!(error_kind(&response), "table_register");

    // Unknown routes and methods.
    let (status, _, body) = get(addr, "/v1/nope");
    assert_eq!(status, 404);
    assert_eq!(error_kind(&body), "not_found");
    let (status, _, _) = send_raw(addr, b"DELETE /v1/query HTTP/1.1\r\n\r\n");
    assert_eq!(status, 404);

    // Every worker survived: the error counters are visible and the
    // server still answers.
    let (status, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    let m = json(&metrics);
    assert!(
        m["counters"]["platform.errors.bad_request"].as_u64() >= Some(10),
        "{metrics}"
    );
    assert!(m["counters"]["platform.errors.not_found"].as_u64() >= Some(2));
    let (status, _, _) = get(addr, "/v1/health");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn oversized_bodies_are_rejected() {
    let server = boot(ServerConfig {
        max_body_bytes: 64,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let big = "x".repeat(1000);
    let body = format!("{{\"tenant\":\"a\",\"question\":\"{big}\"}}");
    let (status, _, response) = post(addr, "/v1/query", &body);
    assert_eq!(status, 413, "{response}");
    assert_eq!(error_kind(&response), "too_large");
    server.shutdown();
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let server = boot(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        read_timeout_ms: 2_000,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // Fill the worker and the queue with connections that never send a
    // request. The first is connected alone and given time to reach the
    // single worker (which then blocks in read for read_timeout_ms); the
    // next two fill the queue. Held in a Vec so the sockets stay open.
    let mut idle = vec![TcpStream::connect(addr).expect("idle connect")];
    thread::sleep(Duration::from_millis(200));
    for _ in 0..2 {
        idle.push(TcpStream::connect(addr).expect("idle connect"));
    }
    thread::sleep(Duration::from_millis(200));

    let (status, head, body) = get(addr, "/v1/health");
    assert_eq!(status, 429, "{body}");
    assert_eq!(error_kind(&body), "overloaded");
    assert!(head.contains("Retry-After: 1"), "{head}");
    // Even acceptor-thread rejections are traceable: a server-minted
    // trace ID in the header and in the error body.
    let trace = header_value(&head, "X-Trace-Id").expect("429 carries X-Trace-Id");
    assert!(!trace.is_empty());
    assert_eq!(json(&body)["error"]["trace_id"], Value::String(trace));

    // Once the idle connections time out, service recovers.
    drop(idle);
    thread::sleep(Duration::from_millis(500));
    let (status, _, body) = get(addr, "/v1/health");
    assert_eq!(status, 200, "{body}");

    let (_, _, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["counters"]["server.rejected.global"].as_u64() >= Some(1),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn blown_deadline_is_a_504() {
    let server = boot(ServerConfig {
        deadline_ms: 0,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let body = serde_json::json!({"tenant": "acme", "question": "anything"}).to_string();
    let (status, head, response) = post_traced(addr, "/v1/query", &body, "deadline-trace-1");
    assert_eq!(status, 504, "{response}");
    let v = json(&response);
    assert_eq!(v["error"]["kind"], "deadline");
    // The client's trace ID is echoed on the timeout, in header and body.
    assert_eq!(
        header_value(&head, "X-Trace-Id").as_deref(),
        Some("deadline-trace-1"),
        "{head}"
    );
    assert_eq!(v["error"]["trace_id"], "deadline-trace-1");

    let (_, _, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(m["counters"]["server.timeouts"].as_u64() >= Some(1));
    // The 504 burned the whole error budget for the only request on
    // record: burn rates saturate and the budget reads exhausted.
    assert!(
        m["gauges"]["slo.availability_burn_fast_pm.acme"].as_i64() >= Some(1000),
        "{metrics}"
    );
    assert_eq!(m["gauges"]["slo.budget_exhausted.acme"], 1);
    let (_, _, health) = get(addr, "/v1/health");
    let h = json(&health);
    assert!(
        h["slo"]["acme"]["fast"]["availability_burn"].as_f64() >= Some(1.0),
        "{health}"
    );
    assert_eq!(h["slo"]["acme"]["budget_exhausted"], Value::Bool(true));

    // Server-side failures always land in the trace store (spanless
    // here: the request timed out while queued).
    let (status, _, detail) = get(addr, "/v1/traces/deadline-trace-1");
    assert_eq!(status, 200, "{detail}");
    let d = json(&detail);
    assert_eq!(d["status"], 504);
    assert_eq!(d["ok"], Value::Bool(false));
    assert_eq!(d["reason"], "error");
    server.shutdown();
}

#[test]
fn tenants_are_isolated_over_http() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();
    register_sales(addr, "acme");

    // acme sees its table; globex — same question, own session — fails
    // because no tables exist there.
    let (status, v) = run_query(addr, "acme", CHART_QUESTION);
    assert_eq!(status, 200);
    assert_eq!(v["success"], Value::Bool(true), "{v}");

    let (status, v) = run_query(addr, "globex", CHART_QUESTION);
    assert_eq!(status, 200);
    assert_eq!(v["success"], Value::Bool(false), "{v}");

    let (_, _, health) = get(addr, "/v1/health");
    assert_eq!(json(&health)["sessions"], 2);
    server.shutdown();
}

#[test]
fn trace_id_is_echoed_on_every_status_class() {
    let server = boot(ServerConfig {
        max_body_bytes: 64,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // 200: exact echo of the client's trace ID, plus the ID in the body.
    let (status, head, body) = get_traced(addr, "/v1/health", "ok-trace");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        header_value(&head, "X-Trace-Id").as_deref(),
        Some("ok-trace")
    );

    // 400 (parsed request, bad body): exact echo in header and body.
    let (status, head, body) = post_traced(addr, "/v1/query", "{not json", "bad-trace");
    assert_eq!(status, 400, "{body}");
    assert_eq!(
        header_value(&head, "X-Trace-Id").as_deref(),
        Some("bad-trace")
    );
    assert_eq!(json(&body)["error"]["trace_id"], "bad-trace");

    // 404: exact echo.
    let (status, head, body) = get_traced(addr, "/v1/nope", "lost-trace");
    assert_eq!(status, 404, "{body}");
    assert_eq!(
        header_value(&head, "X-Trace-Id").as_deref(),
        Some("lost-trace")
    );
    assert_eq!(json(&body)["error"]["trace_id"], "lost-trace");

    // An unusable client ID (bad characters) is replaced, not echoed.
    let (status, head, _) = get_traced(addr, "/v1/health", "no spaces allowed");
    assert_eq!(status, 200);
    let minted = header_value(&head, "X-Trace-Id").expect("minted trace");
    assert_ne!(minted, "no spaces allowed");
    assert!(!minted.is_empty());

    // 413: the request never parses, so the ID is server-minted but
    // still present in header and body.
    let big = "x".repeat(1000);
    let body = format!("{{\"tenant\":\"a\",\"question\":\"{big}\"}}");
    let (status, head, response) = post_traced(addr, "/v1/query", &body, "too-big-trace");
    assert_eq!(status, 413, "{response}");
    let trace = header_value(&head, "X-Trace-Id").expect("413 carries X-Trace-Id");
    assert!(!trace.is_empty());
    assert_eq!(json(&response)["error"]["trace_id"], Value::String(trace));

    // 400 from unparseable bytes: likewise server-minted but present.
    let (status, head, response) = send_raw(addr, b"\x13\x37garbage\r\n\r\n");
    assert_eq!(status, 400, "{response}");
    let trace = header_value(&head, "X-Trace-Id").expect("400 carries X-Trace-Id");
    assert_eq!(json(&response)["error"]["trace_id"], Value::String(trace));
    server.shutdown();
}

#[test]
fn trace_detail_returns_the_full_span_tree() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();
    register_sales(addr, "acme");

    let body = serde_json::json!({"tenant": "acme", "question": CHART_QUESTION}).to_string();
    let (status, head, response) = post_traced(addr, "/v1/query", &body, "accept-1");
    assert_eq!(status, 200, "{response}");
    assert_eq!(
        header_value(&head, "X-Trace-Id").as_deref(),
        Some("accept-1")
    );
    assert_eq!(json(&response)["trace_id"], "accept-1");

    // The first completion is always retained (uniform sampler leg), so
    // the detail endpoint serves the full span tree.
    let (status, _, detail) = get(addr, "/v1/traces/accept-1");
    assert_eq!(status, 200, "{detail}");
    let d = json(&detail);
    assert_eq!(d["trace_id"], "accept-1");
    assert_eq!(d["tenant"], "acme");
    assert_eq!(d["status"], 200);
    assert_eq!(d["ok"], Value::Bool(true));

    // The span forest reaches from the query root down to per-agent
    // scopes and individual LLM transport attempts.
    let roots = d["spans"].as_array().expect("spans array");
    assert_eq!(roots.len(), 1, "{detail}");
    assert_eq!(roots[0]["name"], "query");
    assert_eq!(roots[0]["attrs"]["trace_id"], "accept-1");
    let mut names = Vec::new();
    span_names(&d["spans"], &mut names);
    assert!(
        names.iter().any(|n| n.starts_with("agent:")),
        "no agent span in {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "llm:transport"),
        "no transport span in {names:?}"
    );
    // The Chrome export is embedded ready to save and load.
    assert!(
        d["chrome_trace"]["traceEvents"]
            .as_array()
            .is_some_and(|e| !e.is_empty()),
        "{detail}"
    );

    // The index lists it, filters by tenant, and validates parameters.
    let (status, _, index) = get(addr, "/v1/traces");
    assert_eq!(status, 200, "{index}");
    let idx = json(&index);
    assert!(idx["seen"].as_u64() >= Some(1));
    let listed: Vec<&str> = idx["traces"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|t| t["trace_id"].as_str())
        .collect();
    assert!(listed.contains(&"accept-1"), "{index}");

    let (_, _, filtered) = get(addr, "/v1/traces?tenant=acme&limit=10");
    assert!(!json(&filtered)["traces"].as_array().unwrap().is_empty());
    let (_, _, other) = get(addr, "/v1/traces?tenant=globex");
    assert!(json(&other)["traces"].as_array().unwrap().is_empty());
    let (status, _, body) = get(addr, "/v1/traces?status=weird");
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = get(addr, "/v1/traces?limit=0");
    assert_eq!(status, 400, "{body}");

    // Unknown trace IDs are a structured 404.
    let (status, _, body) = get(addr, "/v1/traces/never-seen");
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind(&body), "trace_not_found");
    server.shutdown();
}

#[test]
fn chaos_failure_retains_an_error_trace_with_fault_markers() {
    use datalab_core::{ChaosConfig, DataLabConfig};
    let server = boot(ServerConfig {
        lab_config: DataLabConfig {
            record_runs: false,
            chaos: Some(ChaosConfig::uniform(7, 1.0)),
            ..DataLabConfig::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.addr();
    // No tables registered and a chart question: the vis agent has no
    // data source, so the degraded pipeline cannot succeed either. With
    // every transport call faulting, failures classify as outages — the
    // 503 path.
    let mut failed_traces = Vec::new();
    for i in 0..4 {
        let trace = format!("chaos-{i}");
        let body = serde_json::json!({"tenant": "acme", "question": CHART_QUESTION}).to_string();
        let (status, head, response) = post_traced(addr, "/v1/query", &body, &trace);
        assert_eq!(
            header_value(&head, "X-Trace-Id").as_deref(),
            Some(trace.as_str()),
            "{head}"
        );
        if status == 503 {
            assert_eq!(json(&response)["error"]["trace_id"], trace.as_str());
            failed_traces.push(trace);
        }
    }
    assert!(
        !failed_traces.is_empty(),
        "100% fault rate never produced a 503"
    );

    // Error traces are always retained, and carry fault / fallback
    // markers tagged with the request's own trace ID.
    let mut saw_fault_marker = false;
    for trace in &failed_traces {
        let (status, _, detail) = get(addr, &format!("/v1/traces/{trace}"));
        assert_eq!(status, 200, "error trace {trace} was evicted: {detail}");
        let d = json(&detail);
        assert_eq!(d["status"], 503);
        assert_eq!(d["ok"], Value::Bool(false));
        assert_eq!(d["reason"], "error");
        let events = d["events"].as_array().expect("events array");
        assert!(!events.is_empty(), "{detail}");
        saw_fault_marker |= events.iter().any(|e| {
            let kind = e["kind"].as_str().unwrap_or("");
            let resilience = matches!(
                kind,
                "llm_fault" | "transport_retry" | "breaker_trip" | "degraded"
            );
            resilience && e["trace"].as_str() == Some(trace.as_str())
        });
    }
    assert!(
        saw_fault_marker,
        "no retained 503 trace carried a tagged fault/fallback marker"
    );

    // The error listing shows only failures.
    let (_, _, errors) = get(addr, "/v1/traces?status=error");
    let idx = json(&errors);
    for t in idx["traces"].as_array().unwrap() {
        assert_eq!(t["ok"], Value::Bool(false), "{errors}");
    }
    server.shutdown();
}

#[test]
fn health_reports_slo_and_metrics_publish_burn_gauges() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();
    register_sales(addr, "acme");
    let (status, v) = run_query(addr, "acme", CHART_QUESTION);
    assert_eq!(status, 200, "{v}");

    let (_, _, health) = get(addr, "/v1/health");
    let h = json(&health);
    assert_eq!(h["slo_targets"]["availability"], 0.99, "{health}");
    assert!(h["slo_targets"]["latency_threshold_us"].as_u64() > Some(0));
    let acme = &h["slo"]["acme"];
    assert!(acme["fast"]["requests"].as_u64() >= Some(1), "{health}");
    assert_eq!(acme["fast"]["availability"], 1.0);
    assert_eq!(acme["fast"]["availability_burn"], 0.0);
    assert_eq!(acme["budget_exhausted"], Value::Bool(false));

    let (_, _, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert_eq!(m["gauges"]["slo.availability_burn_fast_pm.acme"], 0);
    assert_eq!(m["gauges"]["slo.budget_exhausted.acme"], 0);
    server.shutdown();
}

#[test]
fn metrics_serve_prometheus_exposition_on_request() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();
    register_sales(addr, "acme");
    let (status, v) = run_query(addr, "acme", CHART_QUESTION);
    assert_eq!(status, 200, "{v}");

    // Default stays JSON, and the profile endpoint's latency histogram
    // is pre-registered like every other endpoint's.
    let (status, head, body) = get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        header_value(&head, "content-type").as_deref(),
        Some("application/json")
    );
    assert!(
        json(&body)["histograms"]["server.latency.profile_us"].is_object(),
        "{body}"
    );

    // ?format=prometheus switches to text exposition.
    let (status, head, body) = get(addr, "/v1/metrics?format=prometheus");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        header_value(&head, "content-type").as_deref(),
        Some("text/plain; version=0.0.4")
    );
    assert!(
        body.contains("# TYPE datalab_server_requests_metrics counter"),
        "{body}"
    );
    assert!(
        body.contains("# TYPE datalab_server_latency_query_us histogram"),
        "{body}"
    );
    assert!(
        body.contains("datalab_server_latency_query_us_bucket{le=\"+Inf\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("datalab_server_latency_query_us_count 1"),
        "{body}"
    );
    assert!(body.contains("datalab_slo_tenants_tracked 1"), "{body}");
    // The counting allocator is installed in this binary, so the
    // republished alloc counters are live.
    let alloc_line = body
        .lines()
        .find(|l| l.starts_with("datalab_alloc_bytes "))
        .unwrap_or_else(|| panic!("no alloc counter in {body}"));
    let bytes: u64 = alloc_line["datalab_alloc_bytes ".len()..]
        .trim()
        .parse()
        .expect("numeric alloc counter");
    assert!(bytes > 0);

    // An Accept header naming openmetrics also selects the text format.
    let (status, head, _) = send_raw(
        addr,
        b"GET /v1/metrics HTTP/1.1\r\nHost: t\r\nAccept: application/openmetrics-text\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(
        header_value(&head, "content-type").as_deref(),
        Some("text/plain; version=0.0.4")
    );

    // Unknown formats are a structured 400.
    let (status, _, body) = get(addr, "/v1/metrics?format=xml");
    assert_eq!(status, 400);
    assert_eq!(error_kind(&body), "bad_request");
    server.shutdown();
}

#[test]
fn profile_endpoint_serves_wall_cpu_and_alloc_weightings() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();

    // Nothing retained yet: an empty profile, still well-formed.
    let (status, head, body) = get(addr, "/v1/profile");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        header_value(&head, "content-type").as_deref(),
        Some("text/plain")
    );
    assert!(body.is_empty(), "{body}");

    register_sales(addr, "acme");
    let (status, v) = run_query(addr, "acme", CHART_QUESTION);
    assert_eq!(status, 200, "{v}");

    // The first completed query is always retained (sampled + slowest),
    // so the wall profile now folds its span tree: every stack starts at
    // the query root and weights are positive integers.
    let (status, _, wall) = get(addr, "/v1/profile?weight=wall");
    assert_eq!(status, 200);
    assert!(!wall.is_empty(), "empty wall profile");
    for line in wall.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack + weight");
        assert!(stack.starts_with("query"), "{line}");
        assert!(weight.parse::<u64>().expect("numeric weight") > 0, "{line}");
    }

    // Alloc weighting is live because this binary installs the counting
    // allocator; the default (no param) matches explicit wall.
    let (status, _, alloc) = get(addr, "/v1/profile?weight=alloc");
    assert_eq!(status, 200);
    assert!(!alloc.is_empty(), "empty alloc profile");
    let (_, _, default_weight) = get(addr, "/v1/profile");
    assert_eq!(default_weight, wall);

    // CPU weighting always answers 200; the body is non-empty exactly
    // where a thread CPU clock exists (Linux/macOS — including CI).
    let (status, _, _cpu) = get(addr, "/v1/profile?weight=cpu");
    assert_eq!(status, 200);

    // Unknown weights are a structured 400.
    let (status, _, body) = get(addr, "/v1/profile?weight=rss");
    assert_eq!(status, 400);
    assert_eq!(error_kind(&body), "bad_request");
    server.shutdown();
}

#[test]
fn slo_gauge_cardinality_is_capped_and_stale_tenants_evicted() {
    let server = boot(ServerConfig {
        slo_max_tenants: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    register_sales(addr, "alpha");
    let (status, v) = run_query(addr, "alpha", CHART_QUESTION);
    assert_eq!(status, 200, "{v}");
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["gauges"]["slo.availability_burn_fast_pm.alpha"].is_i64()
            || m["gauges"]["slo.availability_burn_fast_pm.alpha"].is_u64(),
        "{metrics}"
    );
    assert_eq!(m["gauges"]["slo.tenants_tracked"], 1);

    // A busier tenant takes the single export slot; alpha's gauges are
    // evicted rather than left stale, but alpha still appears in full
    // on /v1/health and in the uncapped tracked count.
    register_sales(addr, "beta");
    for _ in 0..2 {
        let (status, v) = run_query(addr, "beta", CHART_QUESTION);
        assert_eq!(status, 200, "{v}");
    }
    let (_, _, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["gauges"]["slo.availability_burn_fast_pm.beta"].is_number(),
        "{metrics}"
    );
    assert!(
        m["gauges"]["slo.availability_burn_fast_pm.alpha"].is_null(),
        "alpha gauges survived eviction: {metrics}"
    );
    assert!(
        m["gauges"]["slo.budget_exhausted.alpha"].is_null(),
        "{metrics}"
    );
    assert_eq!(m["gauges"]["slo.tenants_tracked"], 2);
    let (_, _, health) = get(addr, "/v1/health");
    let h = json(&health);
    assert!(h["slo"]["alpha"].is_object(), "{health}");
    assert!(h["slo"]["beta"].is_object(), "{health}");

    // Per-tenant breaker gauges are unaffected by the SLO cap.
    assert!(
        m["gauges"]["llm.breaker.state.alpha"].is_number(),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let server = boot(ServerConfig::default());
    let addr = server.addr();
    let (status, _, _) = get(addr, "/v1/health");
    assert_eq!(status, 200);

    server.shutdown();

    // The listener is gone: either the connect is refused outright or
    // the socket yields no response.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let _ = stream.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            assert!(
                stream.read_to_string(&mut buf).is_err() || buf.is_empty(),
                "served after shutdown: {buf}"
            );
        }
    }
}

#[test]
fn server_handle_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Server>();
    assert_send::<ServerConfig>();
}
