//! End-to-end durability tests over real sockets: sessions survive a
//! full server reboot, recovery replays to the exact state an
//! uninterrupted run would have reached, `GET /v1/tables` serves from
//! durable state, and eviction flushes instead of losing data.

use datalab_server::{FsyncPolicy, Server, ServerConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const SALES_CSV: &str = "region,amount\neast,10\nwest,20\neast,5\n";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "datalab-server-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(data_dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(data_dir.to_path_buf()),
        // Synchronous fsync keeps the tests deterministic: every
        // acknowledged write is on disk the moment the response lands.
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    }
}

fn send_raw(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("write");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send_raw(addr, raw.as_bytes())
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn register(addr: SocketAddr, tenant: &str, name: &str, csv: &str) {
    let body = serde_json::json!({"tenant": tenant, "name": name, "csv": csv});
    let (status, response) = post(addr, "/v1/tables", &body.to_string());
    assert_eq!(status, 200, "{response}");
}

fn query(addr: SocketAddr, tenant: &str, question: &str) -> Value {
    let body = serde_json::json!({"tenant": tenant, "question": question});
    let (status, response) = post(addr, "/v1/query", &body.to_string());
    assert_eq!(status, 200, "{response}");
    json(&response)
}

fn tables(addr: SocketAddr, tenant: &str) -> (u16, Value) {
    let (status, body) = get(addr, &format!("/v1/tables?tenant={tenant}"));
    (status, json(&body))
}

/// The reboot-stable subset of a query response: everything except the
/// per-request trace ID and wall-clock duration.
fn stable(v: &Value) -> Value {
    serde_json::json!({
        "tenant": v["tenant"],
        "workload": v["workload"],
        "success": v["success"],
        "degraded": v["degraded"],
        "answer": v["answer"],
        "rewritten_query": v["rewritten_query"],
        "plan": v["plan"],
        "tokens": v["tokens"],
        "cells_appended": v["cells_appended"],
        "chart": v["chart"],
        "rows": v["rows"],
    })
}

const Q1: &str = "what is the total amount by region";
const Q2: &str = "which region has the highest amount";

/// Reboot equivalence: a server restarted on the same data directory
/// serves the tenant exactly as if it had never stopped — the table
/// listing matches, and the next query returns bit-identical stable
/// fields to an uninterrupted control run.
#[test]
fn reboot_recovers_sessions_and_replay_matches_uninterrupted_run() {
    let rebooted_dir = scratch("reboot");
    let control_dir = scratch("control");

    // Life 1: register a table, run a query, stop.
    let server = Server::start(durable_config(&rebooted_dir)).expect("boots");
    let addr = server.addr();
    register(addr, "acme", "sales", SALES_CSV);
    query(addr, "acme", Q1);
    let (status, listing_before) = tables(addr, "acme");
    assert_eq!(status, 200);
    server.shutdown();

    // Life 2: a cold boot on the same directory. The tenant is not
    // resident — the first touch recovers it from snapshot + WAL.
    let server = Server::start(durable_config(&rebooted_dir)).expect("reboots");
    let addr = server.addr();
    let (status, listing_after) = tables(addr, "acme");
    assert_eq!(status, 200, "{listing_after}");
    assert_eq!(listing_after, listing_before);
    let rebooted = query(addr, "acme", Q2);
    let (_, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["counters"]["store.recoveries"].as_u64() >= Some(1),
        "{metrics}"
    );
    assert!(
        m["histograms"]["server.recovery.latency_us"].is_object(),
        "{metrics}"
    );
    server.shutdown();

    // Control: the same traffic in a single uninterrupted life.
    let server = Server::start(durable_config(&control_dir)).expect("control boots");
    let addr = server.addr();
    register(addr, "acme", "sales", SALES_CSV);
    query(addr, "acme", Q1);
    let control = query(addr, "acme", Q2);
    server.shutdown();

    assert_eq!(
        stable(&rebooted),
        stable(&control),
        "replayed session diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&rebooted_dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}

/// `GET /v1/tables` reports per-tenant tables with row/column counts,
/// refuses unknown tenants (no session is materialised for a probe),
/// and validates its input.
#[test]
fn tables_listing_reports_counts_and_rejects_unknown_tenants() {
    let dir = scratch("tables");
    let server = Server::start(durable_config(&dir)).expect("boots");
    let addr = server.addr();

    register(addr, "acme", "sales", SALES_CSV);
    register(addr, "acme", "costs", "item,cost\nrent,100\n");
    let (status, listing) = tables(addr, "acme");
    assert_eq!(status, 200);
    assert_eq!(listing["tenant"], "acme");
    assert_eq!(listing["count"], 2);
    let names: Vec<&str> = listing["tables"]
        .as_array()
        .expect("tables array")
        .iter()
        .map(|t| t["name"].as_str().unwrap())
        .collect();
    assert!(
        names.contains(&"sales") && names.contains(&"costs"),
        "{listing}"
    );
    for table in listing["tables"].as_array().unwrap() {
        assert!(table["rows"].as_u64() >= Some(1), "{listing}");
        assert!(table["columns"].as_u64() >= Some(2), "{listing}");
    }

    // Unknown tenants 404 without creating a session.
    let (status, body) = tables(addr, "nobody");
    assert_eq!(status, 404, "{body}");
    // Missing tenant parameter is a client error.
    let (status, _) = get(addr, "/v1/tables");
    assert_eq!(status, 400);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Eviction with a durable store is lossless: the victim's WAL is
/// flushed on the way out, the eviction is visible in telemetry, and
/// the next touch rebuilds the session with its tables intact.
#[test]
fn eviction_flushes_durably_and_the_next_touch_recovers() {
    let dir = scratch("evict");
    let server = Server::start(ServerConfig {
        session_capacity: 1,
        session_shards: 1,
        // Interval mode: eviction itself must guarantee the flush.
        fsync: FsyncPolicy::Interval(Duration::from_secs(3600)),
        ..durable_config(&dir)
    })
    .expect("boots");
    let addr = server.addr();

    register(addr, "first", "sales", SALES_CSV);
    // Second tenant evicts the first from the capacity-1 store.
    register(addr, "second", "sales", SALES_CSV);
    let (_, metrics) = get(addr, "/v1/metrics");
    let m = json(&metrics);
    assert!(
        m["counters"]["server.sessions.evicted"].as_u64() >= Some(1),
        "{metrics}"
    );

    // The evicted tenant's state comes back from disk on the next touch.
    let (status, listing) = tables(addr, "first");
    assert_eq!(status, 200, "{listing}");
    assert_eq!(listing["count"], 1, "{listing}");
    let answer = query(addr, "first", Q1);
    assert_eq!(answer["success"], Value::Bool(true), "{answer}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
