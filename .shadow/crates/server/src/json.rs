//! A minimal JSON value type with a panic-free recursive-descent parser
//! and a serialiser.
//!
//! The serving layer is zero-external-dependency by design (like
//! `datalab-telemetry`), so request bodies are parsed here rather than
//! with `serde_json`. The parser is hardened for untrusted input: depth
//! is bounded, every slice access is checked, and malformed bytes always
//! surface as a [`JsonError`] — never a panic in a worker thread.

use datalab_telemetry::json_escape;
use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Request bodies are
/// flat objects; anything deeper is hostile or broken input.
pub const MAX_DEPTH: usize = 64;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept as-is; lookup
    /// returns the first).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document, rejecting trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then `as_str`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Serialises the value back to compact JSON.
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values render without a trailing `.0` so
                    // counters round-trip as integers.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                } else {
                    "null".to_string()
                }
            }
            Json::Str(s) => format!("\"{}\"", json_escape(s)),
            Json::Arr(items) => {
                let body: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", body.join(","))
            }
            Json::Obj(fields) => {
                let body: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.render()))
                    .collect();
                format!("{{{}}}", body.join(","))
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        let end = self.pos + literal.len();
        if self.bytes.get(self.pos..end) == Some(literal.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{literal}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    // The input is valid UTF-8 and we only split at ASCII
                    // delimiters, but stay defensive: surface rather than
                    // trust.
                    return String::from_utf8(out).map_err(|_| self.err("invalid UTF-8 in string"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = self.escape()?;
                    let mut buf = [0u8; 4];
                    out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..=0xDBFF).contains(&hi) {
                    // Surrogate pair: the low half must follow immediately.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        if self.peek() != Some(b'u') {
                            return Err(self.err("expected low surrogate"));
                        }
                        self.pos += 1;
                        let lo = self.hex4()?;
                        if !(0xDC00..=0xDFFF).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..=0xDFFF).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| JsonError {
            at: start,
            message: format!("invalid number `{text}`"),
        })?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(JsonError {
                at: start,
                message: "number out of range".to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_bodies() {
        let body = r#"{"tenant":"acme","workload":"nl2sql","question":"total by region?"}"#;
        let v = Json::parse(body).unwrap();
        assert_eq!(v.str_field("tenant"), Some("acme"));
        assert_eq!(v.str_field("workload"), Some("nl2sql"));
        assert_eq!(v.str_field("question"), Some("total by region?"));
        assert_eq!(v.str_field("missing"), None);
    }

    #[test]
    fn parses_nested_values_and_numbers() {
        let v = Json::parse(r#"{"a":[1,2.5,-3e2,true,false,null],"b":{"c":"d"}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[5], Json::Null);
        assert_eq!(v.get("b").unwrap().str_field("c"), Some("d"));
    }

    #[test]
    fn unescapes_strings_including_surrogate_pairs() {
        let v = Json::parse(r#""line\nquote\" slash\/ \u0041 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\" slash/ A \u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "truex",
            "1.2.3",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "{\"a\":1} trailing",
            "\u{1}",
            "--5",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("deep"), "{e}");
        // A document inside the limit parses.
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn render_round_trips() {
        let v = Json::Obj(vec![
            ("answer".into(), Json::Str("total: \"42\"\n".into())),
            ("success".into(), Json::Bool(true)),
            ("tokens".into(), Json::Num(1234.0)),
            ("ratio".into(), Json::Num(0.5)),
            (
                "plan".into(),
                Json::Arr(vec![Json::Str("sql_agent".into()), Json::Null]),
            ),
        ]);
        let text = v.render();
        assert!(text.contains("\"tokens\":1234"), "{text}");
        assert!(text.contains("\"ratio\":0.5"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn duplicate_keys_resolve_to_the_first() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
    }
}
