//! The `datalab-server` binary: boots the multi-tenant HTTP serving
//! layer and runs until killed.
//!
//! ```text
//! cargo run -p datalab-server -- [--addr HOST:PORT] [--workers N]
//!     [--queue N] [--per-tenant N] [--sessions N] [--shards N]
//!     [--deadline-ms N] [--read-timeout-ms N] [--trace-seed N]
//!     [--slo-max-tenants N] [--data-dir PATH]
//!     [--fsync always|interval|interval:MS|never] [--snapshot-every N]
//! ```
//!
//! `--data-dir` turns on durable tenant state: every table registration
//! and query is appended to a per-tenant write-ahead log and folded into
//! periodic snapshots, so sessions survive eviction and process crashes.
//! `--fsync` picks the durability/latency tradeoff (default `interval`:
//! a background flusher syncs dirty logs every 100ms, so a hard crash
//! loses at most that window of acknowledged writes — torn frames are
//! detected and dropped on recovery regardless).
//!
//! Defaults match [`ServerConfig::default`] except the address, which
//! pins to `127.0.0.1:8437` so `curl` examples work out of the box.

use datalab_server::{FsyncPolicy, Server, ServerConfig};
use datalab_telemetry::CountingAlloc;
use std::process::ExitCode;

/// Count every allocation the serving process makes, so spans carry
/// alloc deltas and `/v1/metrics` exports live `alloc.*` counters. The
/// wrapper is a handful of relaxed atomic adds over the system
/// allocator — cheap enough to leave on in production builds.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8437".to_string(),
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        let result = match arg.as_str() {
            "--addr" => take("--addr").map(|v| config.addr = v),
            "--workers" => take("--workers").and_then(|v| {
                v.parse()
                    .map(|n| config.workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--queue" => take("--queue").and_then(|v| {
                v.parse()
                    .map(|n| config.queue_capacity = n)
                    .map_err(|e| format!("--queue: {e}"))
            }),
            "--per-tenant" => take("--per-tenant").and_then(|v| {
                v.parse()
                    .map(|n| config.per_tenant_inflight = n)
                    .map_err(|e| format!("--per-tenant: {e}"))
            }),
            "--sessions" => take("--sessions").and_then(|v| {
                v.parse()
                    .map(|n| config.session_capacity = n)
                    .map_err(|e| format!("--sessions: {e}"))
            }),
            "--shards" => take("--shards").and_then(|v| {
                v.parse()
                    .map(|n| config.session_shards = n)
                    .map_err(|e| format!("--shards: {e}"))
            }),
            "--deadline-ms" => take("--deadline-ms").and_then(|v| {
                v.parse()
                    .map(|n| config.deadline_ms = n)
                    .map_err(|e| format!("--deadline-ms: {e}"))
            }),
            "--read-timeout-ms" => take("--read-timeout-ms").and_then(|v| {
                v.parse()
                    .map(|n| config.read_timeout_ms = n)
                    .map_err(|e| format!("--read-timeout-ms: {e}"))
            }),
            "--trace-seed" => take("--trace-seed").and_then(|v| {
                v.parse()
                    .map(|n| config.trace_seed = n)
                    .map_err(|e| format!("--trace-seed: {e}"))
            }),
            "--slo-max-tenants" => take("--slo-max-tenants").and_then(|v| {
                v.parse()
                    .map(|n| config.slo_max_tenants = n)
                    .map_err(|e| format!("--slo-max-tenants: {e}"))
            }),
            "--data-dir" => take("--data-dir").map(|v| config.data_dir = Some(v.into())),
            "--fsync" => take("--fsync").and_then(|v| {
                FsyncPolicy::parse(&v)
                    .map(|policy| config.fsync = policy)
                    .ok_or_else(|| {
                        format!("--fsync: `{v}` (want always, interval, interval:MS, or never)")
                    })
            }),
            "--snapshot-every" => take("--snapshot-every").and_then(|v| {
                v.parse()
                    .map(|n| config.snapshot_every = n)
                    .map_err(|e| format!("--snapshot-every: {e}"))
            }),
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("datalab-server: {e}");
            eprintln!(
                "usage: datalab-server [--addr HOST:PORT] [--workers N] [--queue N] \
                 [--per-tenant N] [--sessions N] [--shards N] [--deadline-ms N] \
                 [--read-timeout-ms N] [--trace-seed N] [--slo-max-tenants N] \
                 [--data-dir PATH] [--fsync always|interval|interval:MS|never] \
                 [--snapshot-every N]"
            );
            return ExitCode::from(2);
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("datalab-server: cannot start: {e}");
            return ExitCode::from(1);
        }
    };
    println!("datalab-server listening on http://{}", server.addr());

    // Serve until the process is killed; the threads own all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
