//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Just enough of the protocol for a JSON service: one request per
//! connection (`Connection: close`), bounded header and body sizes, and
//! explicit errors for everything malformed. No chunked encoding, no
//! keep-alive, no TLS — the serving layer fronts trusted load balancers
//! in the deployments the paper describes, and the load generator speaks
//! the same dialect.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Byte cap for [`linger_close`]'s drain of unread request data.
const MAX_LINGER_BYTES: usize = 4 * 1024 * 1024;

/// Lingering close (RFC 7230 §6.6): when a response is written before
/// the request body was consumed (413, framing 400s), closing the
/// socket outright makes the kernel RST the connection and discard the
/// in-flight response. Send FIN, then read and discard what the client
/// is still sending — bounded in bytes and time — so the response
/// survives to the peer.
pub fn linger_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 8 * 1024];
    let mut drained = 0usize;
    while drained < MAX_LINGER_BYTES {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Request target, e.g. `/v1/query` or `/v1/traces?limit=10`
    /// (query strings are kept verbatim; the router matches on the
    /// path and handlers re-parse the parameters they accept).
    pub target: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body decoded as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire were not a parseable HTTP request.
    BadRequest(String),
    /// The declared body length exceeded the configured maximum.
    TooLarge(usize),
    /// The socket failed (including read timeouts on idle connections).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::TooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad(why: impl Into<String>) -> HttpError {
    HttpError::BadRequest(why.into())
}

/// Reads one HTTP/1.1 request from the stream.
///
/// The head is read byte-wise until `\r\n\r\n` (bounded by
/// [`MAX_HEAD_BYTES`]); the body is read to exactly `Content-Length`
/// bytes, bounded by `max_body`. Any framing violation yields
/// [`HttpError::BadRequest`] rather than a panic.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let head = read_head(stream)?;
    let head_text =
        std::str::from_utf8(&head).map_err(|_| bad("request head is not valid UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| bad("missing method"))?;
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or_else(|| bad("missing target"))?;
    let version = parts.next().ok_or_else(|| bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported version `{version}`")));
    }
    if parts.next().is_some() {
        return Err(bad("malformed request line"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(bad("malformed header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let content_length = match headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| bad("unparseable content-length"))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(content_length));
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// Reads up to and including the blank line terminating the head,
/// returning the head bytes without the final `\r\n\r\n`.
fn read_head(stream: &mut TcpStream) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(bad("connection closed before request head completed"));
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
    }
}

/// One HTTP response, `Connection: close`. JSON-bodied unless built via
/// [`Response::text`] (Prometheus exposition, folded profiles).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra headers beyond the standard content-type / length / close.
    pub headers: Vec<(String, String)>,
    /// Response body text.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status and body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with an explicit content type (e.g.
    /// `text/plain; version=0.0.4` for OpenMetrics exposition).
    pub fn text(status: u16, content_type: &str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: content_type.to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header (builder-style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialises and writes the full response to the stream.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        stream.write_all(out.as_bytes())?;
        stream.flush()
    }
}

/// The reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Runs `read_request` against raw bytes pushed through a real socket
    /// pair, mirroring how the server consumes connections.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Drop closes the write side so short bodies read as EOF.
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, max_body);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse_raw(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.body_utf8(), Some("abcd"));
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_raw(b"GET /v1/health HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/v1/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn garbage_bytes_are_a_bad_request_not_a_panic() {
        for raw in [
            &b"\x00\x01\x02\x03\r\n\r\n"[..],
            b"NOT-HTTP\r\n\r\n",
            b"GET\r\n\r\n",
            b"GET /path SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nBroken Header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"",
        ] {
            assert!(parse_raw(raw, 1024).is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn oversized_bodies_are_rejected_by_declared_length() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        match parse_raw(raw, 100) {
            Err(HttpError::TooLarge(999)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn response_writes_status_line_headers_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(429, "{\"error\":{\"kind\":\"overloaded\"}}")
                .with_header("Retry-After", "1")
                .write_to(&mut stream)
                .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":{\"kind\":\"overloaded\"}}"));
    }

    #[test]
    fn text_responses_carry_their_content_type() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::text(200, "text/plain; version=0.0.4", "datalab_up 1\n")
                .write_to(&mut stream)
                .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: text/plain; version=0.0.4\r\n"));
        assert!(text.ends_with("datalab_up 1\n"));
    }
}
