//! Admission control: bounded job queues and per-tenant inflight gates.
//!
//! The serving layer sheds load at the edge instead of queueing without
//! bound. Two mechanisms compose:
//!
//! * a global [`JobQueue`] between the acceptor and the worker pool —
//!   when it is full, new connections are answered `429` immediately;
//! * a [`TenantGate`] capping concurrent queries per tenant, so one
//!   chatty tenant cannot monopolise the worker pool.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// A capacity-bounded MPMC queue with drain-on-close semantics.
///
/// `try_push` never blocks (callers shed load on `Err`); `pop` blocks
/// until a job arrives or the queue is closed *and* empty — workers keep
/// draining queued jobs during shutdown before exiting.
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a job, returning it back on a full or closed queue.
    pub fn try_push(&self, job: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.closed || state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next job, blocking while the queue is open and empty.
    /// Returns `None` only once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: further pushes fail, and blocked `pop`s return
    /// once the backlog drains.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Number of jobs currently queued.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .jobs
            .len()
    }
}

/// Caps concurrent in-flight queries per tenant.
pub struct TenantGate {
    inflight: Mutex<HashMap<String, usize>>,
    per_tenant: usize,
}

impl TenantGate {
    /// Creates a gate admitting at most `per_tenant` concurrent queries
    /// for any single tenant.
    pub fn new(per_tenant: usize) -> Arc<TenantGate> {
        Arc::new(TenantGate {
            inflight: Mutex::new(HashMap::new()),
            per_tenant,
        })
    }

    /// Tries to claim an inflight slot for `tenant`. `None` means the
    /// tenant is at its cap and the request should be shed with `429`.
    pub fn try_acquire(self: &Arc<Self>, tenant: &str) -> Option<TenantPermit> {
        let mut inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        let count = inflight.entry(tenant.to_string()).or_insert(0);
        if *count >= self.per_tenant {
            return None;
        }
        *count += 1;
        Some(TenantPermit {
            gate: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    /// Current in-flight count for a tenant (test/introspection hook).
    pub fn inflight(&self, tenant: &str) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }
}

/// An RAII slot in the tenant gate; dropping it releases the slot.
pub struct TenantPermit {
    gate: Arc<TenantGate>,
    tenant: String,
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        let mut inflight = self.gate.inflight.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(count) = inflight.get_mut(&self.tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inflight.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn queue_sheds_when_full_and_recovers() {
        let q = JobQueue::new(2);
        assert!(q.try_push(1u32).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_drains_then_releases_blocked_pops() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(10u32).unwrap();
        q.try_push(11).unwrap();
        q.close();
        // Pushes fail after close, but the backlog still drains in order.
        assert_eq!(q.try_push(12), Err(12));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);

        // A pop blocked on an empty open queue wakes on close.
        let q2: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            thread::spawn(move || q2.pop())
        };
        thread::sleep(Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn pop_blocks_until_a_job_arrives() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(7));
    }

    #[test]
    fn tenant_gate_caps_each_tenant_independently() {
        let gate = TenantGate::new(2);
        let a1 = gate.try_acquire("acme").unwrap();
        let _a2 = gate.try_acquire("acme").unwrap();
        assert!(gate.try_acquire("acme").is_none(), "third slot admitted");
        // Another tenant is unaffected.
        let _b1 = gate.try_acquire("globex").unwrap();
        assert_eq!(gate.inflight("acme"), 2);
        assert_eq!(gate.inflight("globex"), 1);
        // Releasing a slot re-admits.
        drop(a1);
        assert_eq!(gate.inflight("acme"), 1);
        let _a3 = gate.try_acquire("acme").unwrap();
    }

    #[test]
    fn tenant_gate_forgets_idle_tenants() {
        let gate = TenantGate::new(4);
        let permit = gate.try_acquire("acme").unwrap();
        drop(permit);
        assert_eq!(gate.inflight("acme"), 0);
        assert!(
            gate.inflight.lock().unwrap().is_empty(),
            "idle tenant entry retained"
        );
    }

    #[test]
    fn gate_is_consistent_under_contention() {
        let gate = TenantGate::new(3);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let gate = Arc::clone(&gate);
            handles.push(thread::spawn(move || {
                let mut admitted = 0u32;
                for _ in 0..500 {
                    if let Some(permit) = gate.try_acquire("shared") {
                        assert!(gate.inflight("shared") <= 3);
                        admitted += 1;
                        drop(permit);
                    }
                }
                admitted
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(gate.inflight("shared"), 0);
    }
}
