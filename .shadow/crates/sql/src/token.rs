//! SQL lexer.

use crate::error::{Result, SqlError};

/// A lexical token. Keywords are returned as [`Token::Ident`] and
/// recognised case-insensitively by the parser, so identifiers that happen
/// to collide with keywords can still be quoted.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier (may be recognised as a keyword by the parser).
    Ident(String),
    /// Quoted identifier (`"x"` or `` `x` ``) — never a keyword.
    QuotedIdent(String),
    /// Numeric literal (raw text, parsed later).
    Number(String),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// Operator or punctuation.
    Punct(&'static str),
}

impl Token {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// True when this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(q) if *q == p)
    }
}

const PUNCTS: &[&str] = &[
    "<=", ">=", "<>", "!=", "||", "(", ")", ",", ".", "*", "=", "<", ">", "+", "-", "/", "%", ";",
];

/// Tokenizes SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // String literal.
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(&b) => {
                        s.push(b as char);
                        i += 1;
                    }
                    None => {
                        return Err(SqlError::Lex {
                            pos: i,
                            message: "unterminated string literal".into(),
                        })
                    }
                }
            }
            tokens.push(Token::Str(s));
            continue;
        }
        // Quoted identifier.
        if c == '"' || c == '`' {
            let quote = bytes[i];
            let mut s = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    Some(&b) if b == quote => {
                        i += 1;
                        break;
                    }
                    Some(&b) => {
                        s.push(b as char);
                        i += 1;
                    }
                    None => {
                        return Err(SqlError::Lex {
                            pos: i,
                            message: "unterminated quoted identifier".into(),
                        })
                    }
                }
            }
            tokens.push(Token::QuotedIdent(s));
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'.' {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] | 32) == b'e' {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            tokens.push(Token::Number(sql[start..i].to_string()));
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token::Ident(sql[start..i].to_string()));
            continue;
        }
        // Punctuation (longest match first).
        let rest = &sql[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                tokens.push(Token::Punct(p));
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(SqlError::Lex {
                pos: i,
                message: format!("unexpected character '{c}'"),
            });
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basics() {
        let toks = tokenize("SELECT a, COUNT(*) FROM t WHERE x >= 1.5 -- trailing").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.iter().any(|t| t.is_punct(">=")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Number(n) if n == "1.5")));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"weird col\" `other`").unwrap();
        assert_eq!(toks[0], Token::QuotedIdent("weird col".into()));
        assert_eq!(toks[1], Token::QuotedIdent("other".into()));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e3 2.5E-2").unwrap();
        assert_eq!(toks[0], Token::Number("1e3".into()));
        assert_eq!(toks[1], Token::Number("2.5E-2".into()));
    }
}
