//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::token::{tokenize, Token};
use datalab_frame::{AggFunc, Value};

/// Parses a single SELECT statement (a trailing `;` is allowed).
pub fn parse_select(sql: &str) -> Result<Select> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let sel = p.select()?;
    if p.peek_punct(";") {
        p.pos += 1;
    }
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing token: {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(sel)
}

/// Quick syntax check used by the notebook's DAG maintenance: returns true
/// when the text parses as a SELECT.
pub fn is_valid_select(sql: &str) -> bool {
    parse_select(sql).is_ok()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// True when `word` is a SQL keyword that must be quoted to be used as an
/// identifier.
pub fn is_reserved_word(word: &str) -> bool {
    RESERVED.contains(&word.to_ascii_lowercase().as_str())
}

const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "having", "order", "limit", "join", "inner", "left",
    "right", "outer", "on", "and", "or", "not", "as", "by", "asc", "desc", "distinct", "case",
    "when", "then", "else", "end", "in", "between", "like", "is", "null", "true", "false",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn peek_punct(&self, p: &str) -> bool {
        self.peek().map(|t| t.is_punct(p)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected '{p}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// An identifier usable as a bare alias: quoted, or not a keyword.
    fn non_reserved_ident(&mut self) -> Option<String> {
        match self.peek() {
            Some(Token::QuotedIdent(s)) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            Some(Token::Ident(s)) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat_punct(",") {
            items.push(self.select_item()?);
        }
        let mut sel = Select {
            distinct,
            items,
            ..Default::default()
        };
        if self.eat_kw("from") {
            sel.from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_kw("join") || self.eat_kw("inner") {
                    // INNER may be followed by JOIN.
                    self.eat_kw("join");
                    JoinType::Inner
                } else if self.eat_kw("left") {
                    self.eat_kw("outer");
                    self.expect_kw("join")?;
                    JoinType::Left
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                sel.joins.push(Join { kind, table, on });
            }
        }
        if self.eat_kw("where") {
            sel.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            sel.group_by.push(self.expr()?);
            while self.eat_punct(",") {
                sel.group_by.push(self.expr()?);
            }
        }
        if self.eat_kw("having") {
            sel.having = Some(self.expr()?);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                sel.order_by.push(OrderKey { expr, ascending });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            match self.peek() {
                Some(Token::Number(n)) => {
                    let v = n
                        .parse::<usize>()
                        .map_err(|_| SqlError::Parse(format!("bad LIMIT value {n}")))?;
                    self.pos += 1;
                    sel.limit = Some(v);
                }
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        }
        Ok(sel)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_punct("*") {
            return Ok(SelectItem::Wildcard);
        }
        // table.* ?
        if let Some(Token::Ident(name)) = self.peek() {
            let name = name.clone();
            if self
                .tokens
                .get(self.pos + 1)
                .map(|t| t.is_punct("."))
                .unwrap_or(false)
                && self
                    .tokens
                    .get(self.pos + 2)
                    .map(|t| t.is_punct("*"))
                    .unwrap_or(false)
            {
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            self.non_reserved_ident()
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_punct("(") {
            let query = self.select()?;
            self.expect_punct(")")?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            self.non_reserved_ident()
        };
        Ok(TableRef::Named { name, alias })
    }

    // Expression grammar, lowest precedence first.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates: IS NULL, [NOT] IN/BETWEEN/LIKE, comparisons.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("not");
        if self.eat_kw("in") {
            self.expect_punct("(")?;
            let mut list = vec![self.expr()?];
            while self.eat_punct(",") {
                list.push(self.expr()?);
            }
            self.expect_punct(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = match self.peek() {
                Some(Token::Str(s)) => {
                    let s = s.clone();
                    self.pos += 1;
                    s
                }
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected LIKE pattern, found {other:?}"
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse("expected IN/BETWEEN/LIKE after NOT".into()));
        }
        let op = if self.eat_punct("=") {
            Some(BinOp::Eq)
        } else if self.eat_punct("<>") || self.eat_punct("!=") {
            Some(BinOp::NotEq)
        } else if self.eat_punct("<=") {
            Some(BinOp::LtEq)
        } else if self.eat_punct(">=") {
            Some(BinOp::GtEq)
        } else if self.eat_punct("<") {
            Some(BinOp::Lt)
        } else if self.eat_punct(">") {
            Some(BinOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.additive()?;
                Ok(Expr::bin(op, left, right))
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else if self.eat_punct("||") {
                BinOp::Concat
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_punct("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                if let Ok(i) = n.parse::<i64>() {
                    Ok(Expr::Literal(Value::Int(i)))
                } else {
                    let f = n
                        .parse::<f64>()
                        .map_err(|_| SqlError::Parse(format!("bad number literal {n}")))?;
                    Ok(Expr::Literal(Value::Float(f)))
                }
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                // Date-like strings become dates so comparisons work.
                if let Ok(d) = datalab_frame::Date::parse(&s) {
                    Ok(Expr::Literal(Value::Date(d)))
                } else {
                    Ok(Expr::Literal(Value::Str(s)))
                }
            }
            Some(Token::Punct("(")) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            Some(Token::QuotedIdent(name)) => {
                self.pos += 1;
                if self.eat_punct(".") {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            Some(Token::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Null));
                    }
                    "true" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    "false" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                    "case" => {
                        self.pos += 1;
                        return self.case_expr();
                    }
                    _ => {}
                }
                // Function call?
                if self
                    .tokens
                    .get(self.pos + 1)
                    .map(|t| t.is_punct("("))
                    .unwrap_or(false)
                {
                    self.pos += 2; // name + '('
                    return self.call(&lower);
                }
                // Column reference, possibly qualified. Reserved words
                // cannot start an expression (quote them to use as names).
                if RESERVED.contains(&lower.as_str()) {
                    return Err(SqlError::Parse(format!(
                        "unexpected keyword '{name}' in expression"
                    )));
                }
                self.pos += 1;
                if self.eat_punct(".") {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    /// Parses the argument list of `name(`, already positioned past `(`.
    fn call(&mut self, name: &str) -> Result<Expr> {
        if let Some(func) = AggFunc::parse(name) {
            // COUNT(*) special case.
            if self.eat_punct("*") {
                self.expect_punct(")")?;
                return Ok(Expr::Agg {
                    func,
                    arg: None,
                    distinct: false,
                });
            }
            let distinct = self.eat_kw("distinct");
            let arg = self.expr()?;
            self.expect_punct(")")?;
            let func = if distinct && func == AggFunc::Count {
                AggFunc::CountDistinct
            } else {
                func
            };
            return Ok(Expr::Agg {
                func,
                arg: Some(Box::new(arg)),
                distinct,
            });
        }
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            args.push(self.expr()?);
            while self.eat_punct(",") {
                args.push(self.expr()?);
            }
            self.expect_punct(")")?;
        }
        Ok(Expr::Func {
            name: name.to_string(),
            args,
        })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(SqlError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_expr = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_query() {
        let sql = "SELECT region, SUM(amount) AS total FROM sales s \
                   JOIN regions r ON s.region = r.name \
                   WHERE amount > 10 AND r.active = true \
                   GROUP BY region HAVING COUNT(*) >= 2 \
                   ORDER BY total DESC, region LIMIT 10";
        let sel = parse_select(sql).unwrap();
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.joins.len(), 1);
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert!(!sel.order_by[0].ascending);
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn parse_and_display_are_stable() {
        let sql = "SELECT a, COUNT(DISTINCT b) FROM t WHERE a BETWEEN 1 AND 5 OR b LIKE 'x%'";
        let sel = parse_select(sql).unwrap();
        let printed = sel.to_string();
        let reparsed = parse_select(&printed).unwrap();
        assert_eq!(sel, reparsed);
    }

    #[test]
    fn parses_derived_table() {
        let sql = "SELECT t.x FROM (SELECT a AS x FROM base) AS t WHERE t.x > 1";
        let sel = parse_select(sql).unwrap();
        assert!(matches!(sel.from, Some(TableRef::Derived { .. })));
    }

    #[test]
    fn parses_case_in_not_null() {
        let sql = "SELECT CASE WHEN x IS NOT NULL THEN 1 ELSE 0 END FROM t \
                   WHERE y NOT IN (1, 2) AND z IS NULL";
        let sel = parse_select(sql).unwrap();
        assert_eq!(sel.items.len(), 1);
    }

    #[test]
    fn bare_alias_not_confused_with_keywords() {
        let sel = parse_select("SELECT a total FROM t ORDER BY total").unwrap();
        match &sel.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_select("SELECT FROM").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage ,").is_err());
        assert!(!is_valid_select("not sql at all"));
    }

    #[test]
    fn date_literals_recognised() {
        let sel = parse_select("SELECT * FROM t WHERE d >= '2024-01-01'").unwrap();
        match sel.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::Literal(Value::Date(_))))
            }
            _ => panic!(),
        }
    }
}
