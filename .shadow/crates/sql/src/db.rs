//! The table catalog queries execute against.

use crate::error::{Result, SqlError};
use datalab_frame::DataFrame;
use std::collections::HashMap;
use std::sync::Arc;

/// A named collection of tables — the engine's stand-in for the backend
/// databases DataLab notebooks connect to.
///
/// Frames are stored behind [`Arc`], so cloning a database — or
/// registering the same frame with several sessions — shares column data
/// instead of deep-copying it.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Lower-cased table name → shared frame.
    tables: HashMap<String, Arc<DataFrame>>,
    /// Insertion order of the original (case-preserved) names.
    order: Vec<String>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers (or replaces) a table. Accepts an owned frame or an
    /// already-shared `Arc<DataFrame>` (no copy in either case).
    pub fn insert(&mut self, name: impl Into<String>, df: impl Into<Arc<DataFrame>>) {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        if self.tables.insert(key, df.into()).is_none() {
            self.order.push(name);
        }
    }

    /// Case-insensitive lookup.
    pub fn get(&self, name: &str) -> Result<&DataFrame> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|df| df.as_ref())
            .ok_or_else(|| SqlError::TableNotFound(name.to_string()))
    }

    /// Case-insensitive lookup returning the shared handle — the cheap
    /// way to hand one frame to another catalog or session.
    pub fn get_shared(&self, name: &str) -> Result<Arc<DataFrame>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::TableNotFound(name.to_string()))
    }

    /// True when the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Table names in registration order.
    pub fn table_names(&self) -> &[String] {
        &self.order
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// A compact `table(col type, ...)` rendering of every schema — the
    /// "brief data schema" baseline agents put in prompts (setting S1 of
    /// the paper's Table II).
    pub fn schema_text(&self) -> String {
        let mut s = String::new();
        for name in &self.order {
            if let Ok(df) = self.get(name) {
                s.push_str(name);
                s.push_str(&df.schema().to_string());
                s.push('\n');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::DataType;

    #[test]
    fn insert_get_case_insensitive() {
        let mut db = Database::new();
        let df = DataFrame::from_columns(vec![("x", DataType::Int, vec![1.into()])]).unwrap();
        db.insert("Sales", df);
        assert!(db.get("sales").is_ok());
        assert!(db.get("SALES").is_ok());
        assert!(db.get("missing").is_err());
        assert_eq!(db.table_names(), ["Sales"]);
        assert!(db.schema_text().contains("Sales(x int)"));
    }

    #[test]
    fn shared_frames_are_not_copied() {
        let mut db = Database::new();
        let df =
            Arc::new(DataFrame::from_columns(vec![("x", DataType::Int, vec![1.into()])]).unwrap());
        db.insert("t", Arc::clone(&df));
        // A clone of the database and a get_shared handle both point at
        // the same allocation as the original Arc.
        let clone = db.clone();
        let shared = clone.get_shared("T").unwrap();
        assert!(Arc::ptr_eq(&df, &shared));
        assert!(db.get_shared("missing").is_err());
        assert_eq!(db.get("t").unwrap().n_rows(), 1);
    }

    #[test]
    fn replace_keeps_single_entry() {
        let mut db = Database::new();
        let df = DataFrame::from_columns(vec![("x", DataType::Int, vec![1.into()])]).unwrap();
        db.insert("t", df.clone());
        db.insert("T", df);
        assert_eq!(db.len(), 1);
    }
}
