//! Error type for the SQL engine.

use std::fmt;

/// Errors produced while lexing, parsing, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer failure with position.
    Lex {
        /// Byte offset of the failure.
        pos: usize,
        /// What went wrong.
        message: String,
    },
    /// Parser failure.
    Parse(String),
    /// Unknown table.
    TableNotFound(String),
    /// Unknown or ambiguous column.
    ColumnNotFound(String),
    /// A runtime evaluation error (types, arity, ...).
    Eval(String),
    /// Propagated DataFrame error.
    Frame(datalab_frame::FrameError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::TableNotFound(t) => write!(f, "table not found: {t}"),
            SqlError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            SqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SqlError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<datalab_frame::FrameError> for SqlError {
    fn from(e: datalab_frame::FrameError) -> Self {
        SqlError::Frame(e)
    }
}

/// Convenience alias used throughout the SQL crate.
pub type Result<T> = std::result::Result<T, SqlError>;
