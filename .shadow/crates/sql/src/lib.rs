//! # datalab-sql
//!
//! A from-scratch SQL engine over [`datalab_frame`]: tokenizer, recursive
//! descent parser, AST with a pretty-printer, a row-at-a-time SELECT
//! executor, a [`Database`] catalog, and the execution-equivalence (EX)
//! comparison used by the NL2SQL benchmarks in the DataLab paper.
//!
//! Supported SQL: `SELECT [DISTINCT] items FROM t [AS a]
//! [[LEFT] JOIN u ON ...]* [WHERE ...] [GROUP BY ...] [HAVING ...]
//! [ORDER BY ... [DESC]] [LIMIT n]` with aggregates
//! (`COUNT/SUM/AVG/MIN/MAX`, `DISTINCT`), scalar functions, `CASE`,
//! `IN/BETWEEN/LIKE/IS NULL`, arithmetic, date literals and derived
//! tables.

#![warn(missing_docs)]

pub mod ast;
pub mod compare;
pub mod db;
pub mod error;
pub mod exec;
pub mod parser;
pub mod token;

pub use ast::{BinOp, Expr, Join, JoinType, OrderKey, Select, SelectItem, TableRef, UnOp};
pub use compare::ex_equal;
pub use db::Database;
pub use error::{Result, SqlError};
pub use exec::{execute, like_match, run_sql};
pub use parser::{is_reserved_word, is_valid_select, parse_select};
