//! SQL abstract syntax tree and pretty-printer.

use datalab_frame::{AggFunc, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||` string concatenation
    Concat,
}

impl BinOp {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// A SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally table-qualified.
    Column {
        /// Table or alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Aggregate call, e.g. `SUM(x)`, `COUNT(*)`, `COUNT(DISTINCT x)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Argument; `None` means `*`.
        arg: Option<Box<Expr>>,
        /// Whether DISTINCT was specified.
        distinct: bool,
    },
    /// Scalar function call, e.g. `ROUND(x, 2)`.
    Func {
        /// Function name (lower-cased).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `CASE WHEN .. THEN .. [ELSE ..] END` (searched form).
    Case {
        /// `(condition, result)` branches.
        branches: Vec<(Expr, Expr)>,
        /// ELSE branch.
        else_expr: Option<Box<Expr>>,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// NOT IN.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand for a binary expression.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// True when the expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_expr
                        .as_ref()
                        .map(|e| e.contains_aggregate())
                        .unwrap_or(false)
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
        }
    }

    /// Collects every column name referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column { name, .. } => out.push(name.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Unary { expr, .. } => expr.referenced_columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_columns(out);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.referenced_columns(out);
                    r.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.referenced_columns(out),
        }
    }
}

fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => f.write_str("NULL"),
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        Value::Date(d) => write!(f, "'{d}'"),
        other => f.write_str(&other.render()),
    }
}

/// Prints an identifier, quoting it when it would lex as a keyword.
fn fmt_ident(name: &str) -> std::borrow::Cow<'_, str> {
    if crate::parser::is_reserved_word(name) || name.contains(' ') {
        std::borrow::Cow::Owned(format!("\"{name}\""))
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column {
                table: Some(t),
                name,
            } => {
                write!(f, "{}.{}", fmt_ident(t), fmt_ident(name))
            }
            Expr::Column { table: None, name } => f.write_str(&fmt_ident(name)),
            Expr::Literal(v) => fmt_literal(v, f),
            Expr::Binary { op, left, right } => {
                let needs_parens = matches!(op, BinOp::And | BinOp::Or);
                if needs_parens {
                    write!(f, "({left} {} {right})", op.sql())
                } else {
                    write!(f, "{left} {} {right}", op.sql())
                }
            }
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "-{expr}"),
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => write!(f, "NOT ({expr})"),
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                let inner = match arg {
                    None => "*".to_string(),
                    Some(a) => a.to_string(),
                };
                if *distinct {
                    write!(f, "{}(DISTINCT {inner})", func.sql_name())
                } else {
                    write!(f, "{}({inner})", func.sql_name())
                }
            }
            Expr::Func { name, args } => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{}({})", name.to_uppercase(), parts.join(", "))
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let parts: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    parts.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}BETWEEN {low} AND {high}",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}LIKE '{}'",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

/// One projected item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// Projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// INNER JOIN.
    Inner,
    /// LEFT (outer) JOIN.
    Left,
}

/// A FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base table with optional alias.
    Named {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesised subquery with required alias.
    Derived {
        /// The inner query.
        query: Box<Select>,
        /// Alias naming the derived table.
        alias: String,
    },
}

impl TableRef {
    /// The name this reference binds in scope (alias if present).
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named {
                name,
                alias: Some(a),
            } => write!(f, "{name} AS {a}"),
            TableRef::Named { name, alias: None } => f.write_str(name),
            TableRef::Derived { query, alias } => write!(f, "({query}) AS {alias}"),
        }
    }
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join flavour.
    pub kind: JoinType,
    /// The joined table.
    pub table: TableRef,
    /// ON condition.
    pub on: Expr,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression (may be an output alias or 1-based ordinal).
    pub expr: Expr,
    /// Ascending?
    pub ascending: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM table (None for table-less SELECT, e.g. `SELECT 1`).
    pub from: Option<TableRef>,
    /// JOIN clauses, applied left to right.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        let items: Vec<String> = self.items.iter().map(|i| i.to_string()).collect();
        f.write_str(&items.join(", "))?;
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for j in &self.joins {
            let kw = match j.kind {
                JoinType::Inner => "JOIN",
                JoinType::Left => "LEFT JOIN",
            };
            write!(f, " {kw} {} ON {}", j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let keys: Vec<String> = self.group_by.iter().map(|e| e.to_string()).collect();
            write!(f, " GROUP BY {}", keys.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.ascending { "" } else { " DESC" }))
                .collect();
            write!(f, " ORDER BY {}", keys.join(", "))?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_shape() {
        let sel = Select {
            distinct: false,
            items: vec![
                SelectItem::Expr {
                    expr: Expr::col("region"),
                    alias: None,
                },
                SelectItem::Expr {
                    expr: Expr::Agg {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(Expr::col("amount"))),
                        distinct: false,
                    },
                    alias: Some("total".into()),
                },
            ],
            from: Some(TableRef::Named {
                name: "sales".into(),
                alias: None,
            }),
            group_by: vec![Expr::col("region")],
            order_by: vec![OrderKey {
                expr: Expr::col("total"),
                ascending: false,
            }],
            limit: Some(5),
            ..Default::default()
        };
        assert_eq!(
            sel.to_string(),
            "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC LIMIT 5"
        );
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let e = Expr::bin(
            BinOp::Gt,
            Expr::Agg {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            Expr::lit(3i64),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn string_literals_escape() {
        let e = Expr::lit("o'brien");
        assert_eq!(e.to_string(), "'o''brien'");
    }
}
