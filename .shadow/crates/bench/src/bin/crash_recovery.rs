//! Crash-recovery report: runs the deterministic serving corpus with
//! write-through durability, kills the run with a damaged WAL tail
//! (torn write, bit flip, or a clean stop), reboots a fresh store, and
//! gates on the recovered fleet being indistinguishable from the
//! pre-crash one. Writes a JSON report under `target/telemetry/` and
//! leaves each scenario's data directory (WAL + snapshots) in place as
//! an inspectable artifact.
//!
//! ```text
//! cargo run -p datalab-bench --bin crash_recovery -- [--seed N]
//!     [--tasks N] [--scenarios torn,bitflip,clean] [--snapshot-every N]
//!     [--data-dir PATH] [--out PATH]
//! ```
//!
//! Scenarios:
//!
//! - `torn` / `bitflip` run WAL-only (no snapshots), so recovery replays
//!   every record and the recovered fleet report must equal the
//!   pre-crash one under `FleetReport::comparable()` — the obsdiff-clean
//!   criterion.
//! - `clean` runs with a snapshot cadence (`--snapshot-every`, default
//!   4) to exercise the restore-snapshot-then-replay-tail path; the gate
//!   is per-tenant state equality plus an identical probe query.
//!
//! Gate violations exit 1; usage errors exit 2.

use datalab_bench::telemetry_dir;
use datalab_workloads::{
    render_crash_report, run_crash_recovery, CrashConfig, CrashInjection, CrashReport,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seed: u64,
    tasks_per_workload: usize,
    scenarios: Vec<CrashInjection>,
    snapshot_every: u64,
    data_dir: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_scenarios(text: &str) -> Result<Vec<CrashInjection>, String> {
    let scenarios: Result<Vec<CrashInjection>, String> = text
        .split(',')
        .map(|s| {
            let s = s.trim();
            CrashInjection::parse(s).ok_or_else(|| {
                format!("--scenarios: unknown scenario `{s}` (want torn, bitflip, or clean)")
            })
        })
        .collect();
    let scenarios = scenarios?;
    if scenarios.is_empty() {
        return Err("--scenarios needs at least one scenario".to_string());
    }
    Ok(scenarios)
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        seed: 7,
        tasks_per_workload: 2,
        scenarios: vec![
            CrashInjection::TornTail,
            CrashInjection::BitFlip,
            CrashInjection::None,
        ],
        snapshot_every: 4,
        data_dir: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        match arg.as_str() {
            "--seed" => {
                parsed.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--tasks" => {
                parsed.tasks_per_workload = take("--tasks")?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?
            }
            "--scenarios" => parsed.scenarios = parse_scenarios(&take("--scenarios")?)?,
            "--snapshot-every" => {
                parsed.snapshot_every = take("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?
            }
            "--data-dir" => parsed.data_dir = Some(PathBuf::from(take("--data-dir")?)),
            "--out" => parsed.out = Some(PathBuf::from(take("--out")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn run() -> Result<u8, String> {
    let args = parse_args()?;
    let base = match &args.data_dir {
        Some(p) => p.clone(),
        None => telemetry_dir()
            .map_err(|e| format!("cannot create target/telemetry: {e}"))?
            .join("crash_data"),
    };
    eprintln!(
        "crash_recovery: seed={} tasks_per_workload={} scenarios={:?} snapshot_every={} \
         data_dir={}",
        args.seed,
        args.tasks_per_workload,
        args.scenarios
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
        args.snapshot_every,
        base.display()
    );

    let mut reports: Vec<CrashReport> = Vec::new();
    for injection in &args.scenarios {
        let config = CrashConfig {
            seed: args.seed,
            tasks_per_workload: args.tasks_per_workload,
            // The damaged-tail scenarios run WAL-only so full replay can
            // be held to report equality; the clean scenario exercises
            // the snapshot + tail-replay path instead.
            snapshot_every: match injection {
                CrashInjection::None => args.snapshot_every,
                _ => 0,
            },
            injection: *injection,
        };
        let dir = base.join(injection.as_str());
        // Each run starts from an empty directory but leaves its WAL
        // and snapshot files behind as an inspectable artifact.
        std::fs::remove_dir_all(&dir)
            .or_else(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    Ok(())
                } else {
                    Err(e)
                }
            })
            .map_err(|e| format!("cannot clear {}: {e}", dir.display()))?;
        let report = run_crash_recovery(&config, &dir)
            .map_err(|e| format!("scenario {}: {e}", injection.as_str()))?;
        println!("{}", render_crash_report(&report));
        reports.push(report);
    }

    let failures: Vec<String> = reports
        .iter()
        .filter(|r| !r.ok())
        .flat_map(|r| {
            let scenario = r.injection.clone();
            let mut msgs: Vec<String> = r
                .failures
                .iter()
                .map(|f| format!("{scenario}: {f}"))
                .collect();
            if msgs.is_empty() {
                msgs.push(format!("{scenario}: gate failed"));
            }
            msgs
        })
        .collect();

    let path = match args.out {
        Some(p) => p,
        None => telemetry_dir()
            .map_err(|e| format!("cannot create target/telemetry: {e}"))?
            .join("crash_recovery.json"),
    };
    let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let report_json = format!(
        "{{\"seed\":{},\"tasks_per_workload\":{},\"scenarios\":[{}]}}",
        args.seed,
        args.tasks_per_workload,
        body.join(",")
    );
    std::fs::write(&path, report_json)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("crash recovery report written: {}", path.display());

    if failures.is_empty() {
        println!("crash recovery gate: ok ({} scenarios)", reports.len());
        Ok(0)
    } else {
        for failure in &failures {
            eprintln!("crash_recovery: FAILED: {failure}");
        }
        Ok(1)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("crash_recovery: {e}");
            eprintln!(
                "usage: crash_recovery [--seed N] [--tasks N] \
                 [--scenarios torn,bitflip,clean] [--snapshot-every N] \
                 [--data-dir PATH] [--out PATH]"
            );
            ExitCode::from(2)
        }
    }
}
