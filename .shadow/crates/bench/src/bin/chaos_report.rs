//! Chaos resilience report: runs the deterministic workload fleet at a
//! sweep of transport fault-injection rates and writes a resilience
//! report (success rate, degraded rate, retries, breaker trips per
//! injected rate) under `target/telemetry/`.
//!
//! ```text
//! cargo run -p datalab-bench --bin chaos_report -- [--seed N] [--tasks N]
//!     [--workers W] [--chaos-seed N] [--rates 0.0,0.2]
//!     [--min-success-rate R] [--baseline PATH] [--out PATH]
//! ```
//!
//! Gates (exit 1 on violation):
//!
//! - every swept rate must reach `--min-success-rate` (default 0.5);
//! - when `--baseline PATH` is given and the sweep includes rate `0.0`,
//!   that run's report must equal the baseline under
//!   `FleetReport::comparable()` — fault injection at rate zero must be
//!   a bit-identical passthrough.
//!
//! Usage errors exit 2.

use datalab_bench::telemetry_dir;
use datalab_core::FleetReport;
use datalab_workloads::{render_sweep, run_chaos_sweep, ChaosPoint, FleetConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    config: FleetConfig,
    rates: Vec<f64>,
    min_success_rate: f64,
    baseline: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_rates(text: &str) -> Result<Vec<f64>, String> {
    let rates: Result<Vec<f64>, _> = text.split(',').map(|r| r.trim().parse()).collect();
    let rates = rates.map_err(|e| format!("--rates: {e}"))?;
    if rates.is_empty() {
        return Err("--rates needs at least one rate".to_string());
    }
    if rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
        return Err("--rates must be within [0.0, 1.0]".to_string());
    }
    Ok(rates)
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        config: FleetConfig::default(),
        rates: vec![0.0, 0.2],
        min_success_rate: 0.5,
        baseline: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        match arg.as_str() {
            "--seed" => {
                parsed.config.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--tasks" => {
                parsed.config.tasks_per_workload = take("--tasks")?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?
            }
            "--workers" => {
                parsed.config.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--chaos-seed" => {
                parsed.config.chaos_seed = take("--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?
            }
            "--rates" => parsed.rates = parse_rates(&take("--rates")?)?,
            "--min-success-rate" => {
                parsed.min_success_rate = take("--min-success-rate")?
                    .parse()
                    .map_err(|e| format!("--min-success-rate: {e}"))?
            }
            "--baseline" => parsed.baseline = Some(PathBuf::from(take("--baseline")?)),
            "--out" => parsed.out = Some(PathBuf::from(take("--out")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn point_json(p: &ChaosPoint) -> String {
    format!(
        "{{\"fault_rate\":{},\"runs\":{},\"passed\":{},\"success_rate\":{:.4},\
         \"degraded\":{},\"degraded_rate\":{:.4},\"faults\":{},\
         \"transport_retries\":{},\"breaker_trips\":{}}}",
        p.fault_rate,
        p.runs,
        p.passed,
        p.success_rate,
        p.degraded,
        p.degraded_rate,
        p.faults,
        p.transport_retries,
        p.breaker_trips
    )
}

fn run() -> Result<u8, String> {
    let args = parse_args()?;
    eprintln!(
        "chaos_report: seed={} tasks_per_workload={} workers={} chaos_seed={} rates={:?} \
         min_success_rate={}",
        args.config.seed,
        args.config.tasks_per_workload,
        args.config.workers.max(1),
        args.config.chaos_seed,
        args.rates,
        args.min_success_rate
    );

    let baseline =
        match &args.baseline {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
                Some(FleetReport::from_json(&text).map_err(|e| {
                    format!("baseline {} is not a fleet report: {e}", path.display())
                })?)
            }
            None => None,
        };

    let sweep = run_chaos_sweep(&args.config, &args.rates);
    let points: Vec<ChaosPoint> = sweep.iter().map(|(p, _)| p.clone()).collect();
    print!("{}", render_sweep(&points));

    let mut failures = Vec::new();
    for (point, report) in &sweep {
        if point.success_rate < args.min_success_rate {
            failures.push(format!(
                "rate {:.2}: success rate {:.2} below the {:.2} floor",
                point.fault_rate, point.success_rate, args.min_success_rate
            ));
        }
        if point.fault_rate == 0.0 {
            if !report.resilience.is_zero() {
                failures.push(format!(
                    "rate 0.00: resilience counters nonzero without injected faults: {:?}",
                    report.resilience
                ));
            }
            if let Some(baseline) = &baseline {
                if report.comparable() != baseline.comparable() {
                    failures.push(
                        "rate 0.00: report diverged from the baseline (chaos at rate zero \
                         must be a bit-identical passthrough)"
                            .to_string(),
                    );
                }
            }
        } else if point.faults == 0 {
            failures.push(format!(
                "rate {:.2}: no faults were injected (chaos wiring broken?)",
                point.fault_rate
            ));
        }
    }

    let path = match args.out {
        Some(p) => p,
        None => telemetry_dir()
            .map_err(|e| format!("cannot create target/telemetry: {e}"))?
            .join("chaos_report.json"),
    };
    let body: Vec<String> = points.iter().map(point_json).collect();
    let report_json = format!(
        "{{\"seed\":{},\"tasks_per_workload\":{},\"workers\":{},\"chaos_seed\":{},\
         \"min_success_rate\":{},\"baseline_checked\":{},\"points\":[{}]}}",
        args.config.seed,
        args.config.tasks_per_workload,
        args.config.workers.max(1),
        args.config.chaos_seed,
        args.min_success_rate,
        baseline.is_some(),
        body.join(",")
    );
    std::fs::write(&path, report_json)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("chaos report written: {}", path.display());

    if failures.is_empty() {
        println!("chaos gate: ok ({} rates swept)", points.len());
        Ok(0)
    } else {
        for failure in &failures {
            eprintln!("chaos_report: FAILED: {failure}");
        }
        Ok(1)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("chaos_report: {e}");
            eprintln!(
                "usage: chaos_report [--seed N] [--tasks N] [--workers W] [--chaos-seed N] \
                 [--rates 0.0,0.2] [--min-success-rate R] [--baseline PATH] [--out PATH]"
            );
            ExitCode::from(2)
        }
    }
}
